"""Distributed k-means (Liao-style parallel-kmeans).

The paper's scalability baseline: the dataset is sharded across MPI ranks;
every Lloyd iteration computes local per-cluster sums/counts and allreduces
them, so each iteration moves O(k·N) floats per rank. Accuracy is identical
to sequential k-means on the union of shards (given the same seeding),
while compute parallelizes across ranks — but per-iteration communication
grows with dimensionality, which is the scaling disadvantage versus
KeyBin2 that Tables 1–2 exhibit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.kmeans import kmeans_plus_plus_init, lloyd_iteration
from repro.comm.base import Communicator, ReduceOp
from repro.comm.spmd import run_spmd
from repro.errors import ValidationError
from repro.util.rng import as_generator
from repro.util.validation import check_array_2d, check_finite

__all__ = ["parallel_kmeans_spmd", "ParallelKMeans"]


def parallel_kmeans_spmd(
    comm: Communicator,
    x_local: np.ndarray,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-4,
    seed: Optional[int] = 0,
    init: str = "first",
) -> Tuple[np.ndarray, np.ndarray, float, int]:
    """SPMD k-means over sharded data.

    Seeding (``init``):

    * ``"first"`` (default) — rank 0 broadcasts its first ``k`` local
      points, which is what Liao's reference implementation does. Cheap,
      but with overlapping clusters it regularly seeds one cluster twice
      and converges to a poor optimum — the accuracy degradation the
      paper's Tables 1–2 show for parallel-kmeans at high dimensionality.
    * ``"kmeans++"`` — D² seeding on rank 0's shard (stronger baseline).

    Returns ``(local_labels, centers, inertia, n_iter)``; centres and
    inertia are identical on every rank.
    """
    x_local = check_array_2d(x_local, "x_local", min_rows=1)
    check_finite(x_local, "x_local")
    if n_clusters < 1:
        raise ValidationError("n_clusters must be >= 1")
    if init not in ("first", "kmeans++"):
        raise ValidationError("init must be 'first' or 'kmeans++'")

    if comm.rank == 0:
        if x_local.shape[0] < n_clusters:
            raise ValidationError(
                "rank 0 needs at least n_clusters local points for seeding"
            )
        if init == "first":
            centers = x_local[:n_clusters].copy()
        else:
            centers = kmeans_plus_plus_init(x_local, n_clusters, as_generator(seed))
    else:
        centers = None
    centers = comm.bcast(centers, root=0)

    labels = np.zeros(x_local.shape[0], dtype=np.int64)
    prev_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        labels, sums, counts, local_inertia = lloyd_iteration(x_local, centers)
        # One allreduce per iteration: k·N sums + k counts + inertia.
        payload = np.concatenate(
            [sums.ravel(), counts.astype(np.float64), [local_inertia]]
        )
        total = comm.allreduce(payload, op=ReduceOp.SUM)
        k, n = centers.shape
        g_sums = total[: k * n].reshape(k, n)
        g_counts = total[k * n : k * n + k]
        inertia = float(total[-1])
        empty = g_counts == 0
        if empty.any():
            # Deterministic repair: keep the stale centre (a dead centre
            # attracts nothing and is reported as an empty cluster).
            g_sums[empty] = centers[empty]
            g_counts[empty] = 1.0
        centers = g_sums / g_counts[:, None]
        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia
    return labels.astype(np.int64), centers, inertia, n_iter


class ParallelKMeans:
    """Front-end running :func:`parallel_kmeans_spmd` over pre-sharded data.

    Attributes (after fit): ``cluster_centers_``, ``labels_`` (list, one
    array per shard), ``inertia_``, ``n_iter_``, ``traffic_``.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: Optional[int] = 0,
        init: str = "first",
        executor: str = "thread",
        timeout: Optional[float] = 600.0,
    ):
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.init = init
        self.executor = executor
        self.timeout = timeout

    def fit(self, shards: Sequence[np.ndarray]) -> "ParallelKMeans":
        shards = [np.asarray(s) for s in shards]
        if not shards:
            raise ValidationError("need at least one shard")
        results = run_spmd(
            _entry,
            len(shards),
            executor=self.executor,
            args=(list(shards), self.n_clusters, self.max_iter, self.tol,
                  self.seed, self.init),
            timeout=self.timeout,
        )
        self.labels_ = [r[0] for r in results]
        self.cluster_centers_ = results[0][1]
        self.inertia_ = results[0][2]
        self.n_iter_ = results[0][3]
        self.traffic_ = [r[4] for r in results]
        return self

    def concatenated_labels(self) -> np.ndarray:
        return np.concatenate(self.labels_)


def _entry(comm: Communicator, shards: List[np.ndarray], k: int, max_iter: int,
           tol: float, seed: Optional[int], init: str):
    labels, centers, inertia, n_iter = parallel_kmeans_spmd(
        comm, shards[comm.rank], k, max_iter=max_iter, tol=tol, seed=seed,
        init=init,
    )
    return labels, centers, inertia, n_iter, comm.traffic.snapshot()
