"""Synthetic stand-in for the 31 MoDEL trajectories (paper Table 3).

The paper characterizes its trajectory set by summary statistics only:

====================  ========  ========  =====  ======
Characteristic        Mean      Stdev     Min    Max
====================  ========  ========  =====  ======
Number of residues    193.06    145.29    58     747
Simulation time (ps)  9,779.03  3,425.85  2,000  20,000
====================  ========  ========  =====  ======

:func:`model_library` deterministically draws 31 specs whose min/max match
exactly (pinned) and whose mean/stdev land near the table's values, then
simulates each lazily so benchmarks never hold 31 full trajectories at
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.proteins.trajectory import Trajectory, TrajectorySimulator
from repro.util.rng import SeedLike, as_generator

__all__ = ["TrajectorySpec", "model_library", "library_summary"]

N_TRAJECTORIES = 31
RESIDUES_RANGE = (58, 747)
RESIDUES_MEAN, RESIDUES_STD = 193.06, 145.29
STEPS_RANGE = (2_000, 20_000)
STEPS_MEAN, STEPS_STD = 9_779.03, 3_425.85

#: MoDEL-style names (PDB-like codes); 1a70 is the trajectory Figure 4 shows.
_NAMES = [
    "1a70", "1b2s", "1cqy", "1dfn", "1e0l", "1fas", "1g6x", "1hzn",
    "1i27", "1jli", "1k40", "1lit", "1m4f", "1n0u", "1opc", "1pht",
    "1qto", "1r69", "1sdf", "1tig", "1ubq", "1vcc", "1wap", "1xwe",
    "1ycc", "1zto", "2abd", "2ci2", "2gb1", "2hbb", "2trx",
]


@dataclass(frozen=True)
class TrajectorySpec:
    """Size/shape parameters for one library trajectory."""

    name: str
    n_residues: int
    n_frames: int
    n_phases: int
    seed: int

    def simulate(self) -> Trajectory:
        """Generate the trajectory (deterministic per spec)."""
        sim = TrajectorySimulator(
            n_residues=self.n_residues,
            n_frames=self.n_frames,
            n_phases=self.n_phases,
            seed=self.seed,
        )
        return sim.simulate(name=self.name)


def _moment_matched_draw(
    rng: np.random.Generator, n: int, mean: float, std: float, lo: float, hi: float
) -> np.ndarray:
    """Draw ``n`` integers whose sample mean/std closely match the target.

    A right-skewed lognormal base (protein sizes are right-skewed) is
    affinely rescaled to the exact target moments, then clipped; a few
    correction rounds re-match the moments after clipping. Matching is to
    the *sample* (n = 31), which is what Table 3 reports.
    """
    base = rng.lognormal(0.0, 0.7, size=n)
    vals = base
    for _ in range(8):
        cur_mean = vals.mean()
        cur_std = vals.std(ddof=1)
        if cur_std <= 0:
            break
        vals = (vals - cur_mean) / cur_std * std + mean
        vals = np.clip(vals, lo, hi)
        if abs(vals.mean() - mean) < 0.5 and abs(vals.std(ddof=1) - std) < 0.5:
            break
    return np.clip(np.round(vals), lo, hi).astype(int)


def model_library(
    seed: SeedLike = 20180813,  # ICPP 2018 opening day — fixed default
    scale: float = 1.0,
) -> List[TrajectorySpec]:
    """The 31-trajectory synthetic library.

    ``scale`` < 1 shrinks frame counts proportionally (benchmarks use e.g.
    ``scale=0.1`` to keep CI fast) while preserving the residue
    distribution and relative lengths. Min/max frames are rescaled too, so
    ``scale=1`` reproduces Table 3 exactly at the extremes.
    """
    if scale <= 0:
        raise ValidationError("scale must be positive")
    rng = as_generator(seed)
    n = N_TRAJECTORIES
    residues = _moment_matched_draw(
        rng, n, RESIDUES_MEAN, RESIDUES_STD, *RESIDUES_RANGE
    )
    frames = _moment_matched_draw(rng, n, STEPS_MEAN, STEPS_STD, *STEPS_RANGE)
    # Pin the extremes so min/max match Table 3 exactly.
    residues[int(np.argmin(residues))] = RESIDUES_RANGE[0]
    residues[int(np.argmax(residues))] = RESIDUES_RANGE[1]
    frames[int(np.argmin(frames))] = STEPS_RANGE[0]
    frames[int(np.argmax(frames))] = STEPS_RANGE[1]
    # Figure 4 analyzes 10,000 frames of 1a70; make the first spec match.
    frames[0] = 10_000
    phases = rng.integers(3, 7, size=n)
    seeds = rng.integers(0, 2**31 - 1, size=n)

    specs = []
    for i in range(n):
        nf = max(50, int(round(frames[i] * scale)))
        specs.append(
            TrajectorySpec(
                name=_NAMES[i],
                n_residues=int(residues[i]),
                n_frames=nf,
                n_phases=int(phases[i]),
                seed=int(seeds[i]),
            )
        )
    return specs


def library_summary(specs: Optional[List[TrajectorySpec]] = None) -> Dict[str, Dict[str, float]]:
    """Table-3-style summary: mean/stdev/min/max of residues and frames."""
    if specs is None:
        specs = model_library()
    residues = np.array([s.n_residues for s in specs], dtype=np.float64)
    frames = np.array([s.n_frames for s in specs], dtype=np.float64)

    def stats(v: np.ndarray) -> Dict[str, float]:
        return {
            "mean": float(v.mean()),
            "stdev": float(v.std(ddof=1)),
            "min": float(v.min()),
            "max": float(v.max()),
        }

    return {
        "n_residues": stats(residues),
        "simulation_time_ps": stats(frames),
    }
