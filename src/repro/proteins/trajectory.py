"""Synthetic protein folding trajectories with metastable dynamics.

Substitute for the MoDEL library (see DESIGN.md): each trajectory visits a
sequence of *metastable phases*. A phase assigns every residue a target
secondary structure; frames inside the phase jitter around the phase's
canonical torsion angles (small variations — "consecutive conformations
keep a similar structure"), while *transition* windows interpolate between
consecutive phases with extra thermal noise ("large structural
variations"). Phases may also revisit earlier conformations, which is what
lets cluster fingerprints re-identify a returned search space.

Ground truth (per-frame phase id and transition mask) is retained so the
in-situ analysis of §5 can be validated quantitatively, which the original
paper could only do qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.proteins.ramachandran import (
    SecondaryStructure,
    region_center,
    wrap_angle,
)
from repro.util.rng import SeedLike, as_generator

__all__ = ["Trajectory", "TrajectorySimulator"]

#: Structure types a residue may adopt in a metastable phase. CIS is kept
#: rare (real cis-peptide bonds are ~0.3% of residues).
_PHASE_CLASSES = [
    SecondaryStructure.ALPHA_HELIX,
    SecondaryStructure.BETA_STRAND,
    SecondaryStructure.PII_HELIX,
    SecondaryStructure.GAMMA_PRIME_TURN,
    SecondaryStructure.GAMMA_TURN,
    SecondaryStructure.OTHER,
]
_PHASE_WEIGHTS = np.array([0.30, 0.25, 0.12, 0.08, 0.08, 0.17])
_CIS_PROB = 0.003


@dataclass
class Trajectory:
    """A simulated folding trajectory.

    Attributes
    ----------
    angles:
        (n_frames × n_residues × 3) torsion angles in degrees (φ, ψ, ω).
    phase_ids:
        (n_frames,) ground-truth metastable phase per frame; during a
        transition the id is the phase being entered.
    in_transition:
        (n_frames,) boolean mask of transition frames.
    phase_targets:
        (n_phases × n_residues) target secondary-structure codes.
    name:
        Identifier (MoDEL-style PDB code for library trajectories).
    """

    angles: np.ndarray
    phase_ids: np.ndarray
    in_transition: np.ndarray
    phase_targets: np.ndarray
    name: str = "synthetic"

    @property
    def n_frames(self) -> int:
        return int(self.angles.shape[0])

    @property
    def n_residues(self) -> int:
        return int(self.angles.shape[1])

    @property
    def n_phases(self) -> int:
        return int(self.phase_targets.shape[0])


class TrajectorySimulator:
    """Generates :class:`Trajectory` objects.

    Parameters
    ----------
    n_residues, n_frames:
        Protein size and trajectory length.
    n_phases:
        Number of *distinct* metastable conformations.
    n_segments:
        Number of metastable dwell segments; with
        ``n_segments > n_phases`` some phases are revisited (sampled with
        replacement after the first pass), producing the recurring
        fingerprints of Figure 4.
    transition_fraction:
        Fraction of frames spent transitioning between segments.
    stable_noise_deg, transition_noise_deg:
        Angular jitter (σ, degrees) inside metastable / transition frames.
    residue_flip_fraction:
        Fraction of residues whose target class changes between two
        consecutive phases (the rest keep their structure — conformational
        changes are usually local).
    phase_targets:
        Optional pre-built (n_phases × n_residues) target-class matrix.
        Passing the same matrix to several simulators gives trajectories
        that explore the *same* conformational library with independent
        dynamics — the cross-trajectory convergence scenario of §5.
    """

    def __init__(
        self,
        n_residues: int,
        n_frames: int,
        n_phases: int = 4,
        n_segments: Optional[int] = None,
        transition_fraction: float = 0.15,
        stable_noise_deg: float = 8.0,
        transition_noise_deg: float = 25.0,
        residue_flip_fraction: float = 0.35,
        phase_targets: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ):
        if n_residues < 1 or n_frames < 2:
            raise ValidationError("need n_residues >= 1 and n_frames >= 2")
        if n_phases < 1:
            raise ValidationError("n_phases must be >= 1")
        if not (0.0 <= transition_fraction < 1.0):
            raise ValidationError("transition_fraction must be in [0, 1)")
        if not (0.0 <= residue_flip_fraction <= 1.0):
            raise ValidationError("residue_flip_fraction must be in [0, 1]")
        self.n_residues = int(n_residues)
        self.n_frames = int(n_frames)
        self.n_phases = int(n_phases)
        self.n_segments = int(n_segments) if n_segments is not None else max(
            n_phases, int(round(n_phases * 1.5))
        )
        if self.n_segments < 1:
            raise ValidationError("n_segments must be >= 1")
        self.transition_fraction = float(transition_fraction)
        self.stable_noise_deg = float(stable_noise_deg)
        self.transition_noise_deg = float(transition_noise_deg)
        self.residue_flip_fraction = float(residue_flip_fraction)
        if phase_targets is not None:
            phase_targets = np.asarray(phase_targets, dtype=np.int8)
            if phase_targets.shape != (self.n_phases, self.n_residues):
                raise ValidationError(
                    f"phase_targets must be ({self.n_phases} × "
                    f"{self.n_residues}), got {phase_targets.shape}"
                )
        self.phase_targets = phase_targets
        self.seed = seed

    # -- phase construction ---------------------------------------------------

    def _phase_targets(self, rng: np.random.Generator) -> np.ndarray:
        """Target class per (phase, residue); consecutive phases differ in
        ~flip_fraction of residues."""
        targets = np.empty((self.n_phases, self.n_residues), dtype=np.int8)
        targets[0] = rng.choice(
            [int(c) for c in _PHASE_CLASSES], size=self.n_residues, p=_PHASE_WEIGHTS
        )
        for p in range(1, self.n_phases):
            targets[p] = targets[p - 1]
            n_flip = max(1, int(round(self.residue_flip_fraction * self.n_residues)))
            flip = rng.choice(self.n_residues, size=n_flip, replace=False)
            targets[p, flip] = rng.choice(
                [int(c) for c in _PHASE_CLASSES], size=n_flip, p=_PHASE_WEIGHTS
            )
        return targets

    def _target_angles(self, targets_row: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """(n_residues × 3) canonical angles for one phase, with rare cis ω."""
        out = np.empty((self.n_residues, 3))
        for cls in np.unique(targets_row):
            mask = targets_row == cls
            out[mask] = region_center(SecondaryStructure(int(cls)))
        cis = rng.random(self.n_residues) < _CIS_PROB
        out[cis, 2] = 0.0
        return out

    # -- simulation ----------------------------------------------------------------

    def simulate(self, name: str = "synthetic") -> Trajectory:
        """Run the generator and return a :class:`Trajectory`."""
        rng = as_generator(self.seed)
        targets = (
            self.phase_targets.copy()
            if self.phase_targets is not None
            else self._phase_targets(rng)
        )
        phase_angles = np.stack(
            [self._target_angles(targets[p], rng) for p in range(self.n_phases)]
        )

        # Segment schedule: first visit each phase once (shuffled), then
        # revisit uniformly.
        first_pass = rng.permutation(self.n_phases)
        extra = rng.integers(self.n_phases, size=max(0, self.n_segments - self.n_phases))
        schedule = np.concatenate([first_pass, extra])[: self.n_segments]
        # Avoid zero-length transitions between identical consecutive phases.
        for i in range(1, schedule.size):
            if schedule[i] == schedule[i - 1] and self.n_phases > 1:
                schedule[i] = (schedule[i] + 1) % self.n_phases

        n_trans_total = int(self.transition_fraction * self.n_frames)
        n_transitions = max(0, schedule.size - 1)
        trans_len = (
            max(1, n_trans_total // n_transitions) if n_transitions else 0
        )
        n_stable_total = self.n_frames - trans_len * n_transitions
        if n_stable_total < schedule.size:
            # Trajectory too short for the schedule; shrink transitions.
            trans_len = max(
                0, (self.n_frames - schedule.size) // max(1, n_transitions)
            )
            n_stable_total = self.n_frames - trans_len * n_transitions
        seg_lengths = np.full(schedule.size, n_stable_total // schedule.size)
        seg_lengths[: n_stable_total % schedule.size] += 1

        angles = np.empty((self.n_frames, self.n_residues, 3))
        phase_ids = np.empty(self.n_frames, dtype=np.int64)
        in_transition = np.zeros(self.n_frames, dtype=bool)

        frame = 0
        for s, phase in enumerate(schedule):
            # Metastable dwell.
            length = int(seg_lengths[s])
            base = phase_angles[phase]
            noise = rng.standard_normal((length, self.n_residues, 3))
            angles[frame : frame + length] = base + noise * self.stable_noise_deg
            phase_ids[frame : frame + length] = phase
            frame += length
            # Transition to the next segment.
            if s < schedule.size - 1 and trans_len > 0:
                nxt = schedule[s + 1]
                alpha = np.linspace(0.0, 1.0, trans_len + 2)[1:-1]
                interp = (
                    phase_angles[phase][None] * (1 - alpha)[:, None, None]
                    + phase_angles[nxt][None] * alpha[:, None, None]
                )
                noise = rng.standard_normal((trans_len, self.n_residues, 3))
                angles[frame : frame + trans_len] = (
                    interp + noise * self.transition_noise_deg
                )
                phase_ids[frame : frame + trans_len] = nxt
                in_transition[frame : frame + trans_len] = True
                frame += trans_len
        assert frame == self.n_frames, (frame, self.n_frames)

        angles = wrap_angle(angles)
        return Trajectory(
            angles=angles,
            phase_ids=phase_ids,
            in_transition=in_transition,
            phase_targets=targets,
            name=name,
        )
