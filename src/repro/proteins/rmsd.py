"""Torsion-space RMSD and representative-conformation selection (§5.2).

The paper's offline validation computes the root-mean-squared deviation of
every frame against ``N`` representative conformations "sampled by using a
power law distribution with respect to the distance to the mean
conformation." Working in torsion space (our frames *are* torsions), RMSD
uses the wrapped angular difference so −179° and +179° are 2° apart.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.proteins.ramachandran import wrap_angle
from repro.util.rng import SeedLike, as_generator

__all__ = ["angular_rmsd", "rmsd_time_series", "select_representatives"]


def _flat(angles: np.ndarray) -> np.ndarray:
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 3:
        return angles.reshape(angles.shape[0], -1)
    if angles.ndim == 2:
        return angles
    raise ValidationError("angles must be 2-D or (frames × residues × 3)")


def angular_rmsd(frames: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """RMSD (degrees) of every frame to one reference conformation.

    Angular differences are wrapped into (−180, 180] before squaring.
    """
    flat = _flat(frames)
    ref = np.asarray(reference, dtype=np.float64).ravel()
    if ref.shape[0] != flat.shape[1]:
        raise ValidationError(
            f"reference length {ref.shape[0]} != frame length {flat.shape[1]}"
        )
    diff = wrap_angle(flat - ref)
    return np.sqrt(np.mean(diff * diff, axis=1))


def rmsd_time_series(frames: np.ndarray, references: np.ndarray) -> np.ndarray:
    """(n_refs × n_frames) RMSD of every frame to every representative."""
    flat = _flat(frames)
    refs = _flat(references)
    if refs.shape[1] != flat.shape[1]:
        raise ValidationError("references and frames have different widths")
    out = np.empty((refs.shape[0], flat.shape[0]))
    for i in range(refs.shape[0]):
        out[i] = angular_rmsd(flat, refs[i])
    return out


def temporal_smooth(frames: np.ndarray, window: int = 5) -> np.ndarray:
    """Moving average over the frame axis (reflected ends).

    Thermal noise averages out over a few consecutive frames while the
    underlying conformation barely moves, so smoothed frames are better
    anchors for representative selection.
    """
    flat = _flat(frames)
    if window < 1:
        raise ValidationError("window must be >= 1")
    half = window // 2
    if half == 0 or flat.shape[0] <= 1:
        return flat.copy()
    half = min(half, flat.shape[0] - 1)
    padded = np.pad(flat, ((half, half), (0, 0)), mode="reflect")
    csum = np.cumsum(np.vstack([np.zeros((1, flat.shape[1])), padded]), axis=0)
    k = 2 * half + 1
    return (csum[k:] - csum[:-k]) / k


def select_representatives(
    frames: np.ndarray,
    n: int,
    power: float = float("inf"),
    denoise_window: int = 5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Pick ``n`` *distinct* representative frame indices (paper §5.2).

    The first representative is sampled with probability proportional to
    ``distance_to_mean_conformation ** power`` (the paper's power-law
    preference for far-from-average conformations). Each subsequent one is
    sampled proportional to ``distance_to_nearest_chosen ** power`` — a
    stochastic farthest-point rule that keeps representatives mutually
    distinct. Distinctness matters: two representatives of the *same*
    conformation would split its probability mass in eq. 3 and erase the
    stability margin of eq. 4.
    """
    flat = _flat(frames)
    m = flat.shape[0]
    if not (1 <= n <= m):
        raise ValidationError(f"n must be in [1, {m}], got {n}")
    if power < 0:
        raise ValidationError("power must be non-negative")
    rng = as_generator(seed)
    smooth = temporal_smooth(flat, denoise_window) if denoise_window > 1 else flat
    mean_conf = smooth.mean(axis=0)
    dist = angular_rmsd(smooth, mean_conf)

    def draw(weights: np.ndarray) -> int:
        if np.isinf(power):
            # Deterministic farthest-point: guarantees mutually distant
            # representatives (recommended — duplicate representatives of
            # one conformation destroy eq. 4's stability margin).
            return int(np.argmax(weights))
        w = np.power(np.maximum(weights, 1e-12), power)
        total = w.sum()
        if total <= 0:
            return int(rng.integers(m))
        return int(rng.choice(m, p=w / total))

    chosen = [draw(dist)]
    nearest = angular_rmsd(smooth, smooth[chosen[0]])
    while len(chosen) < n:
        nearest[chosen] = 0.0  # never re-pick a chosen frame
        idx = draw(nearest)
        chosen.append(idx)
        np.minimum(nearest, angular_rmsd(smooth, smooth[idx]), out=nearest)
    return np.sort(np.asarray(chosen, dtype=np.int64))
