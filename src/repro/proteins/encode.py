"""Frame → feature-vector encoding (paper §5.1).

"Every residue was characterized by the torsion angle phi versus psi and
omega … we can associate each amino acid residue with one of six types of
secondary structures." A trajectory frame thus becomes a length-
``n_residues`` vector of secondary-structure codes — the representation
KeyBin2 clusters. A one-hot expansion is also provided for algorithms that
assume continuous geometry (k-means).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.proteins.ramachandran import SecondaryStructure, classify_torsions

__all__ = ["encode_frames", "one_hot_encode"]

N_CLASSES = len(SecondaryStructure)


def encode_frames(angles: np.ndarray) -> np.ndarray:
    """Encode (n_frames × n_residues × 3) torsions as SS-code features.

    Returns an (n_frames × n_residues) float64 matrix of class codes —
    discrete values, but the *ordering* KeyBin2 bins over is stable because
    a residue's code only moves when its structure actually changes.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim != 3 or angles.shape[2] != 3:
        raise ValidationError(
            "angles must be (n_frames × n_residues × 3 [phi, psi, omega])"
        )
    codes = classify_torsions(angles[..., 0], angles[..., 1], angles[..., 2])
    return codes.astype(np.float64)


def one_hot_encode(codes: np.ndarray) -> np.ndarray:
    """Expand (n_frames × n_residues) codes into (n_frames × n_residues·7).

    One block of 7 indicator columns per residue, ordered by residue.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ValidationError("codes must be (n_frames × n_residues)")
    int_codes = codes.astype(np.int64)
    if int_codes.min() < 0 or int_codes.max() >= N_CLASSES:
        raise ValidationError(f"codes must lie in [0, {N_CLASSES})")
    n_frames, n_residues = int_codes.shape
    out = np.zeros((n_frames, n_residues * N_CLASSES), dtype=np.float64)
    cols = np.arange(n_residues) * N_CLASSES + int_codes
    out[np.arange(n_frames)[:, None], cols] = 1.0
    return out
