"""Protein folding trajectory substrate (paper §5).

The paper analyzes 31 trajectories from the MoDEL library, characterizing
each frame by per-residue backbone torsion angles (φ, ψ, ω) mapped onto six
secondary-structure types via the Ramachandran plot. MoDEL is not
redistributable here, so :mod:`repro.proteins.trajectory` synthesizes
trajectories with explicit metastable and transition phases — the dynamics
regime §5 describes — and :mod:`repro.proteins.model_library` instantiates
a 31-trajectory collection whose size statistics match the paper's Table 3.
"""

from __future__ import annotations

from repro.proteins.ramachandran import (
    SecondaryStructure,
    classify_torsions,
    region_center,
)
from repro.proteins.trajectory import TrajectorySimulator, Trajectory
from repro.proteins.encode import encode_frames, one_hot_encode
from repro.proteins.model_library import TrajectorySpec, model_library, library_summary
from repro.proteins.rmsd import (
    angular_rmsd,
    rmsd_time_series,
    select_representatives,
)

__all__ = [
    "SecondaryStructure",
    "classify_torsions",
    "region_center",
    "TrajectorySimulator",
    "Trajectory",
    "encode_frames",
    "one_hot_encode",
    "TrajectorySpec",
    "model_library",
    "library_summary",
    "angular_rmsd",
    "rmsd_time_series",
    "select_representatives",
]
