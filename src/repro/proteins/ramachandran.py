"""Ramachandran classification of backbone torsion angles (paper §5.1).

Each residue's conformation is the triple (φ, ψ, ω) in degrees. ω is
restricted to ~180° (trans) with a rare cis case near 0°; (φ, ψ) fall into
characteristic regions of the Ramachandran plot. Following the paper, six
secondary-structure types are distinguished:

α-helix, β-strand, polyproline PII-helix, γ′-turn (inverse), γ-turn
(classic), and cis-peptide bonds; anything else is OTHER (coil).

Region rectangles below are the standard textbook windows; exact borders
matter less than their *stability* — a residue dwelling in a phase keeps
its class despite thermal noise, which is what makes the encoded features
clusterable.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["SecondaryStructure", "classify_torsions", "region_center", "REGIONS"]


class SecondaryStructure(enum.IntEnum):
    """The paper's six secondary-structure classes plus coil."""

    ALPHA_HELIX = 0
    BETA_STRAND = 1
    PII_HELIX = 2
    GAMMA_PRIME_TURN = 3
    GAMMA_TURN = 4
    CIS_PEPTIDE = 5
    OTHER = 6


#: (φ_min, φ_max, ψ_min, ψ_max) windows per class, degrees. Checked in
#: order; the first match wins (regions are disjoint except PII vs β,
#: where φ decides).
REGIONS: dict = {
    SecondaryStructure.ALPHA_HELIX: (-100.0, -30.0, -80.0, -5.0),
    SecondaryStructure.BETA_STRAND: (-180.0, -90.0, 90.0, 180.0),
    SecondaryStructure.PII_HELIX: (-90.0, -50.0, 120.0, 180.0),
    SecondaryStructure.GAMMA_PRIME_TURN: (-95.0, -55.0, 50.0, 90.0),
    SecondaryStructure.GAMMA_TURN: (55.0, 95.0, -90.0, -40.0),
}

#: |ω| below this (degrees) marks a cis-peptide bond.
CIS_OMEGA_LIMIT = 90.0


def wrap_angle(angle: np.ndarray) -> np.ndarray:
    """Wrap degrees into (−180, 180]."""
    return -((-np.asarray(angle, dtype=np.float64) + 180.0) % 360.0 - 180.0)


def classify_torsions(
    phi: np.ndarray, psi: np.ndarray, omega: np.ndarray
) -> np.ndarray:
    """Vectorized (φ, ψ, ω) → :class:`SecondaryStructure` codes.

    Inputs are broadcast together; angles in degrees, any range (wrapped
    internally). Returns int8 class codes.
    """
    phi = wrap_angle(phi)
    psi = wrap_angle(psi)
    omega = wrap_angle(omega)
    phi, psi, omega = np.broadcast_arrays(phi, psi, omega)
    out = np.full(phi.shape, int(SecondaryStructure.OTHER), dtype=np.int8)

    # Rectangular (φ, ψ) regions, most specific first where they overlap.
    for cls in (
        SecondaryStructure.PII_HELIX,       # overlaps β in ψ; φ decides
        SecondaryStructure.BETA_STRAND,
        SecondaryStructure.ALPHA_HELIX,
        SecondaryStructure.GAMMA_PRIME_TURN,
        SecondaryStructure.GAMMA_TURN,
    ):
        lo_phi, hi_phi, lo_psi, hi_psi = REGIONS[cls]
        mask = (
            (out == int(SecondaryStructure.OTHER))
            & (phi >= lo_phi) & (phi <= hi_phi)
            & (psi >= lo_psi) & (psi <= hi_psi)
        )
        out[mask] = int(cls)

    # Cis-peptide is an ω property and overrides the (φ, ψ) class — the
    # paper treats it as its own (rare) type.
    out[np.abs(omega) < CIS_OMEGA_LIMIT] = int(SecondaryStructure.CIS_PEPTIDE)
    return out


def region_center(cls: SecondaryStructure) -> Tuple[float, float, float]:
    """Canonical (φ, ψ, ω) for a class — the simulator's phase targets."""
    if cls == SecondaryStructure.CIS_PEPTIDE:
        return (-75.0, 150.0, 0.0)
    if cls == SecondaryStructure.OTHER:
        # A coil target well inside no-man's land of the Ramachandran plot:
        # ≥ 30° from every region border and away from the ±180° wrap,
        # so thermal noise does not flip the classification.
        return (60.0, 30.0, 180.0)
    if cls not in REGIONS:
        raise ValidationError(f"unknown secondary structure {cls!r}")
    lo_phi, hi_phi, lo_psi, hi_psi = REGIONS[cls]
    return ((lo_phi + hi_phi) / 2.0, (lo_psi + hi_psi) / 2.0, 180.0)
