"""Classic external clustering metrics: purity, NMI, ARI.

Complement the paper's pair metrics; all computed from the contingency
table. Noise predictions (−1) are treated as singletons, consistently with
:mod:`repro.metrics.pairs`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.metrics.pairs import _promote_noise_to_singletons, pair_confusion

__all__ = ["purity", "normalized_mutual_info", "adjusted_rand_index"]


def _contingency(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValidationError("labels must be equal-length and non-empty")
    y_pred = _promote_noise_to_singletons(y_pred)
    _, t_idx = np.unique(y_true, return_inverse=True)
    _, p_idx = np.unique(y_pred, return_inverse=True)
    n_t = int(t_idx.max()) + 1
    n_p = int(p_idx.max()) + 1
    flat = p_idx.astype(np.int64) * n_t + t_idx
    return np.bincount(flat, minlength=n_p * n_t).reshape(n_p, n_t)


def purity(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of points whose predicted cluster's majority truth matches."""
    table = _contingency(y_true, y_pred)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_info(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization; in [0, 1]."""
    table = _contingency(y_true, y_pred).astype(np.float64)
    m = table.sum()
    p_joint = table / m
    p_pred = p_joint.sum(axis=1, keepdims=True)
    p_true = p_joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_term = np.where(
            p_joint > 0, np.log(p_joint / (p_pred @ p_true + 1e-300)), 0.0
        )
    mi = float(np.sum(p_joint * log_term))

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-np.sum(p * np.log(p)))

    h_pred = entropy(p_pred.ravel())
    h_true = entropy(p_true.ravel())
    denom = (h_pred + h_true) / 2.0
    if denom <= 0:
        return 1.0  # both partitions trivial and identical
    return max(0.0, min(1.0, mi / denom))


def adjusted_rand_index(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """ARI: chance-corrected rand index in [−1, 1]."""
    s = pair_confusion(y_true, y_pred)
    tp, fp, fn, tn = s.tp, s.fp, s.fn, s.tn
    total = tp + fp + fn + tn
    if total == 0:
        return 1.0
    expected = (tp + fp) * (tp + fn) / total
    max_index = ((tp + fp) + (tp + fn)) / 2.0
    if max_index == expected:
        return 1.0
    return float((tp - expected) / (max_index - expected))
