"""Point-space Calinski–Harabasz index (reference implementation).

The classical index the paper's eq. 2 approximates in histogram space.
Used by tests to check that the histogram-space variant ranks partitions
the same way the exact point-space computation does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["calinski_harabasz_points"]


def calinski_harabasz_points(x: np.ndarray, labels: np.ndarray) -> float:
    """CH = (B/(k−1)) / (W/(M−k)) over actual points.

    Noise labels (−1) are excluded. Returns ``-inf`` for fewer than two
    effective clusters.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels).ravel()
    if x.ndim != 2 or labels.shape[0] != x.shape[0]:
        raise ValidationError("x must be (M × N) with matching labels")
    mask = labels >= 0
    x, labels = x[mask], labels[mask]
    uniq = np.unique(labels)
    k = uniq.size
    m = x.shape[0]
    if k < 2 or m <= k:
        return float("-inf")
    overall = x.mean(axis=0)
    w = 0.0
    b = 0.0
    for c in uniq:
        pts = x[labels == c]
        centre = pts.mean(axis=0)
        w += float(np.sum((pts - centre) ** 2))
        b += pts.shape[0] * float(np.sum((centre - overall) ** 2))
    if w <= 0:
        return float("inf") if b > 0 else float("-inf")
    return (b / (k - 1)) / (w / (m - k))
