"""Pair-counting clustering metrics (paper §4 definitions).

For all unordered point pairs:

* **tp** — same predicted cluster and same true cluster,
* **fp** — same predicted cluster, different true clusters,
* **fn** — different predicted clusters, same true cluster,
* **tn** — different in both.

precision = tp/(tp+fp), recall = tp/(tp+fn), F1 = harmonic mean. All four
counts come from the contingency table: with ``n_ij`` the table entries,
``a_i`` predicted-cluster sizes and ``b_j`` true-cluster sizes,

    tp + fp = Σ_i C(a_i, 2),  tp + fn = Σ_j C(b_j, 2),  tp = Σ_ij C(n_ij, 2).

Noise handling: points labelled ``-1`` in the *prediction* are treated as
singleton clusters (each noise point is its own cluster) — they can only
cost recall, matching how the paper's small outlier clusters depress recall
while precision stays high.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["PairScores", "pair_confusion", "pair_precision_recall_f1"]


@dataclass(frozen=True)
class PairScores:
    """Pair-counting confusion and derived scores."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def rand_index(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 1.0


def _promote_noise_to_singletons(labels: np.ndarray) -> np.ndarray:
    """Relabel each −1 entry as a fresh singleton cluster id."""
    labels = labels.copy()
    noise = labels == -1
    if noise.any():
        start = labels.max() + 1 if labels.size else 0
        labels[noise] = np.arange(start, start + noise.sum())
    return labels


def _comb2(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.int64)
    return x * (x - 1) // 2


def pair_confusion(y_true: np.ndarray, y_pred: np.ndarray) -> PairScores:
    """Pair-counting confusion from the contingency table (no O(M²) pass)."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValidationError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValidationError("labels must be non-empty")
    if np.any(y_true < 0):
        raise ValidationError("y_true may not contain negative labels")
    y_pred = _promote_noise_to_singletons(y_pred)

    _, t_idx = np.unique(y_true, return_inverse=True)
    _, p_idx = np.unique(y_pred, return_inverse=True)
    n_t = int(t_idx.max()) + 1
    n_p = int(p_idx.max()) + 1
    # Sparse contingency via bincount over combined index.
    flat = p_idx.astype(np.int64) * n_t + t_idx
    nij = np.bincount(flat, minlength=n_p * n_t)

    m = y_true.size
    tp = int(_comb2(nij).sum())
    same_pred = int(_comb2(np.bincount(p_idx)).sum())
    same_true = int(_comb2(np.bincount(t_idx)).sum())
    fp = same_pred - tp
    fn = same_true - tp
    total_pairs = m * (m - 1) // 2
    tn = total_pairs - tp - fp - fn
    return PairScores(tp=tp, fp=fp, fn=fn, tn=tn)


def pair_precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Tuple[float, float, float]:
    """Convenience: ``(precision, recall, f1)`` as the paper tabulates."""
    s = pair_confusion(y_true, y_pred)
    return s.precision, s.recall, s.f1
