"""Run statistics: the ``mean ± CI`` entries the paper tabulates.

The paper reports "confidence intervals for 20 independent runs per each
experimental design point"; :func:`mean_ci` computes a Student-t interval
half-width, and :class:`RunAggregate` collects named metrics across
repeated runs and formats them paper-style.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np
from scipy import stats as sps

from repro.errors import ValidationError

__all__ = ["mean_ci", "RunAggregate"]


def mean_ci(values, confidence: float = 0.95) -> Tuple[float, float]:
    """Mean and Student-t CI half-width of a sample.

    A single observation returns half-width 0 (nothing to infer).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("need at least one value")
    if not (0.0 < confidence < 1.0):
        raise ValidationError("confidence must be in (0, 1)")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return mean, 0.0
    t = float(sps.t.ppf((1.0 + confidence) / 2.0, df=arr.size - 1))
    return mean, t * sem


class RunAggregate:
    """Accumulates metric values across repeated runs.

    >>> agg = RunAggregate()
    >>> agg.add(f1=0.9, time=1.2); agg.add(f1=0.8, time=1.4)
    >>> mean, half = agg.ci("f1")
    """

    def __init__(self, confidence: float = 0.95):
        self.confidence = float(confidence)
        self._values: Dict[str, List[float]] = defaultdict(list)

    def add(self, **metrics: float) -> None:
        for name, value in metrics.items():
            self._values[name].append(float(value))

    def names(self) -> List[str]:
        return sorted(self._values)

    def values(self, name: str) -> List[float]:
        if name not in self._values:
            raise ValidationError(f"no metric named {name!r} recorded")
        return list(self._values[name])

    def ci(self, name: str) -> Tuple[float, float]:
        return mean_ci(self.values(name), self.confidence)

    def n_runs(self, name: str) -> int:
        return len(self._values.get(name, ()))

    def formatted(self, name: str, digits: int = 3) -> str:
        """Paper-style ``mean ± half`` string."""
        mean, half = self.ci(name)
        return f"{mean:.{digits}f} ± {half:.{digits}f}"

    def summary(self, digits: int = 3) -> Dict[str, str]:
        return {name: self.formatted(name, digits) for name in self.names()}
