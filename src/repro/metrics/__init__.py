"""Clustering-quality metrics and run statistics.

The paper reports pair-counting precision / recall / F1 (§4): a true
positive is a point *pair* placed in the same cluster that truly belongs
together. :mod:`repro.metrics.pairs` computes these from the contingency
table in O(K_true · K_pred), never enumerating the O(M²) pairs.
"""

from __future__ import annotations

from repro.metrics.pairs import pair_confusion, pair_precision_recall_f1, PairScores
from repro.metrics.external import purity, normalized_mutual_info, adjusted_rand_index
from repro.metrics.dispersion import calinski_harabasz_points
from repro.metrics.stats import mean_ci, RunAggregate

__all__ = [
    "pair_confusion",
    "pair_precision_recall_f1",
    "PairScores",
    "purity",
    "normalized_mutual_info",
    "adjusted_rand_index",
    "calinski_harabasz_points",
    "mean_ci",
    "RunAggregate",
]
