"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` and friends from
misuse still propagate unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "CommError",
    "RankFailedError",
    "InjectedFault",
    "CheckpointError",
    "ConvergenceError",
    "ServeError",
    "QueueFullError",
    "ShedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ConnectionLostError",
    "FleetUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are invalid."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before :meth:`fit` was called."""


class CommError(ReproError, RuntimeError):
    """Raised on communication-substrate failures."""


class RankFailedError(CommError):
    """Raised when a peer rank died or raised inside an SPMD section.

    Attributes
    ----------
    rank:
        The rank that failed, or ``-1`` when unknown.
    confirmed:
        ``True`` when the peer itself announced its death (failure
        sentinel) or the executor observed its process exit; ``False``
        when the failure is inferred from a receive timeout, in which case
        the peer may merely be slow. Recovery treats unconfirmed failures
        as suspicions to be re-checked during survivor agreement.
    """

    def __init__(self, message: str, rank: int = -1, confirmed: bool = True):
        super().__init__(message)
        self.rank = rank
        self.confirmed = confirmed


class InjectedFault(ReproError, RuntimeError):
    """Raised by the fault-injection harness to simulate a rank crash.

    Only ever raised when a :class:`repro.comm.faults.FaultPlan` is
    explicitly installed, so seeing it outside a chaos test means the
    plan leaked into a production run.
    """


class CheckpointError(ReproError, RuntimeError):
    """Raised when a streaming-state checkpoint is missing or corrupt.

    A truncated or bit-flipped checkpoint file fails its integrity check
    and raises this instead of deserializing garbage; callers (the
    checkpoint manager) fall back to the previous intact checkpoint.
    """


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative algorithm fails to converge."""


class ServeError(ReproError, RuntimeError):
    """Raised on model-serving failures (see :mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """Raised when the serving request queue rejects work (backpressure).

    Callers should treat this as a retryable overload signal, not a bug:
    the micro-batcher bounds its queue so that a traffic spike degrades
    into fast rejections instead of unbounded memory growth.
    """

    #: Wire code carried in ``{"ok": false, "err": <code>}`` responses so
    #: clients and load generators can classify failures without parsing
    #: human-oriented messages.
    code = "queue_full"


class ShedError(ServeError):
    """Raised when admission control refuses a request (load shedding).

    Shedding is the *intended* overload behavior: an explicit, immediate
    rejection that costs the server nothing, instead of queueing work that
    will time out after burning model time. Retry against another replica
    or after backoff.
    """

    code = "shed"


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline expired before it was served.

    The deadline travels with the request (``deadline_ms``); the server
    sheds expired entries *before* they reach the model, so the response
    is fast and explicit rather than a client-side timeout.
    """

    code = "deadline_exceeded"


class CircuitOpenError(ServeError):
    """Raised while the server-side circuit breaker is open.

    The breaker trips after consecutive model errors and half-opens after
    a cooldown; while open, predicts fail fast instead of queueing into a
    known-broken model.
    """

    code = "circuit_open"


class ConnectionLostError(ServeError):
    """Raised when the transport to a server died mid-conversation.

    Replaces raw ``ConnectionResetError``/``BrokenPipeError``/timeouts
    from the socket layer so callers (the fleet router, retry loops,
    load generators) can catch one typed error instead of guessing which
    OS-level exception a dead replica produces this time.

    Attributes
    ----------
    reason:
        Why the connection broke: ``timeout`` / ``reset`` / ``closed`` /
        ``refused``. Distinct reasons get distinct retry-metric labels —
        a fleet retrying on timeouts (overload) looks very different from
        one retrying on resets (crashing servers).
    """

    def __init__(self, message: str, reason: str = "reset"):
        super().__init__(message)
        self.reason = reason


class FleetUnavailableError(ServeError):
    """Raised when the fleet router has no healthy replica for a request.

    Every replica is ejected (or the fleet is empty), so there is nowhere
    to route. Retryable: replicas re-admit as soon as health probes
    succeed again.
    """

    code = "unavailable"
