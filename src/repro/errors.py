"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` and friends from
misuse still propagate unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "CommError",
    "RankFailedError",
    "ConvergenceError",
    "ServeError",
    "QueueFullError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are invalid."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before :meth:`fit` was called."""


class CommError(ReproError, RuntimeError):
    """Raised on communication-substrate failures."""


class RankFailedError(CommError):
    """Raised when a peer rank died or raised inside an SPMD section.

    Attributes
    ----------
    rank:
        The rank that failed, or ``-1`` when unknown.
    """

    def __init__(self, message: str, rank: int = -1):
        super().__init__(message)
        self.rank = rank


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative algorithm fails to converge."""


class ServeError(ReproError, RuntimeError):
    """Raised on model-serving failures (see :mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """Raised when the serving request queue rejects work (backpressure).

    Callers should treat this as a retryable overload signal, not a bug:
    the micro-batcher bounds its queue so that a traffic spike degrades
    into fast rejections instead of unbounded memory growth.
    """
