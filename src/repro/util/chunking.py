"""Work partitioning helpers for data-parallel execution.

Both the kernel engine (GPU-substitute) and the SPMD drivers split point
ranges into contiguous chunks; contiguity matters because row-sliced views
of C-ordered arrays stay cache-friendly and copy-free.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["chunk_slices", "balanced_counts"]


def balanced_counts(total: int, parts: int) -> np.ndarray:
    """Split ``total`` items into ``parts`` nearly equal integer counts.

    The first ``total % parts`` chunks get one extra item, so counts differ
    by at most one — the same layout MPI's ``Scatterv`` conventionally uses.
    """
    if parts <= 0:
        raise ValidationError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, parts)
    counts = np.full(parts, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


def chunk_slices(total: int, parts: int) -> List[Tuple[int, int]]:
    """Return ``parts`` contiguous ``(start, stop)`` ranges covering ``[0, total)``."""
    counts = balanced_counts(total, parts)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return [(int(offsets[i]), int(offsets[i + 1])) for i in range(parts)]
