"""Deterministic random-number handling.

All stochastic code in this library accepts a ``seed`` argument that may be
``None``, an ``int``, a :class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator`. :func:`as_generator` normalizes these into a
``Generator``; :func:`spawn_generators` derives independent child streams,
which is how per-rank and per-bootstrap randomness is kept reproducible and
uncorrelated in SPMD runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["SeedLike", "as_generator", "spawn_generators", "seed_sequence_for_rank"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing a ``Generator`` returns it unchanged (shared stream); any other
    value constructs a fresh, independent generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Unlike ``seed + i`` arithmetic, :class:`~numpy.random.SeedSequence`
    spawning guarantees non-overlapping streams.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.spawn(n)
        return list(children)
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def seed_sequence_for_rank(
    seed: Union[None, int, np.random.SeedSequence], rank: int, size: int
) -> np.random.SeedSequence:
    """Deterministic per-rank seed sequence for SPMD programs.

    Every rank calls this with its own ``rank`` and the common ``seed`` and
    obtains the same family of sequences, so rank-local data generation is
    reproducible independently of which executor (threads, processes, MPI)
    runs the program.
    """
    if rank < 0 or rank >= size:
        raise ValueError(f"rank {rank} out of range for size {size}")
    if isinstance(seed, np.random.SeedSequence):
        base = seed
    else:
        base = np.random.SeedSequence(seed)
    return base.spawn(size)[rank]
