"""Lightweight timing utilities used by the benchmark harness.

`perf_counter`-based; a :class:`TimingRegistry` aggregates named sections so
experiment drivers can report per-phase breakdowns (project / bin / comm /
partition / assign) the way the paper's complexity analysis slices the
algorithm.

.. deprecated::
    :class:`TimingRegistry` is kept for the benchmark harness's existing
    call sites but is now a thin shim over the :mod:`repro.obs` metrics
    registry: every :meth:`TimingRegistry.add` also lands in the obs
    default registry as ``timing_section_seconds_total{section=...}`` /
    ``timing_section_calls_total{section=...}``, so legacy section timings
    show up in the same ``metrics`` scrape and ``obs-report`` output as
    phase spans. New code should use :func:`repro.obs.trace.span` (nested
    phase paths) or the registry directly instead of this class.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs import default_registry

__all__ = ["Timer", "TimingRegistry"]


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingRegistry:
    """Accumulates wall-clock time per named section across repetitions.

    .. deprecated:: see the module docstring — this is a compatibility
        shim; it mirrors every sample into the :mod:`repro.obs` default
        registry and new code should record there directly.
    """

    sections: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))

    def section(self, name: str) -> "_Section":
        """Return a context manager that records into section ``name``."""
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        seconds = float(seconds)
        self.sections[name].append(seconds)
        reg = default_registry()
        if reg.enabled:
            reg.counter(
                "timing_section_seconds_total",
                "Seconds recorded through the legacy TimingRegistry shim.",
                ("section",),
            ).labels(section=name).inc(max(seconds, 0.0))
            reg.counter(
                "timing_section_calls_total",
                "Samples recorded through the legacy TimingRegistry shim.",
                ("section",),
            ).labels(section=name).inc()

    def total(self, name: str) -> float:
        return float(sum(self.sections.get(name, ())))

    def mean(self, name: str) -> float:
        vals = self.sections.get(name, ())
        return float(sum(vals) / len(vals)) if vals else 0.0

    def names(self) -> Iterator[str]:
        return iter(self.sections)

    def summary(self) -> Dict[str, float]:
        """Total seconds per section, sorted descending."""
        totals = {name: self.total(name) for name in self.sections}
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def clear(self) -> None:
        self.sections.clear()


class _Section:
    def __init__(self, registry: TimingRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.add(self._name, time.perf_counter() - self._start)
