"""Lightweight timing utilities.

One context-manager stopwatch, ``perf_counter``-based. Aggregated
per-section timing lives in :mod:`repro.obs` — use
:func:`repro.obs.trace.span` (nested phase paths land in
``phase_seconds_total``) or a registry counter directly. The old
``TimingRegistry`` shim that bridged legacy section timings into the obs
registry has been removed; nothing outside its own tests used it.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
