"""Lightweight timing utilities used by the benchmark harness.

`perf_counter`-based; a :class:`TimingRegistry` aggregates named sections so
experiment drivers can report per-phase breakdowns (project / bin / comm /
partition / assign) the way the paper's complexity analysis slices the
algorithm.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "TimingRegistry"]


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingRegistry:
    """Accumulates wall-clock time per named section across repetitions."""

    sections: Dict[str, List[float]] = field(default_factory=lambda: defaultdict(list))

    def section(self, name: str) -> "_Section":
        """Return a context manager that records into section ``name``."""
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.sections[name].append(float(seconds))

    def total(self, name: str) -> float:
        return float(sum(self.sections.get(name, ())))

    def mean(self, name: str) -> float:
        vals = self.sections.get(name, ())
        return float(sum(vals) / len(vals)) if vals else 0.0

    def names(self) -> Iterator[str]:
        return iter(self.sections)

    def summary(self) -> Dict[str, float]:
        """Total seconds per section, sorted descending."""
        totals = {name: self.total(name) for name in self.sections}
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def clear(self) -> None:
        self.sections.clear()


class _Section:
    def __init__(self, registry: TimingRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.add(self._name, time.perf_counter() - self._start)
