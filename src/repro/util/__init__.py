"""Shared utilities: RNG handling, validation, timing, chunking, logging."""

from __future__ import annotations

from repro.util.rng import as_generator, spawn_generators, seed_sequence_for_rank
from repro.util.validation import (
    check_array_2d,
    check_finite,
    check_positive_int,
    check_probability,
    check_in_range,
)
from repro.util.timers import Timer
from repro.util.chunking import chunk_slices, balanced_counts

__all__ = [
    "as_generator",
    "spawn_generators",
    "seed_sequence_for_rank",
    "check_array_2d",
    "check_finite",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "Timer",
    "chunk_slices",
    "balanced_counts",
]
