"""Input validation helpers.

These raise :class:`repro.errors.ValidationError` with actionable messages;
they are used at public API boundaries so that internal code can assume
well-formed arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_array_2d",
    "check_finite",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]


def check_array_2d(
    x,
    name: str = "X",
    *,
    dtype=np.float64,
    min_rows: int = 1,
    min_cols: int = 1,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``x`` to a C-contiguous 2-D float array and validate its shape."""
    arr = np.asarray(x)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if not allow_empty:
        if arr.shape[0] < min_rows:
            raise ValidationError(
                f"{name} needs at least {min_rows} row(s), got {arr.shape[0]}"
            )
        if arr.shape[1] < min_cols:
            raise ValidationError(
                f"{name} needs at least {min_cols} column(s), got {arr.shape[1]}"
            )
    arr = np.ascontiguousarray(arr, dtype=dtype)
    return arr


def check_finite(x: np.ndarray, name: str = "X") -> np.ndarray:
    """Reject arrays containing NaN or infinity."""
    if not np.all(np.isfinite(x)):
        bad = int(np.size(x) - np.count_nonzero(np.isfinite(x)))
        raise ValidationError(f"{name} contains {bad} non-finite value(s) (NaN/Inf)")
    return x


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integer parameter that must be >= ``minimum``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate a float in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float in [0, 1]") from exc
    if not (0.0 <= value <= 1.0):
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Validate a scalar against an optional [low, high] range."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            raise ValidationError(f"{name} must be {'>=' if inclusive else '>'} {low}, got {value}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            raise ValidationError(f"{name} must be {'<=' if inclusive else '<'} {high}, got {value}")
    return value
