"""Shared benchmark fixtures.

Benchmarks run at reduced scale (see DESIGN.md §4 and EXPERIMENTS.md): the
paper's absolute numbers came from a 32-node cluster; what these benchmarks
pin is the *shape* — growth trends and method orderings — which survives
down-scaling. Scale knobs honour the REPRO_BENCH_SCALE environment variable
(default 1.0 = the reduced defaults; raise it to approach paper sizes).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.gaussians import gaussian_mixture


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale_factor():
    return bench_scale()


@pytest.fixture(scope="session")
def mixture_cache():
    """Memoized mixture datasets shared across benchmark files."""
    cache = {}

    def get(n_points: int, n_dims: int, seed: int = 0, separation: float = 3.0):
        key = (n_points, n_dims, seed, separation)
        if key not in cache:
            cache[key] = gaussian_mixture(
                n_points=n_points, n_dims=n_dims, n_clusters=4,
                separation=separation, seed=seed,
            )
        return cache[key]

    return get
