"""Ablation benchmarks A1–A3 (DESIGN.md §4).

A1 — partitioning mechanism under cluster imbalance,
A2 — bootstrap width (number of random projections),
A3 — the N_rp = 1.5·log N reduction rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import KeyBin2
from repro.core.keybin1 import KeyBin1
from repro.core.projection import target_dimension
from repro.data.gaussians import gaussian_mixture
from repro.metrics.pairs import pair_precision_recall_f1


class TestA1Partitioning:
    """KeyBin1's density threshold vs KeyBin2's discrete optimization."""

    @pytest.fixture(scope="class")
    def imbalanced(self):
        # Strongly skewed cluster weights: the regime where a global
        # density threshold erases small clusters.
        return gaussian_mixture(
            n_points=6000, n_dims=8, n_clusters=4,
            weight_concentration=0.4, separation=6.0, seed=2,
        )

    def test_keybin1_on_imbalance(self, benchmark, imbalanced):
        x, y = imbalanced
        kb = benchmark(lambda: KeyBin1(depth=6).fit(x))
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        benchmark.extra_info["f1"] = round(f1, 3)

    def test_keybin2_on_imbalance(self, benchmark, imbalanced):
        x, y = imbalanced
        kb = benchmark(lambda: KeyBin2(seed=2).fit(x))
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        benchmark.extra_info["f1"] = round(f1, 3)

    def test_keybin2_more_robust_to_imbalance(self):
        """Averaged over seeds, the optimization-based partitioner must
        beat the threshold heuristic on skewed mixtures."""
        f1_kb1, f1_kb2 = [], []
        for seed in range(4):
            x, y = gaussian_mixture(
                n_points=4000, n_dims=8, n_clusters=4,
                weight_concentration=0.4, separation=6.0, seed=seed,
            )
            _, _, a = pair_precision_recall_f1(y, KeyBin1(depth=6).fit(x).labels_)
            _, _, b = pair_precision_recall_f1(y, KeyBin2(seed=seed).fit(x).labels_)
            f1_kb1.append(a)
            f1_kb2.append(b)
        assert np.mean(f1_kb2) > np.mean(f1_kb1)


class TestA2Bootstrap:
    """More projections cost linearly more but buy accuracy robustness."""

    @pytest.fixture(scope="class")
    def data(self):
        return gaussian_mixture(n_points=3000, n_dims=32, n_clusters=4,
                                separation=3.0, seed=0)

    @pytest.mark.parametrize("t", (1, 4, 16))
    def test_bootstrap_width_cost(self, benchmark, data, t):
        x, y = data
        kb = benchmark(lambda: KeyBin2(n_projections=t, seed=0).fit(x))
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        benchmark.extra_info["f1"] = round(f1, 3)

    def test_wider_bootstrap_never_hurts_score(self, data):
        """The selected model's CH score is monotone in the trial budget
        (it is a max over trials with a shared seed sequence prefix)."""
        x, _ = data
        scores = []
        for t in (1, 4, 16):
            scores.append(KeyBin2(n_projections=t, seed=0).fit(x).score_)
        assert scores[0] <= scores[1] <= scores[2]


class TestA3ReductionRule:
    """N_rp sweep around the paper rule at N = 256."""

    N_DIMS = 256

    @pytest.fixture(scope="class")
    def data(self):
        return gaussian_mixture(n_points=3000, n_dims=self.N_DIMS,
                                n_clusters=4, separation=3.0, seed=0)

    @pytest.mark.parametrize("n_rp", (2, 9, 17))  # min / paper / 2×paper
    def test_nrp_cost(self, benchmark, data, n_rp):
        x, y = data
        kb = benchmark(
            lambda: KeyBin2(n_components=n_rp, n_projections=4, seed=0).fit(x)
        )
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        benchmark.extra_info["f1"] = round(f1, 3)

    def test_paper_rule_value(self):
        assert target_dimension(self.N_DIMS) == 9  # ceil(1.5·ln 256)

    def test_paper_rule_competitive(self, data):
        """The paper's N_rp must match (or beat) the tiny N_rp = 2 choice
        in accuracy on high-dimensional data, averaged over seeds."""
        f1_tiny, f1_rule = [], []
        for seed in range(3):
            x, y = gaussian_mixture(
                n_points=2000, n_dims=self.N_DIMS, n_clusters=4,
                separation=3.0, seed=seed,
            )
            _, _, a = pair_precision_recall_f1(
                y, KeyBin2(n_components=2, n_projections=4, seed=seed).fit(x).labels_
            )
            _, _, b = pair_precision_recall_f1(
                y, KeyBin2(n_projections=4, seed=seed).fit(x).labels_
            )
            f1_tiny.append(a)
            f1_rule.append(b)
        assert np.mean(f1_rule) >= np.mean(f1_tiny) - 0.02
