"""Microbenchmarks of the data-parallel kernels (the GPU-substitute layer).

These are the operations the paper offloads to CUDA; their throughput
determines the slope of every scalability curve, so they are tracked
separately from the end-to-end experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import SpaceRange
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, pack_keys
from repro.kernels.labels import intervals_for_bins
from repro.kernels.project import project_points

M, N, N_RP = 50_000, 128, 8


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.standard_normal((M, N))


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((N, N_RP))
    return a / np.linalg.norm(a, axis=0, keepdims=True)


@pytest.fixture(scope="module")
def projected(points, matrix):
    return points @ matrix


@pytest.fixture(scope="module")
def space(projected):
    return SpaceRange.from_data(projected)


@pytest.fixture(scope="module")
def bins(projected, space):
    return bin_indices(projected, space.r_min, space.r_max, 6)


def test_projection_kernel(benchmark, points, matrix):
    out = benchmark(lambda: project_points(points, matrix))
    assert out.shape == (M, N_RP)


def test_projection_kernel_chunked(benchmark, points, matrix):
    engine = KernelEngine(block_size=8192)
    out = benchmark(lambda: project_points(points, matrix, engine=engine))
    assert out.shape == (M, N_RP)


def test_key_assignment_kernel(benchmark, projected, space):
    out = benchmark(
        lambda: bin_indices(projected, space.r_min, space.r_max, 6)
    )
    assert out.shape == (M, N_RP)


def test_histogram_kernel(benchmark, bins):
    counts = benchmark(lambda: accumulate_histogram(bins, 64))
    assert counts.sum() == M * N_RP


def test_key_packing_kernel(benchmark, bins):
    keys = benchmark(lambda: pack_keys(bins, 6))
    assert keys.shape == (M,)


def test_interval_mapping_kernel(benchmark, bins):
    cuts = [np.array([20, 40], dtype=np.int64)] * N_RP
    iv = benchmark(lambda: intervals_for_bins(bins, cuts))
    assert iv.max() <= 2
