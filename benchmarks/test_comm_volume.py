"""C1 — measured communication volume vs the O(2·K·N_rp·B) claim (§3.4).

The paper argues the only data-dependent traffic is the binning histograms
— "as small as several Kbytes" — independent of the number of points. Both
properties are asserted on real traffic counters here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.ablations import run_comm_volume
from repro.core.distributed import fit_distributed
from repro.core.projection import target_dimension
from repro.data.gaussians import gaussian_mixture


def test_comm_volume_experiment(benchmark):
    result = benchmark(
        lambda: run_comm_volume(rank_steps=(2, 4), n_dims=64,
                                points_per_rank=500, n_projections=2)
    )
    master = [r for r in result.rows if r["topology"] == "master"]
    # Per-worker traffic under the master topology is flat in rank count
    # and within a small factor of the pure histogram payload.
    assert master[1]["measured"] < master[0]["measured"] * 1.5
    for r in master:
        assert r["ratio"] < 3.0


def test_traffic_independent_of_point_count():
    """10× the data, (almost) the same bytes on the wire."""
    traffic = {}
    for m in (400, 4000):
        x, y = gaussian_mixture(m, 64, n_clusters=4, seed=0)
        shards = [x[::2], x[1::2]]
        res = fit_distributed(shards, executor="thread", seed=0,
                              n_projections=2)
        traffic[m] = res.traffic[1]["bytes_sent"]
    assert traffic[4000] < traffic[400] * 1.5


def test_histogram_payload_is_kilobytes():
    """The paper's 'several Kbytes' claim at paper-like parameters:
    N = 1280 → N_rp = 11, depths up to 6."""
    n_rp = target_dimension(1280)
    total_bins = sum(1 << d for d in (3, 4, 5, 6))
    payload = n_rp * total_bins * 8  # int64 counts
    assert payload < 16 * 1024  # a few KiB indeed


def test_distributed_fit_traffic_counters(benchmark):
    x, y = gaussian_mixture(1000, 64, n_clusters=4, seed=0)
    shards = [x[i::4] for i in range(4)]

    def run():
        return fit_distributed(shards, executor="thread", seed=0,
                               n_projections=2)

    res = benchmark(run)
    worker_bytes = [t["bytes_sent"] for t in res.traffic[1:]]
    benchmark.extra_info["max_worker_bytes"] = max(worker_bytes)
