"""Figure 1 — random projections decorrelate overlapping clusters.

Benchmarks the projection + assessment machinery on the Figure-1 workload
and pins the qualitative outcome: some random rotations separate the data
(overlap → small) while KeyBin1, stuck in the original axes, cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments_figures import class_overlap_1d, run_fig1
from repro.core.estimator import KeyBin2
from repro.core.keybin1 import KeyBin1
from repro.core.projection import projection_matrix
from repro.data.correlated import correlated_clusters


@pytest.fixture(scope="module")
def fig1_data():
    return correlated_clusters(3000, seed=1)


def test_fig1_experiment(benchmark, fig1_data):
    result = benchmark(lambda: run_fig1(n_points=3000, seed=1))
    # Original axes overlap heavily …
    o0, o1 = result.overlaps["original (a)"]
    assert min(o0, o1) > 0.4
    # … some random projection separates much better …
    best = min(min(v) for k, v in result.overlaps.items() if k != "original (a)")
    assert best < min(o0, o1)
    # … and the algorithms reflect it.
    assert result.keybin2_f1 > result.keybin1_f1
    benchmark.extra_info["keybin1_f1"] = round(result.keybin1_f1, 3)
    benchmark.extra_info["keybin2_f1"] = round(result.keybin2_f1, 3)


def test_keybin2_bootstrap_cost(benchmark, fig1_data):
    x, _ = fig1_data
    benchmark(lambda: KeyBin2(n_projections=10, seed=1).fit(x))


def test_keybin1_cost(benchmark, fig1_data):
    x, _ = fig1_data
    benchmark(lambda: KeyBin1(depth=6).fit(x))


def test_projection_overlap_measure(benchmark, fig1_data):
    x, y = fig1_data
    a = projection_matrix(2, 2, seed=7)
    p = x @ a
    benchmark(lambda: class_overlap_1d(p[:, 0], y))
