"""Figure 2 — histogram-space model assessment on the 6-cluster layout.

Pins: the found partition recovers the 6 clusters (F1 ≈ 1), the CH index
ranks it above degenerate alternatives, and assessing a model costs
O(histogram), i.e. it does not grow with the number of points.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.experiments_figures import run_fig2
from repro.core.assess import histogram_ch_index
from repro.core.binning import SpaceRange
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices


def test_fig2_experiment(benchmark):
    result = benchmark(lambda: run_fig2(n_points=6000, seed=5))
    assert result.chosen_clusters == 6
    assert result.f1 > 0.95
    for score in result.alternative_scores.values():
        assert result.chosen_score > score
    benchmark.extra_info["ch_score"] = round(result.chosen_score, 1)


def test_partitioning_cost(benchmark, rng_counts=None):
    rng = np.random.default_rng(0)
    vals = np.concatenate([rng.normal(c, 3, 4000) for c in (16, 48, 90)])
    counts = np.bincount(np.clip(vals.astype(int), 0, 127), minlength=128).astype(float)
    cuts = benchmark(lambda: find_cuts(counts, n_points=12000))
    assert cuts.size == 2


def test_assessment_cost_independent_of_points(benchmark):
    """CH evaluation must cost the same for 10× the points behind the same
    histogram resolution — the §3.3 scalability claim, asserted directly."""
    def build(n_points):
        rng = np.random.default_rng(1)
        x = np.concatenate(
            [rng.normal(-8, 1, (n_points // 2, 2)),
             rng.normal(8, 1, (n_points // 2, 2))]
        )
        space = SpaceRange.from_data(x)
        bins = bin_indices(x, space.r_min, space.r_max, 6)
        counts = accumulate_histogram(bins, 64)
        cuts = [find_cuts(counts[j], n_points=n_points) for j in range(2)]
        partition = PrimaryPartition(6, cuts)
        codes = partition.cell_codes(partition.intervals_for(bins))
        table = GlobalClusterTable.from_points(codes)
        return counts, partition, partition.decode_cells(table.codes)

    small = build(2_000)
    large = build(20_000)

    def time_assess(args, reps=200):
        t0 = time.perf_counter()
        for _ in range(reps):
            histogram_ch_index(args[0], args[1].cuts, args[2])
        return time.perf_counter() - t0

    t_small = time_assess(small)
    t_large = time_assess(large)
    assert t_large < t_small * 2.5  # flat in point count

    benchmark(lambda: histogram_ch_index(large[0], large[1].cuts, large[2]))
