"""Table 2 — weak scaling: ranks double, per-rank data stays fixed.

Paper shape being reproduced on 1280-dimensional data:

* KeyBin2's wall time grows sublinearly in the number of ranks (the only
  shared work is histogram consolidation);
* parallel-kmeans' time grows faster (full-dimension centroid allreduce
  every iteration);
* (PDS)DBSCAN cannot run beyond a modest point count at all, and where it
  runs its time explodes superlinearly.

Run ``python -m repro table2`` for the full paper-style table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.parallel_kmeans import ParallelKMeans
from repro.baselines.pdsdbscan import PDSDBSCAN
from repro.bench.experiments_synthetic import estimate_dbscan_eps
from repro.core.distributed import fit_distributed
from repro.data.streams import distributed_partitions
from repro.errors import ValidationError

N_DIMS = 256           # keeps DBSCAN's brute-force cost tolerable
POINTS_PER_RANK = 400
RANK_STEPS = (1, 2, 4)


def _shards(mixture_cache, ranks, seed=0):
    x, y = mixture_cache(POINTS_PER_RANK * ranks, N_DIMS, seed=seed)
    parts = distributed_partitions(x, y, ranks, seed=seed)
    return [p[0] for p in parts], np.concatenate([p[1] for p in parts])


@pytest.mark.parametrize("ranks", RANK_STEPS)
def test_keybin2_weak_scaling(benchmark, mixture_cache, ranks):
    shards, y = _shards(mixture_cache, ranks)

    def run():
        return fit_distributed(shards, executor="thread", seed=0)

    result = benchmark(run)
    assert result.n_clusters >= 4
    benchmark.extra_info["ranks"] = ranks
    benchmark.extra_info["points"] = POINTS_PER_RANK * ranks


@pytest.mark.parametrize("ranks", RANK_STEPS)
def test_parallel_kmeans_weak_scaling(benchmark, mixture_cache, ranks):
    shards, _ = _shards(mixture_cache, ranks)

    def run():
        return ParallelKMeans(4, seed=0).fit(list(shards))

    benchmark(run)


@pytest.mark.parametrize("ranks", (1, 2))
def test_pdsdbscan_weak_scaling(benchmark, mixture_cache, ranks):
    """DBSCAN's cost at the small sizes it still handles — already orders
    of magnitude above the others and growing superlinearly."""
    shards, _ = _shards(mixture_cache, ranks)
    eps = estimate_dbscan_eps(np.concatenate(shards), seed=0)

    def run():
        return PDSDBSCAN(eps=eps, min_points=5).fit(list(shards))

    benchmark(run)


def test_dbscan_point_limit_is_real(mixture_cache):
    """The explicit guard reproducing 'could not handle more than 100,000
    points' (scaled down)."""
    from repro.baselines.dbscan import DBSCAN

    x, _ = mixture_cache(1000, 8)
    with pytest.raises(ValidationError):
        DBSCAN(eps=1.0, max_points=500).fit(x)
