"""Telemetry overhead guard (ISSUE acceptance criterion).

With the default registry *disabled*, the instrumented hot paths —
``InferenceService.predict_rows`` and ``StreamingKeyBin2.partial_fit`` —
must regress < 3% against an un-instrumented baseline. The baseline is
produced by swapping the tracer's ``span`` method for a shared
nullcontext factory (the cheapest the code could possibly be without
deleting the instrumentation), so the measured delta is exactly what the
disabled-mode ``enabled`` checks and no-op span lookups cost.

Timing method: the two variants are measured *interleaved* in one loop
and each keeps its best-of (min) — consecutive same-noise samples, so a
CPU-contention burst hits both variants instead of biasing whichever
happened to run during it. The assertion also carries a small absolute
floor so sub-50µs jitter on fast calls cannot fail a run on a noisy
machine.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np
import pytest

from repro.core.streaming import StreamingKeyBin2
from repro.obs import MetricsRegistry, set_default_registry, trace

TOLERANCE = 1.03      # < 3% regression
ABS_FLOOR_S = 5e-5    # ignore sub-50µs absolute deltas (pure jitter)
REPEATS = 50


@pytest.fixture()
def disabled_default():
    """A disabled registry installed as the process default."""
    reg = MetricsRegistry(enabled=False)
    previous = set_default_registry(reg)
    try:
        yield reg
    finally:
        set_default_registry(previous)


def _interleaved_best(instrumented_fn, baseline_fn, repeats=REPEATS):
    """Best-of timings for both variants, sampled back to back.

    Every instrumented module holds the same module-level ``trace``
    instance, so swapping its ``span`` attribute stubs the tracer out
    process-wide for the baseline samples (swap cost lands outside the
    timed windows).
    """
    null = contextlib.nullcontext()
    original_span = trace.span
    stub = lambda name: null  # noqa: E731
    best_inst = best_base = float("inf")
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            instrumented_fn()
            best_inst = min(best_inst, time.perf_counter() - t0)

            trace.span = stub
            t0 = time.perf_counter()
            baseline_fn()
            best_base = min(best_base, time.perf_counter() - t0)
            trace.span = original_span
    finally:
        trace.span = original_span
    return best_inst, best_base


def _assert_within_tolerance(name, instrumented, baseline):
    assert instrumented <= baseline * TOLERANCE + ABS_FLOOR_S, (
        f"{name} with disabled telemetry took {instrumented * 1e6:.1f}µs "
        f"vs {baseline * 1e6:.1f}µs un-instrumented "
        f"({instrumented / baseline - 1:+.1%})"
    )


def test_partial_fit_overhead_disabled(disabled_default):
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 6.0, size=(512, 16))
    params = dict(feature_range=(0.0, 6.0), candidate_depths=(5, 6, 7),
                  seed=0)

    skb_inst = StreamingKeyBin2(**params)
    skb_base = StreamingKeyBin2(**params)
    skb_inst.partial_fit(x)  # warm caches / allocations
    skb_base.partial_fit(x)

    instrumented, baseline = _interleaved_best(
        lambda: skb_inst.partial_fit(x),
        lambda: skb_base.partial_fit(x),
    )
    _assert_within_tolerance("partial_fit", instrumented, baseline)


def test_client_predict_trace_overhead_disabled(disabled_default):
    """Request-path cost of the *disabled* request tracer (< 3%).

    The serve client wraps every predict in ``get_tracer().root(...)``;
    with no tracer configured that must cost nothing measurable against
    a baseline whose ``get_tracer`` is stubbed out entirely (the
    cheapest the instrumented client could possibly be). Timed over a
    live in-thread server so the measured path is the real wire path.
    """
    from repro.core.estimator import KeyBin2
    from repro.data.gaussians import gaussian_mixture
    from repro.obs.reqtrace import NOOP_SPAN, get_tracer
    from repro.serve import BatchPolicy, ModelRegistry, ServeClient, serve_in_thread
    from repro.serve import client as client_mod

    assert not get_tracer().enabled  # the variant under test: disabled

    class _StubTracer:
        @staticmethod
        def root(name, **kwargs):
            return NOOP_SPAN

    stub = _StubTracer()
    x, _ = gaussian_mixture(n_points=256, n_dims=16, n_clusters=4, seed=3)
    model = KeyBin2(n_projections=4, seed=3).fit(x).model_
    registry = ModelRegistry()
    registry.publish(model)

    original = client_mod.get_tracer
    best_inst = best_base = float("inf")
    with serve_in_thread(registry,
                         policy=BatchPolicy(max_delay_s=0.001)) as handle:
        with ServeClient(*handle.address) as client:
            client.predict(x[0])  # warm connection + caches
            try:
                for i in range(REPEATS):
                    row = x[i % 256]
                    t0 = time.perf_counter()
                    client.predict(row)
                    best_inst = min(best_inst, time.perf_counter() - t0)

                    client_mod.get_tracer = lambda: stub
                    t0 = time.perf_counter()
                    client.predict(row)
                    best_base = min(best_base, time.perf_counter() - t0)
                    client_mod.get_tracer = original
            finally:
                client_mod.get_tracer = original
    _assert_within_tolerance("client.predict", best_inst, best_base)


def test_predict_rows_overhead_disabled(disabled_default):
    from repro.core.estimator import KeyBin2
    from repro.data.gaussians import gaussian_mixture
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import InferenceService

    x, _ = gaussian_mixture(n_points=2000, n_dims=16, n_clusters=4, seed=3)
    model = KeyBin2(n_projections=4, seed=3).fit(x).model_
    registry = ModelRegistry()
    registry.publish(model)
    service = InferenceService(registry)
    rows = x[:512]

    service.predict_rows(rows)  # warm (cache populated, allocations done)
    instrumented, baseline = _interleaved_best(
        lambda: service.predict_rows(rows),
        lambda: service.predict_rows(rows),
    )
    _assert_within_tolerance("predict_rows", instrumented, baseline)
