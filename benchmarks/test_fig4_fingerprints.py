"""Figure 4 — qualitative clustering validation on trajectory 1a70.

Benchmarks the full in-situ pipeline on a scaled 1a70 and pins the
qualitative structure: multiple metastable segments are found, fingerprints
change between them, and both views agree with ground truth well above
chance (a check the paper could only do visually).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments_proteins import run_fig4
from repro.insitu.pipeline import InSituPipeline
from repro.proteins.model_library import model_library


def test_fig4_pipeline(benchmark):
    result = benchmark(lambda: run_fig4(scale=0.1))
    res = result.result
    assert len(res.segments) >= 2
    assert res.phase_nmi > 0.3
    assert res.segment_nmi is None or res.segment_nmi > 0.3
    rendered = result.render()
    assert "1a70" in rendered
    benchmark.extra_info["segments"] = len(res.segments)
    benchmark.extra_info["clusters"] = res.n_clusters


def test_stability_validation_cost(benchmark):
    """The offline eqs. 3–4 validation pass alone."""
    import numpy as np

    from repro.insitu.stability import (
        label_probabilities,
        stability_decisions,
        stability_scores,
    )
    from repro.proteins.rmsd import rmsd_time_series, select_representatives

    spec = model_library(scale=0.05)[0]
    traj = spec.simulate()
    flat = traj.angles.reshape(traj.n_frames, -1)
    reps = select_representatives(traj.angles, 8, seed=0)

    def run():
        d = rmsd_time_series(flat, flat[reps])
        p = label_probabilities(d)
        s = stability_scores(p, window=100)
        return stability_decisions(s, 0.05)

    stable, winners = benchmark(run)
    assert stable.shape[0] == traj.n_frames


def test_online_clustering_portion(benchmark):
    """Only the streaming-clustering share of the pipeline (what actually
    runs in situ)."""
    from repro.core.streaming import StreamingKeyBin2
    from repro.proteins.encode import encode_frames

    spec = model_library(scale=0.1)[0]
    traj = spec.simulate()
    feats = encode_frames(traj.angles)

    def run():
        skb = StreamingKeyBin2(seed=0)
        for i in range(0, feats.shape[0], 250):
            skb.partial_fit(feats[i : i + 250])
        skb.refresh()
        return skb.predict(feats)

    labels = benchmark(run)
    assert labels.shape[0] == feats.shape[0]
