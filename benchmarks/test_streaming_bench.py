"""Streaming-mode benchmarks: ingest throughput and consolidation cost.

The paper's streaming story lives or dies on two numbers: how fast
``partial_fit`` absorbs a batch (must keep up with the producing
simulation) and how expensive a periodic ``refresh`` is (runs at
consolidation points). Both must be independent of the stream's history
length — only of the histogram size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingKeyBin2
from repro.data.gaussians import gaussian_mixture

N_DIMS = 64
BATCH = 1000


@pytest.fixture(scope="module")
def warm_stream():
    """A stream that has already absorbed 20k points."""
    x, _ = gaussian_mixture(20_000, N_DIMS, n_clusters=4, seed=0)
    skb = StreamingKeyBin2(seed=0, n_projections=4)
    for i in range(0, x.shape[0], BATCH):
        skb.partial_fit(x[i : i + BATCH])
    fresh, _ = gaussian_mixture(BATCH, N_DIMS, n_clusters=4, seed=1)
    return skb, fresh


def test_partial_fit_throughput(benchmark, warm_stream):
    skb, batch = warm_stream

    def run():
        skb.partial_fit(batch)

    benchmark(run)
    benchmark.extra_info["points_per_batch"] = BATCH


def test_refresh_cost(benchmark, warm_stream):
    skb, _ = warm_stream
    benchmark(skb.refresh)
    benchmark.extra_info["n_seen"] = skb.n_seen_


def test_predict_throughput(benchmark, warm_stream):
    skb, batch = warm_stream
    skb.refresh()
    labels = benchmark(lambda: skb.predict(batch))
    assert labels.shape == (BATCH,)


def test_ingest_cost_flat_in_history():
    """partial_fit on batch #100 must cost the same as on batch #2 —
    the accumulators are histograms, not data."""
    import time

    x, _ = gaussian_mixture(60_000, N_DIMS, n_clusters=4, seed=2)
    skb = StreamingKeyBin2(seed=2, n_projections=4)
    skb.partial_fit(x[:BATCH])

    def cost_of_next(start):
        t0 = time.perf_counter()
        skb.partial_fit(x[start : start + BATCH])
        return time.perf_counter() - t0

    early = min(cost_of_next(BATCH * (1 + i)) for i in range(3))
    for i in range(4, 55):
        skb.partial_fit(x[BATCH * i : BATCH * (i + 1)])
    late = min(cost_of_next(BATCH * 56), cost_of_next(BATCH * 57))
    assert late < early * 3.0
