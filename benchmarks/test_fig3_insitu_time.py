"""Figure 3 — clustering time for the protein-trajectory library.

Paper shape: KeyBin2's per-frame clustering cost is tiny (≈0.4 ms/frame on
their hardware) and far below the comparison algorithms, making in-situ
deployment viable. Here we benchmark a library subset and pin the ordering
KeyBin2 < DBSCAN, plus near-linear growth of KeyBin2's cost in frames.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.dbscan import DBSCAN
from repro.baselines.kmeans import KMeans
from repro.bench.experiments_proteins import run_fig3
from repro.bench.experiments_synthetic import estimate_dbscan_eps
from repro.core.estimator import KeyBin2
from repro.proteins.encode import encode_frames
from repro.proteins.model_library import model_library


@pytest.fixture(scope="module")
def traj_features():
    spec = model_library(scale=0.05)[3]
    traj = spec.simulate()
    return encode_frames(traj.angles)


def test_keybin2_trajectory_clustering(benchmark, traj_features):
    kb = benchmark(lambda: KeyBin2(seed=0, n_projections=4).fit(traj_features))
    assert kb.n_clusters_ >= 1
    benchmark.extra_info["n_frames"] = traj_features.shape[0]


def test_kmeans_trajectory_clustering(benchmark, traj_features):
    benchmark(lambda: KMeans(6, seed=0, n_init=1).fit(traj_features))


def test_dbscan_trajectory_clustering(benchmark, traj_features):
    eps = estimate_dbscan_eps(traj_features, seed=0)
    benchmark(lambda: DBSCAN(eps=eps, min_points=5).fit(traj_features))


def test_fig3_ordering_keybin2_vs_dbscan():
    """KeyBin2 must beat DBSCAN decisively on a *large* trajectory.

    At toy sizes DBSCAN's quadratic neighbour queries are still cheap and
    the two totals are comparable; the Figure-3 ordering is about long
    trajectories of big proteins, where the gap is an order of magnitude.
    """
    import time

    from repro.proteins.trajectory import TrajectorySimulator

    traj = TrajectorySimulator(200, 2000, n_phases=4, seed=0).simulate()
    feats = encode_frames(traj.angles)

    t0 = time.perf_counter()
    KeyBin2(seed=0, n_projections=4).fit(feats)
    keybin2_time = time.perf_counter() - t0

    eps = estimate_dbscan_eps(feats, seed=0)
    t0 = time.perf_counter()
    DBSCAN(eps=eps, min_points=5).fit(feats)
    dbscan_time = time.perf_counter() - t0

    assert keybin2_time < dbscan_time

    res = run_fig3(scale=0.02, n_trajectories=2)
    assert "Figure 3" in res.render()


def test_keybin2_per_frame_cost_flat():
    """Per-frame cost must not grow with trajectory length (linearity)."""
    costs = {}
    for scale in (0.02, 0.08):
        spec = model_library(scale=scale)[0]
        traj = spec.simulate()
        feats = encode_frames(traj.angles)
        t0 = time.perf_counter()
        KeyBin2(seed=0, n_projections=4).fit(feats)
        costs[scale] = (time.perf_counter() - t0) / feats.shape[0]
    assert costs[0.08] < costs[0.02] * 3.0
