"""Table 3 — the 31-trajectory library and its summary statistics."""

from __future__ import annotations

import pytest

from repro.bench.experiments_proteins import run_table3
from repro.proteins.model_library import library_summary, model_library


def test_library_generation(benchmark):
    specs = benchmark(lambda: model_library())
    assert len(specs) == 31


def test_table3_summary_matches_paper(benchmark):
    result = benchmark(run_table3)
    ours = result.ours
    paper = result.paper
    # Extremes must match exactly; central moments closely.
    assert ours["n_residues"]["min"] == paper["n_residues"]["min"]
    assert ours["n_residues"]["max"] == paper["n_residues"]["max"]
    assert ours["simulation_time_ps"]["min"] == paper["simulation_time_ps"]["min"]
    assert ours["simulation_time_ps"]["max"] == paper["simulation_time_ps"]["max"]
    assert abs(ours["n_residues"]["mean"] - paper["n_residues"]["mean"]) < 30
    assert (
        abs(ours["simulation_time_ps"]["mean"] - paper["simulation_time_ps"]["mean"])
        < 1000
    )


def test_trajectory_simulation_cost(benchmark):
    spec = model_library(scale=0.05)[2]
    traj = benchmark(spec.simulate)
    assert traj.n_frames == spec.n_frames
