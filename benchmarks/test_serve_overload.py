"""Overload soak: sustained traffic far above admitted capacity.

The serve layer's overload acceptance criteria (DESIGN.md, README
"Operating under overload"):

* the server degrades by *explicit, immediate* rejection — nonzero sheds,
  zero client-side timeouts;
* goodput tracks the admission rate (the token bucket actually governs);
* latency of admitted requests stays bounded by the request deadline —
  overload must not manifest as queue-bloat latency;
* a drain at the end leaves nothing in flight: every admitted request got
  its terminal response.

The closed-loop generator self-throttles, so "~5× capacity" is arranged
by giving the client pool far more concurrency-throughput than the token
bucket admits: the surplus must come back as sheds, fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import KeyBin2
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    ModelRegistry,
    run_closed_loop,
    serve_in_thread,
)

ADMIT_RATE = 400.0      # requests/second the bucket sustains
BURST = 40
DEADLINE_MS = 500.0
N_REQUESTS = 3000       # offered load: lands in ~1-2 s at client speed,
                        # several times rate * duration


@pytest.fixture(scope="module")
def overload_setup(mixture_cache):
    x, _ = mixture_cache(4000, 16, seed=0)
    model = KeyBin2(n_projections=4, seed=3).fit(x[:2000]).model_
    return model, x[2000:]


class TestOverloadSoak:
    def test_overload_degrades_by_shedding_not_timeouts(self, overload_setup):
        model, queries = overload_setup
        registry = ModelRegistry()
        registry.publish(model)
        admission = AdmissionPolicy(
            rate=ADMIT_RATE, burst=BURST, max_in_flight=256,
        )
        with serve_in_thread(
            registry,
            policy=BatchPolicy(max_delay_s=0.002),
            admission=admission,
            drain_s=5.0,
        ) as handle:
            report = run_closed_loop(
                *handle.address,
                queries[:500],
                n_requests=N_REQUESTS,
                n_clients=16,
                deadline_ms=DEADLINE_MS,
                request_timeout_s=10.0,
            )
            server = handle.server
            shed_by_reason = server.admission.shed_counts()
            stats = server.stats.snapshot()
            in_flight_after = server.admission.in_flight

        print(f"\n{report.render()}")
        print(f"  sheds by reason: {shed_by_reason}")

        # Accounting identity: every request has exactly one outcome.
        assert report.requests_sent == N_REQUESTS
        assert sum(report.outcomes.values()) == N_REQUESTS
        assert report.requests_ok + report.requests_failed == N_REQUESTS

        # Overload degraded the intended way: explicit rejections, and not
        # a single request left to rot until the client's own timeout.
        assert report.shed_total > 0
        assert report.outcomes["timeout"] == 0
        assert shed_by_reason.get("rate", 0) > 0

        # Goodput is governed by the token bucket: admitted ≈ rate × time
        # + burst. Generous ceiling — the point is "hundreds, not
        # thousands" on a run whose offered load was many times higher.
        admitted_ceiling = ADMIT_RATE * report.duration_s + BURST + 100
        assert report.requests_ok <= admitted_ceiling, (
            f"{report.requests_ok} admitted > ceiling {admitted_ceiling:.0f} "
            f"— the rate limit is not governing"
        )

        # Admitted requests stay fast: the deadline bounds p99, with
        # headroom for scheduler noise. Queue bloat would blow this up.
        if report.latencies_s:
            p99 = report.latency_quantiles()["p99"]
            assert p99 <= (DEADLINE_MS / 1000.0) + 0.25, (
                f"p99 {p99 * 1e3:.0f} ms exceeds the deadline budget"
            )

        # Clean drain: stop() returned with nothing admitted-but-unanswered,
        # and the queue-wait histogram actually sampled the traffic.
        assert in_flight_after == 0
        assert stats["queue_wait"]["count"] > 0
        assert stats["errors_total"] == 0

    def test_recovery_after_overload(self, overload_setup):
        """Once the hammering stops, the bucket refills and plain requests
        succeed again — overload leaves no sticky state behind."""
        import time

        from repro.serve import ServeClient

        model, queries = overload_setup
        registry = ModelRegistry()
        registry.publish(model)
        admission = AdmissionPolicy(rate=50.0, burst=5)
        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002),
            admission=admission,
        ) as handle:
            run_closed_loop(*handle.address, queries[:100],
                            n_requests=200, n_clients=8)
            time.sleep(0.2)  # ≥ 10 tokens at 50 rps
            with ServeClient(*handle.address) as client:
                result = client.predict(queries[0])
        assert result.version == 1
