"""Table 1 — scalability and accuracy as dimensionality grows (20 → 1280).

Paper shape being reproduced:

* KeyBin2's time grows roughly linearly with dimensionality, and much
  slower than parallel-kmeans' (whose per-iteration cost and communication
  are O(k·N));
* KeyBin2 finds ≥ the true number of clusters with precision ≈ 1 and the
  best F1 at high dimensionality;
* k-means++ becomes unusable beyond a dimension limit.

Run ``python -m repro table1`` for the full paper-style table with CIs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments_synthetic import (
    _keybin_metrics,
    _parallel_kmeans_metrics,
)
from repro.core.distributed import fit_distributed
from repro.data.streams import distributed_partitions
from repro.metrics.pairs import pair_precision_recall_f1

DIMS = (20, 80, 320, 1280)
POINTS = 1600
RANKS = 4


def _shards(mixture_cache, n_dims, seed=0):
    x, y = mixture_cache(POINTS, n_dims, seed=seed)
    parts = distributed_partitions(x, y, RANKS, seed=seed)
    return [p[0] for p in parts], np.concatenate([p[1] for p in parts])


@pytest.mark.parametrize("n_dims", DIMS)
def test_keybin2_fit_time_vs_dims(benchmark, mixture_cache, n_dims):
    shards, y = _shards(mixture_cache, n_dims)

    def run():
        return fit_distributed(shards, executor="thread", seed=0)

    result = benchmark(run)
    prec, rec, f1 = pair_precision_recall_f1(y, result.concatenated_labels())
    assert result.n_clusters >= 4          # non-parametric, finds ≥ truth
    assert prec > 0.9                      # extra clusters cost recall, not precision
    benchmark.extra_info["f1"] = round(f1, 3)
    benchmark.extra_info["clusters"] = result.n_clusters


@pytest.mark.parametrize("n_dims", DIMS)
def test_parallel_kmeans_time_vs_dims(benchmark, mixture_cache, n_dims):
    from repro.baselines.parallel_kmeans import ParallelKMeans

    shards, y = _shards(mixture_cache, n_dims)

    def run():
        return ParallelKMeans(4, seed=0).fit(list(shards))

    pk = benchmark(run)
    _, _, f1 = pair_precision_recall_f1(y, pk.concatenated_labels())
    benchmark.extra_info["f1"] = round(f1, 3)


def test_keybin2_beats_parallel_kmeans_at_high_dims(mixture_cache):
    """The Table-1 accuracy ordering at 1280 dimensions, averaged over
    seeds (parallel-kmeans' first-k seeding is luck-dependent)."""
    f1_kb, f1_pk = [], []
    for seed in range(3):
        shards, y = _shards(mixture_cache, 1280, seed=seed)
        f1_kb.append(_keybin_metrics(shards, y, seed)["f1"])
        f1_pk.append(_parallel_kmeans_metrics(shards, y, seed)["f1"])
    assert np.mean(f1_kb) > np.mean(f1_pk)


def test_kmeanspp_dim_limit_enforced(mixture_cache):
    """Paper: kmeans++ results are unavailable at ≥ 320 dims ('—')."""
    from repro.bench.experiments_synthetic import run_table1
    from repro.bench.runner import ExperimentScale

    res = run_table1(
        dims=(320,), scale=ExperimentScale(points=0.002, repeats=1, max_ranks=2),
        n_ranks=2, kmeans_dim_limit=160,
    )
    assert res.results[320]["kmeans++"] is None
