"""Serving benchmarks: micro-batching speedup and hot-swap under load.

Two claims get pinned here (the serve layer's acceptance criteria):

1. **Micro-batching pays.** Labeling one point costs a dozen small numpy
   calls of fixed dispatch overhead; labeling hundreds in one vectorized
   call costs almost the same. Coalescing concurrent single-point
   requests must therefore beat a single-request-per-call naive loop by
   ≥ 5× at a batch window ≤ 10 ms.

2. **Hot-swap is invisible.** Publishing a new model version mid-run
   completes with zero failed requests, and every response is labeled by
   exactly one version — old or new, never a mixture.

The speedup measurement is in-process (batcher + full inference pipeline,
no TCP) so it isolates the batching effect from socket costs; the
hot-swap run goes over real TCP with the load generator.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.estimator import KeyBin2
from repro.serve import (
    BatchPolicy,
    InferenceService,
    MicroBatcher,
    ModelRegistry,
    run_closed_loop,
    serve_in_thread,
)

N_REQUESTS = 4000


@pytest.fixture(scope="module")
def serving_setup(mixture_cache):
    x, _ = mixture_cache(4000, 16, seed=0)
    model = KeyBin2(n_projections=4, seed=3).fit(x[:2000]).model_
    alt = KeyBin2(n_projections=4, seed=11).fit(x[:2000]).model_
    queries = x[2000:]  # held-out traffic
    return model, alt, queries


def _naive_loop_rps(service: InferenceService, queries: np.ndarray,
                    n_requests: int, trials: int = 3) -> float:
    """One service call per request — no coalescing anywhere (best of N)."""
    best = 0.0
    for _ in range(trials):
        t0 = time.perf_counter()
        for i in range(n_requests):
            service.predict_single(queries[i % queries.shape[0]])
        best = max(best, n_requests / (time.perf_counter() - t0))
    return best


def _batched_rps(service: InferenceService, queries: np.ndarray,
                 n_requests: int, window_s: float) -> tuple:
    """n_requests concurrent single-point submits through the batcher."""

    async def scenario():
        batcher = MicroBatcher(
            service.predict_rows,
            BatchPolicy(max_batch=512, max_delay_s=window_s,
                        max_queue=2 * n_requests),
            stats=service.stats,
        ).start()
        rows = [queries[i % queries.shape[0]] for i in range(n_requests)]
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *[batcher.submit_nowait(r) for r in rows]
        )
        elapsed = time.perf_counter() - t0
        await batcher.stop()
        return n_requests / elapsed, results

    return asyncio.run(scenario())


class TestMicroBatchingSpeedup:
    def test_batched_beats_naive_loop_5x(self, serving_setup):
        """The headline acceptance criterion: ≥ 5× at window ≤ 10 ms.

        Both sides are measured best-of-3 so a noisy neighbor slowing one
        trial doesn't turn a ~9× architectural gap into a flaky assertion.
        """
        import gc

        model, _, queries = serving_setup
        registry = ModelRegistry()
        registry.publish(model)

        gc_was_enabled = gc.isenabled()
        gc.disable()  # keep collector pauses out of both measurements
        try:
            naive_service = InferenceService(registry)
            naive_rps = _naive_loop_rps(naive_service, queries,
                                        N_REQUESTS // 4)

            batched_service = InferenceService(registry)
            batched_rps = 0.0
            results = None
            for _ in range(3):
                rps, results = _batched_rps(
                    batched_service, queries, N_REQUESTS, window_s=0.005
                )
                batched_rps = max(batched_rps, rps)
        finally:
            if gc_was_enabled:
                gc.enable()

        # Same labels as the naive path, just faster.
        expected = model.predict(
            np.asarray([queries[i % queries.shape[0]]
                        for i in range(N_REQUESTS)])
        )
        assert [lab for lab, _ in results] == [int(v) for v in expected]

        speedup = batched_rps / naive_rps
        print(f"\nnaive: {naive_rps:,.0f} req/s  batched: {batched_rps:,.0f} "
              f"req/s  speedup: {speedup:.1f}x")
        assert speedup >= 5.0, (
            f"micro-batching speedup {speedup:.2f}x < 5x "
            f"(naive {naive_rps:.0f} rps, batched {batched_rps:.0f} rps)"
        )

    def test_batches_actually_formed(self, serving_setup):
        model, _, queries = serving_setup
        registry = ModelRegistry()
        registry.publish(model)
        service = InferenceService(registry)
        _batched_rps(service, queries, 1000, window_s=0.005)
        assert service.stats.mean_batch_size > 8
        assert service.stats.max_batch_seen <= 512

    def test_single_predict_throughput(self, benchmark, serving_setup):
        """pytest-benchmark number for the naive path (regression tracking)."""
        model, _, queries = serving_setup
        registry = ModelRegistry()
        registry.publish(model)
        service = InferenceService(registry)
        counter = {"i": 0}

        def one():
            i = counter["i"] = counter["i"] + 1
            return service.predict_single(queries[i % queries.shape[0]])

        benchmark(one)

    def test_batched_predict_throughput(self, benchmark, serving_setup):
        """pytest-benchmark number for a 512-wide coalesced flush."""
        model, _, queries = serving_setup
        registry = ModelRegistry()
        registry.publish(model)
        service = InferenceService(registry)
        block = np.ascontiguousarray(queries[:512])

        def flush():
            return service.predict_rows(block)

        benchmark(flush)
        benchmark.extra_info["points_per_flush"] = 512


class TestHotSwapUnderLoad:
    def test_zero_failed_requests_across_swap(self, serving_setup):
        """Registry hot-swap during a TCP load run: nothing fails, nothing
        is labeled by a phantom version."""
        model, alt, queries = serving_setup
        registry = ModelRegistry()
        registry.publish(model)

        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002)
        ) as handle:
            host, port = handle.address

            def swap_mid_run():
                # Swap once a third of the traffic is in — lands mid-run
                # regardless of machine speed (5s deadline fallback).
                deadline = time.time() + 5.0
                while (handle.server.stats.requests_total < 1000
                       and time.time() < deadline):
                    time.sleep(0.002)
                registry.publish(alt, tag="mid-run-swap")

            swapper = threading.Thread(target=swap_mid_run)
            swapper.start()
            report = run_closed_loop(host, port, queries[:500],
                                     n_requests=3000, n_clients=12)
            swapper.join()
            stats = handle.server.stats.snapshot()

        assert report.requests_ok == 3000
        assert report.requests_failed == 0
        # Exactly-one-version labeling: only v1 and v2 ever appear...
        assert report.versions_seen <= {1, 2}
        # ...and the swap genuinely took traffic mid-run.
        assert report.versions_seen == {1, 2}
        served = {int(v) for v in stats["versions_served"]}
        assert served == {1, 2}
