#!/usr/bin/env python3
"""Distributed clustering: learn from data that never moves.

Each of K sites holds a private shard. Only per-dimension histograms (a
few KB, non-invertible) travel to the master, which partitions them and
broadcasts the cuts back — the paper's §3 pipeline. This example runs the
SPMD program on the process executor (one OS process per site), reports
accuracy against a single-site fit, and prints the measured traffic so you
can verify the O(2·K·N_rp·B) communication claim yourself.

The same program runs unmodified under MPI:

    mpiexec -n 8 python examples/distributed_clustering.py --mpi

Run:  python examples/distributed_clustering.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro import KeyBin2, fit_distributed
from repro.data import distributed_partitions, gaussian_mixture
from repro.metrics import pair_precision_recall_f1


def run_local() -> None:
    n_sites = 4
    x, y = gaussian_mixture(
        n_points=20_000, n_dims=256, n_clusters=4, separation=3.5, seed=7
    )

    # Skewed partitioning: each site sees a biased subset of clusters —
    # the hard case for any local-only analysis.
    parts = distributed_partitions(x, y, n_sites, skew=0.8, seed=7)
    shards = [p[0] for p in parts]
    y_ordered = np.concatenate([p[1] for p in parts])
    print(f"{n_sites} sites, shard sizes: {[s.shape[0] for s in shards]}")
    for i, (_, yi) in enumerate(parts):
        counts = np.bincount(yi, minlength=4)
        print(f"  site {i} cluster mix: {counts.tolist()}")

    result = fit_distributed(
        shards,
        executor="process",          # true address-space isolation
        seed=7,
        consolidation="master",      # or "ring" / "allreduce"
    )
    prec, rec, f1 = pair_precision_recall_f1(
        y_ordered, result.concatenated_labels()
    )
    print(f"\ndistributed fit: {result.n_clusters} clusters, "
          f"precision={prec:.3f} recall={rec:.3f} F1={f1:.3f}")

    # Compare against clustering the pooled data in one place.
    local = KeyBin2(seed=7).fit(x)
    _, _, f1_local = pair_precision_recall_f1(y, local.labels_)
    print(f"single-site fit on pooled data:          F1={f1_local:.3f}")

    print("\nper-site traffic (the only thing that moved):")
    for rank, t in enumerate(result.traffic):
        print(f"  site {rank}: sent {t['bytes_sent']:>8,} B in "
              f"{t['messages_sent']:>3} messages, "
              f"received {t['bytes_received']:>8,} B")
    shard_bytes = shards[0].nbytes
    worker_sent = result.traffic[1]["bytes_sent"]
    print(f"\nmoving site 1's raw shard would have cost {shard_bytes:,} B — "
          f"histograms cost {worker_sent:,} B "
          f"({shard_bytes / max(worker_sent, 1):.0f}× less)")


def run_mpi() -> None:  # pragma: no cover - requires mpiexec
    from repro.comm.mpi import world_communicator
    from repro.core.distributed import keybin2_spmd
    from repro.util.rng import seed_sequence_for_rank

    comm = world_communicator()
    rng = np.random.default_rng(seed_sequence_for_rank(7, comm.rank, comm.size))
    x, y = gaussian_mixture(n_points=5_000, n_dims=256, n_clusters=4,
                            separation=3.5, seed=rng)
    labels, model = keybin2_spmd(comm, x, seed=7)
    if comm.rank == 0:
        print(f"[MPI] {comm.size} ranks, {model.n_clusters} clusters")


if __name__ == "__main__":
    if "--mpi" in sys.argv:
        run_mpi()
    else:
        run_local()
