#!/usr/bin/env python3
"""Fleet serving: 3 replicas, capacity-aware routing, staged reload.

One `serve` process hot-swaps models under load (see serve_online.py);
`repro.fleet` replicates it. The router speaks the same JSON wire
protocol as a single replica, so the client and load generator below
are the ones from `repro.serve`, unchanged. This example:

1. fits two model versions (same data, different seeds) and saves both;
2. starts 3 replicas under a ReplicaSupervisor plus a FleetRouter that
   shards single-point predicts by the model's own cell codes;
3. sends mixed traffic (single points, batches, model-info) and shows
   the shard affinity — the same point always lands on the same replica;
4. drives open-loop load while `fleet reload` walks the staged rollout
   (canary bake -> 50% -> 100%) to v2 mid-traffic — zero hard failures;
5. prints the fleet status and per-replica routing counters.

Run:  python examples/serve_fleet.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.core import KeyBin2
from repro.data import gaussian_mixture
from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.serve import ServeClient, run_open_loop


def main() -> None:
    x, _ = gaussian_mixture(n_points=6000, n_dims=16, n_clusters=4, seed=0)
    train, traffic = x[:3000], x[3000:]

    # 1. Two deployable artifacts: v1 serves first, v2 rolls out later.
    root = Path(tempfile.mkdtemp())
    v1 = KeyBin2(n_projections=4, seed=0).fit(train).model_
    v2 = KeyBin2(n_projections=4, seed=1).fit(train).model_
    v1_path, v2_path = root / "v1.json", root / "v2.json"
    v1.save(v1_path)
    v2.save(v2_path)
    print(f"v1 {v1.fingerprint()} / v2 {v2.fingerprint()} saved")

    # 2. 3 replicas + router. Thread mode keeps the example single-process;
    #    `python -m repro fleet` runs the same stack with subprocesses.
    with ReplicaSupervisor(model=v1, mode="thread", n_replicas=3) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=v1,
                              probe_interval_s=0.05) as handle:
            host, port = handle.address
            print(f"router on {host}:{port} fronting "
                  f"{len(endpoints)} replicas\n")

            # 3. Mixed traffic through the ordinary serving client.
            with ServeClient(host, port) as client:
                single = client.predict(traffic[0])
                print(f"single predict: label={single.label} "
                      f"(v{single.version})")
                batch = client.predict(traffic[:8])
                print(f"batch predict:  labels={batch.labels}")
                info = client.model_info()
                print(f"model-info:     v{info['version']}, "
                      f"fingerprint {info['fingerprint']}")

                # Shard affinity: repeats of one point hit one replica.
                for _ in range(20):
                    client.predict(traffic[0])
                status = client.request({"op": "fleet-status"})
                print(f"routed after 21x same point: "
                      f"{status['routed']}\n")

            # 4. Staged reload to v2 while open-loop traffic runs.
            report_box = {}

            def pour_traffic() -> None:
                report_box["report"] = run_open_loop(
                    host, port, traffic, rate=300.0, duration_s=3.0,
                    n_connections=8, request_timeout_s=10.0)

            loader = threading.Thread(target=pour_traffic)
            loader.start()
            time.sleep(0.5)  # let the router sample live rows for the bake
            with ServeClient(host, port, timeout=60.0) as client:
                t0 = time.perf_counter()
                summary = client.request(
                    {"op": "reload", "path": str(v2_path),
                     "tag": "v2-rollout"})
                took = time.perf_counter() - t0
            loader.join()
            report = report_box["report"]

            rollout = summary["rollout"]
            print(f"staged rollout -> v{summary['version']} in {took:.2f}s "
                  f"(state={rollout['state']}, "
                  f"canary={rollout['canary']}, "
                  f"promoted={rollout['promoted']})")
            hard = (report.outcomes.get("error", 0)
                    + report.outcomes.get("timeout", 0))
            print(f"load during rollout: {report.requests_sent} sent, "
                  f"{report.requests_ok} ok, {hard} hard failures\n")

            # 5. Final fleet view: everyone on v2, traffic spread out.
            with ServeClient(host, port) as client:
                info = client.model_info()
                status = client.request({"op": "fleet-status"})
            print(f"fleet serves fingerprint {info['fingerprint']}")
            for rid, rep in sorted(status["replicas"].items()):
                print(f"  {rid}: healthy={rep['healthy']} "
                      f"fingerprint={rep['fingerprint']} "
                      f"routed={status['routed'].get(rid, {})}")

    print("\nfleet stopped cleanly")


if __name__ == "__main__":
    main()
