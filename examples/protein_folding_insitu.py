#!/usr/bin/env python3
"""In-situ analysis of a protein folding trajectory (paper §5).

A synthetic molecular-dynamics simulation produces frames chunk by chunk;
each frame's residues are classified into six secondary-structure types
via the Ramachandran plot, and streaming KeyBin2 clusters them on the fly.
Afterwards the paper's probabilistic validation (eqs. 3–4) extracts
metastable segments and the two views are compared — including against the
simulator's ground-truth phases, which real MoDEL data cannot offer.

Run:  python examples/protein_folding_insitu.py
"""

from __future__ import annotations

import numpy as np

from repro.insitu import InSituPipeline
from repro.proteins import TrajectorySimulator


def main() -> None:
    sim = TrajectorySimulator(
        n_residues=96,
        n_frames=4000,
        n_phases=5,
        n_segments=8,        # some conformations are revisited
        seed=11,
    )
    traj = sim.simulate(name="demo-protein")
    print(f"simulated {traj.n_frames:,} frames × {traj.n_residues} residues, "
          f"{traj.n_phases} distinct metastable conformations "
          f"({traj.in_transition.mean():.0%} of frames in transition)")

    pipe = InSituPipeline(
        chunk_size=250,        # frames per in-situ batch
        refresh_every=4,       # consolidate histograms every 4 chunks
        n_representatives=10,
        seed=11,
    )
    res = pipe.run(traj)

    print(f"\nonline clustering: {res.n_clusters} fine-grained clusters")
    print(f"phase NMI (labels vs ground truth): {res.phase_nmi:.3f}")
    print("timings: " + ", ".join(f"{k}={v * 1000:.0f} ms"
                                  for k, v in res.timings.items()))
    ms_per_frame = res.timings["cluster"] * 1000 / traj.n_frames
    print(f"in-situ clustering cost: {ms_per_frame:.3f} ms/frame")

    print(f"\nmetastable segments (offline eqs. 3–4 validation):")
    for seg in res.segments:
        true_phase = np.bincount(
            traj.phase_ids[seg.start : seg.stop]
        ).argmax()
        print(f"  frames {seg.start:>5}–{seg.stop:<5} label {seg.label} "
              f"(true phase {true_phase})")
    if res.segment_nmi is not None:
        print(f"segment NMI vs ground truth: {res.segment_nmi:.3f}")

    print(f"\nfingerprint change points: {res.fingerprint_changes.tolist()}")
    boundaries = np.flatnonzero(np.diff(traj.phase_ids)) + 1
    print(f"true phase boundaries:     {boundaries.tolist()}")

    # Compact Figure-4-style timeline.
    from repro.bench.experiments_proteins import Fig4Result

    fig = Fig4Result(name=traj.name, result=res, n_frames=traj.n_frames,
                     phase_ids=traj.phase_ids)
    print("\n" + fig.render(width=96))


if __name__ == "__main__":
    main()
