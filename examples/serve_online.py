#!/usr/bin/env python3
"""Online serving: registry hot-swap, micro-batching, live stats.

A fitted KeyBin2 model is a few-KB artifact that labels points by
key → cell lookup — cheap enough to serve online. This example walks the
whole serving story in one process:

1. fit a model, save it atomically, publish it to a ModelRegistry;
2. start the stdlib-only asyncio TCP/JSON server on a background thread;
3. answer single-point and batch predicts through a client;
4. drive closed-loop traffic with the load generator while a *streaming*
   refresh hot-swaps a newer model version under the load — zero failed
   requests, every response stamped with the version that labeled it;
5. read back the server's operational stats (throughput, batch-size
   histogram, cache hit rate).

Run:  python examples/serve_online.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.core import KeyBin2, StreamingKeyBin2
from repro.data import gaussian_mixture
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    run_closed_loop,
    serve_in_thread,
)


def main() -> None:
    x, _ = gaussian_mixture(n_points=6000, n_dims=16, n_clusters=4, seed=0)
    train, traffic = x[:3000], x[3000:]

    # 1. Fit and deploy: atomic save -> load -> publish as version 1.
    model = KeyBin2(n_projections=4, seed=0).fit(train).model_
    model_path = Path(tempfile.mkdtemp()) / "model.json"
    model.save(model_path)  # atomic: temp file + os.replace
    print(f"model: {model.n_clusters} clusters, "
          f"fingerprint {model.fingerprint()}, "
          f"{model_path.stat().st_size / 1024:.1f} KB on disk")

    registry = ModelRegistry()
    registry.publish(model, tag="initial-deploy")

    # 2. Serve it (ephemeral port; micro-batch window 2 ms).
    with serve_in_thread(registry,
                         policy=BatchPolicy(max_delay_s=0.002)) as handle:
        host, port = handle.address
        print(f"serving on {host}:{port}\n")

        # 3. Point queries through the blocking client.
        with ServeClient(host, port) as client:
            result = client.predict(traffic[0])
            print(f"single predict: label={result.label} "
                  f"(model v{result.version})")
            batch = client.predict(traffic[:8])
            print(f"batch predict:  labels={batch.labels}")
            info = client.model_info()
            print(f"model-info:     v{info['version']}, "
                  f"{info['n_clusters']} clusters, depth {info['depth']}\n")

        # 4. Hot-swap under load: a streaming consolidation publishes v2
        #    while the load generator hammers the server.
        def refresh_and_swap() -> None:
            time.sleep(0.1)  # land mid-run
            skb = StreamingKeyBin2(seed=1)
            for start in range(0, 3000, 500):
                skb.partial_fit(train[start:start + 500])
            skb.refresh(publish_to=registry)  # atomic hot-swap -> v2

        swapper = threading.Thread(target=refresh_and_swap)
        swapper.start()
        report = run_closed_loop(host, port, traffic, n_requests=3000,
                                 n_clients=12)
        swapper.join()
        print(report.render())
        print(f"  (hot-swapped to v{registry.current().version} mid-run: "
              f"{report.requests_failed} failures)\n")

        # 5. Operational stats from the server itself.
        with ServeClient(host, port) as client:
            stats = client.stats()
            print(f"server stats: {stats['requests_total']} requests, "
                  f"mean batch {stats['mean_batch_size']}, "
                  f"batch hist {stats['batch_size_hist']}")
            print(f"label cache:  hit rate "
                  f"{stats['cache']['hit_rate']:.2%} "
                  f"({stats['cache']['size']} entries)")
            print(f"versions served (points): {stats['versions_served']}")

    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
