#!/usr/bin/env python3
"""Anomaly detection in the key space (the paper's §1 motivation).

The fitted KeyBin2 model is a few kilobytes, yet it carries the occupancy
of every populated region of the (projected, binned) space. A streaming
sensor, a remote site, or an in-situ simulation can therefore flag
anomalous records with one key computation each — no distances, no access
to the training data.

Run:  python examples/anomaly_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import KeyBin2, KeyOutlierDetector
from repro.data import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(5)

    # "Normal" operating data: 3 regimes in 24 dimensions.
    x_train, _ = gaussian_mixture(20_000, 24, n_clusters=3, seed=5)
    kb = KeyBin2(seed=5).fit(x_train)
    det = KeyOutlierDetector(kb.model_, contamination=0.01)
    print(f"model: {kb.n_clusters_} clusters; "
          f"threshold score = {det.threshold_:.2f}, "
          f"unseen-cell score = {det.unseen_score:.2f}")

    # New traffic: mostly normal, plus three kinds of anomalies.
    normal, _ = gaussian_mixture(2_000, 24, n_clusters=3, seed=5)
    far = rng.uniform(-200, 200, (30, 24))              # way off the manifold
    near_miss = normal[:30] + rng.normal(0, 6.0, (30, 24))  # perturbed records
    batch = np.vstack([normal, far, near_miss])
    truth = np.array([0] * len(normal) + [1] * 30 + [2] * 30)

    scores = det.score(batch)
    flagged = det.predict(batch)

    for kind, code in (("normal", 0), ("far-out", 1), ("perturbed", 2)):
        mask = truth == code
        print(f"{kind:>10}: flagged {flagged[mask].mean():6.1%}   "
              f"median score {np.median(scores[mask]):.2f}")

    # Ranking view: the top-scoring records should be the anomalies.
    top50 = np.argsort(scores)[::-1][:50]
    print(f"\nof the 50 highest-scoring records, "
          f"{np.mean(truth[top50] > 0):.0%} are injected anomalies")


if __name__ == "__main__":
    main()
