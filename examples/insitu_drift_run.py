#!/usr/bin/env python3
"""Open-world in-situ run: drift detection to automatic fleet republish.

A synthetic molecular-dynamics simulation streams frames into an
*adaptive* streaming KeyBin2 — no a-priori feature range, out-of-range
frames widen the grid by exact power-of-two rebins instead of being
clamped. Midway, the simulation escapes the sampled conformational
basin into a fold it has never visited (an abrupt regime change in
feature space). The closed loop this example demonstrates:

1. the first consolidated model is published to a 3-replica serving
   fleet, which answers open-loop predict traffic throughout;
2. the windowed drift detector flags the regime change within one
   window of the switch (total-variation divergence over the deepest
   histograms);
3. a :class:`DriftResponder` automatically re-derives the cluster
   models from the post-drift histograms and republishes them through
   the fleet's **staged rollout** (canary bake -> 50% -> 100%) — while
   the load generator keeps hammering the router, with zero hard
   failures.

Run:  python examples/insitu_drift_run.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.drift import DriftResponder
from repro.core.streaming import StreamingKeyBin2
from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.obs import default_registry
from repro.obs.report import stream_table
from repro.proteins import TrajectorySimulator, encode_frames
from repro.serve import ServeClient, run_open_loop

N_RESIDUES = 48
N_FRAMES = 1200          # per regime
CHUNK = 150              # frames per in-situ batch
DRIFT_WINDOW = 300       # frames per detector window (2 chunks)


def simulate_regimes() -> np.ndarray:
    """Frames for two conformational regimes, concatenated.

    Two independently seeded simulators share nothing but the residue
    count, so the second half of the stream is a genuinely new fold —
    the open-world event a fixed-range, fixed-model deployment cannot
    absorb.
    """
    before = TrajectorySimulator(n_residues=N_RESIDUES, n_frames=N_FRAMES,
                                 n_phases=1, seed=7).simulate("basin-A")
    after = TrajectorySimulator(n_residues=N_RESIDUES, n_frames=N_FRAMES,
                                n_phases=1, seed=99).simulate("basin-B")
    frames = np.concatenate([encode_frames(before.angles),
                             encode_frames(after.angles)])
    return frames


def main() -> None:
    frames = simulate_regimes()
    n_chunks = frames.shape[0] // CHUNK
    change_chunk = N_FRAMES // CHUNK
    print(f"{frames.shape[0]:,} frames x {N_RESIDUES} residues in "
          f"{n_chunks} chunks; regime change at chunk {change_chunk}\n")

    skb = StreamingKeyBin2(
        n_projections=6,
        candidate_depths=(4, 5, 6),
        fused=True,
        adaptive=True,                 # no a-priori range needed
        drift_window=DRIFT_WINDOW,
        drift_threshold=0.5,
        seed=7,
    )

    # Bootstrap: ingest the first window and publish v1 to the fleet.
    fed = 0
    for _ in range(DRIFT_WINDOW // CHUNK):
        skb.partial_fit(frames[fed:fed + CHUNK])
        fed += CHUNK
    v1 = skb.refresh().model_
    root = Path(tempfile.mkdtemp(prefix="kb2-drift-"))
    v1.save(root / "v1.json")
    print(f"v1 {v1.fingerprint()} published before the regime change")

    with ReplicaSupervisor(model=v1, mode="thread", n_replicas=3) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=v1,
                              probe_interval_s=0.05) as handle:
            host, port = handle.address
            print(f"fleet: 3 replicas behind {host}:{port}\n")

            def republish():
                """Save the refreshed models and walk the staged rollout."""
                path = root / f"drift-{skb.model_.fingerprint()}.json"
                skb.model_.save(path)
                with ServeClient(host, port, timeout=60.0) as client:
                    return client.request({"op": "reload", "path": str(path),
                                           "tag": "drift-response"})

            responder = DriftResponder(skb, publish=republish)

            # Open-loop traffic for the whole post-bootstrap stream: the
            # drift response must never be client-visible.
            report_box = {}

            def pour_traffic() -> None:
                report_box["report"] = run_open_loop(
                    host, port, frames[:2000], rate=250.0, duration_s=6.0,
                    n_connections=6, request_timeout_s=10.0)

            loader = threading.Thread(target=pour_traffic)
            loader.start()
            time.sleep(0.5)  # let the router sample live rows for the bake

            while fed + CHUNK <= frames.shape[0]:
                skb.partial_fit(frames[fed:fed + CHUNK])
                fed += CHUNK
                event = responder.step()
                if event is not None:
                    rollout = event.publish_result["rollout"]
                    print(f"chunk {fed // CHUNK:>2}: DRIFT on projection "
                          f"{event.projection} (score {event.score:.2f}) -> "
                          f"refresh + staged republish "
                          f"(state={rollout['state']}, "
                          f"canary={rollout['canary']})")
                time.sleep(0.05)  # in-situ cadence
            loader.join()
            report = report_box["report"]

            with ServeClient(host, port) as client:
                info = client.model_info()

    events = responder.history
    assert events, "regime change was not detected"
    assert all(e.publish_result["rollout"]["state"] == "complete"
               for e in events), "a drift republish did not complete"
    hard = (report.outcomes.get("error", 0)
            + report.outcomes.get("timeout", 0))
    assert hard == 0, f"{hard} client-visible hard failures during response"

    print(f"\nfleet now serves fingerprint {info['fingerprint']} "
          f"(v{info['version']}) — {len(events)} drift response(s), "
          f"grid rebins {sum(st.rebin_count for st in skb._states)}")
    print(f"load during response: {report.requests_sent} sent, "
          f"{report.requests_ok} ok, {hard} hard failures")
    print("\nStream range/drift telemetry (as rendered by obs-report):")
    print(stream_table(default_registry()))


if __name__ == "__main__":
    main()
