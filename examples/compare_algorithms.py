#!/usr/bin/env python3
"""Head-to-head: KeyBin2 vs KeyBin1, k-means++, X-means, DBSCAN.

Three regimes, one per paper argument:

1. correlated clusters whose 1-D projections overlap — KeyBin1's failure
   mode, fixed by KeyBin2's random rotations (Figure 1);
2. an imbalanced mixture — where KeyBin1's density threshold erases small
   clusters but the discrete-optimization partitioner keeps them;
3. high-dimensional data — where distance-based methods pay O(M·k·N) or
   collapse, and the k-means family needs k as input while KeyBin2 does not.

Run:  python examples/compare_algorithms.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import KeyBin1, KeyBin2
from repro.baselines import DBSCAN, KMeans, XMeans
from repro.bench.experiments_synthetic import estimate_dbscan_eps
from repro.data import correlated_clusters, gaussian_mixture
from repro.metrics import pair_precision_recall_f1


def evaluate(name, fit_fn, x, y):
    t0 = time.perf_counter()
    try:
        labels, k = fit_fn(x)
    except Exception as exc:  # a method refusing a regime is a result too
        print(f"  {name:<22} —  ({type(exc).__name__}: {exc})")
        return
    elapsed = time.perf_counter() - t0
    prec, rec, f1 = pair_precision_recall_f1(y, labels)
    print(f"  {name:<22} k={k:<4} precision={prec:.3f} recall={rec:.3f} "
          f"F1={f1:.3f}  ({elapsed:.2f}s)")


def algorithms(x, true_k):
    eps = estimate_dbscan_eps(x, seed=0)
    # In very low dimensions the decorrelating rotation cone is narrow, so
    # widen the bootstrap there; in high dimensions a handful suffices.
    t = 24 if x.shape[1] <= 4 else 8
    return [
        ("KeyBin2 (no k given)",
         lambda d: (lambda m: (m.labels_, m.n_clusters_))(
             KeyBin2(n_projections=t, seed=0).fit(d))),
        ("KeyBin1 (no k given)",
         lambda d: (lambda m: (m.labels_, m.n_clusters_))(KeyBin1(depth=6).fit(d))),
        (f"k-means++ (k={true_k})",
         lambda d: (lambda m: (m.labels_, true_k))(KMeans(true_k, seed=0).fit(d))),
        ("X-means (BIC)",
         lambda d: (lambda m: (m.labels_, m.n_clusters_))(
             XMeans(k_max=16, seed=0).fit(d))),
        (f"DBSCAN (eps={eps:.2f})",
         lambda d: (lambda m: (m.labels_, m.n_clusters_))(
             DBSCAN(eps=eps, min_points=5, max_points=20_000).fit(d))),
    ]


def main() -> None:
    print("regime 1 — correlated clusters, overlapping 1-D projections")
    x, y = correlated_clusters(6000, seed=1)
    for name, fn in algorithms(x, true_k=2):
        evaluate(name, fn, x, y)

    print("\nregime 2 — imbalanced mixture (cluster sizes ~ 50:1)")
    x, y = gaussian_mixture(8000, 16, n_clusters=4, weight_concentration=0.3,
                            separation=6.0, seed=2)
    sizes = np.bincount(y)
    print(f"  cluster sizes: {sorted(sizes.tolist(), reverse=True)}")
    for name, fn in algorithms(x, true_k=4):
        evaluate(name, fn, x, y)

    print("\nregime 3 — 512-dimensional mixture")
    x, y = gaussian_mixture(6000, 512, n_clusters=4, separation=3.0, seed=3)
    for name, fn in algorithms(x, true_k=4):
        evaluate(name, fn, x, y)


if __name__ == "__main__":
    main()
