#!/usr/bin/env python3
"""Streaming clustering: one pass, bounded memory, periodic consolidation.

StreamingKeyBin2 consumes batches (down to single points), keeping only
per-dimension histograms and a sparse occupied-cell counter — memory does
not grow with the stream. Periodic ``refresh()`` re-partitions the
accumulated histograms, exactly like the paper's "histograms are
communicated periodically" regime; the stream's concept drift is absorbed
by the widened binning range.

Run:  python examples/streaming_clusters.py
"""

from __future__ import annotations

import numpy as np

from repro.core import StreamingKeyBin2
from repro.data import DriftingStream
from repro.metrics import purity


def main() -> None:
    stream = DriftingStream(
        n_batches=40,
        batch_size=500,
        n_dims=32,
        n_clusters=4,
        drift=0.01,      # slow concept drift per batch
        seed=3,
    )

    skb = StreamingKeyBin2(seed=3, n_projections=4, range_expand=0.5)

    print("batch   seen      clusters   purity(batch)")
    for i, (bx, by) in enumerate(stream):
        skb.partial_fit(bx)
        if (i + 1) % 8 == 0:
            skb.refresh()               # consolidate -> new model
            labels = skb.predict(bx)    # label the newest batch
            p = purity(by, labels)
            print(f"{i + 1:>5}   {skb.n_seen_:>6,}   {skb.n_clusters_:>8}"
                  f"   {p:.3f}")

    skb.refresh()
    print(f"\nfinal model: {skb.n_clusters_} clusters from "
          f"{skb.n_seen_:,} streamed points")
    state = skb._states[0]
    hist_bytes = sum(h.nbytes for h in state.hist.values())
    print(f"memory footprint per projection: {hist_bytes:,} B of histograms"
          f" + {len(state.keys):,} tracked cells"
          f" (evicted points: {state.keys.evicted_points})")


if __name__ == "__main__":
    main()
