#!/usr/bin/env python3
"""Quickstart: cluster a high-dimensional dataset with KeyBin2.

KeyBin2 is non-parametric — you never tell it how many clusters to find —
and it never computes pairwise distances between points, so it stays fast
as dimensionality grows.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import KeyBin2
from repro.data import gaussian_mixture
from repro.metrics import pair_precision_recall_f1, purity


def main() -> None:
    # A 64-dimensional mixture of 4 Gaussian clusters with ground truth.
    x, y = gaussian_mixture(
        n_points=10_000, n_dims=64, n_clusters=4, separation=4.0, seed=0
    )
    print(f"data: {x.shape[0]:,} points × {x.shape[1]} dimensions")

    # Fit. The bootstrap tries several random projections and keeps the one
    # whose histogram-space Calinski–Harabasz score is best.
    kb = KeyBin2(n_projections=8, seed=0)
    labels = kb.fit_predict(x)

    print(f"found {kb.n_clusters_} clusters (truth: 4 — extra small "
          "clusters are normal, they are outlier cells)")
    print(f"model score (histogram-space CH): {kb.score_:.1f}")

    precision, recall, f1 = pair_precision_recall_f1(y, labels)
    print(f"pair precision = {precision:.3f}  recall = {recall:.3f}  "
          f"F1 = {f1:.3f}")
    print(f"purity = {purity(y, labels):.3f}")

    # Per-trial diagnostics: which projection/depth won?
    print("\nbootstrap trials (depth, clusters, score):")
    for t in kb.trials_:
        marker = " <= selected" if t.score == kb.score_ else ""
        print(f"  trial {t.trial}: depth={t.depth} k={t.n_clusters} "
              f"score={t.score:9.1f}{marker}")

    # The fitted model is a few KB and labels new data without the
    # training set.
    fresh, fresh_y = gaussian_mixture(
        n_points=1000, n_dims=64, n_clusters=4, separation=4.0, seed=0
    )
    fresh_labels = kb.predict(fresh)
    print(f"\nnew-data purity: {purity(fresh_y, fresh_labels):.3f} "
          "(−1 labels mark cells never seen in training)")


if __name__ == "__main__":
    main()
