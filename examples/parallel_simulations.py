#!/usr/bin/env python3
"""Parallel simulations with global in-situ analysis (paper §5.1).

"Simulations can be performed in parallel, with different nodes taking
care of … different trajectories given particular starting conditions."

Four simulated folding trajectories explore the SAME conformational
library (shared metastable targets) from different starting conditions,
each on its own rank. Periodically their histograms are consolidated, so
each rank's frames are labeled in a single GLOBAL cluster space — a
conformation discovered by rank 2 is recognized when rank 0 reaches it.

Run:  python examples/parallel_simulations.py
"""

from __future__ import annotations

import numpy as np

from repro.insitu import run_distributed_insitu
from repro.metrics import normalized_mutual_info
from repro.proteins import TrajectorySimulator


def main() -> None:
    n_ranks = 4
    # Shared conformational library: same phase targets, different dynamics.
    proto = TrajectorySimulator(n_residues=64, n_frames=1500, n_phases=5,
                                seed=42)
    targets = proto.simulate().phase_targets
    trajectories = [
        TrajectorySimulator(
            n_residues=64, n_frames=1500, n_phases=5,
            phase_targets=targets, seed=100 + i,
        ).simulate(name=f"replica-{i}")
        for i in range(n_ranks)
    ]

    results = run_distributed_insitu(
        trajectories, seed=42, executor="thread", consolidate_every=3,
    )

    print(f"{n_ranks} parallel simulations, one global model "
          f"({results[0].n_clusters} fine-grained clusters)\n")
    print("rank  NMI(phases)  fingerprint changes  bytes sent")
    for i, res in enumerate(results):
        print(f"{i:>4}  {res.phase_nmi:>11.3f}  {len(res.fingerprint_changes):>19}"
              f"  {res.traffic['bytes_sent']:>10,}")

    # Cross-trajectory recognition: pooled phases vs pooled labels is high
    # only when the phase → cluster mapping is globally consistent.
    pooled_phases = np.concatenate([t.phase_ids for t in trajectories])
    pooled_labels = np.concatenate([r.labels for r in results])
    print(f"\npooled NMI across all replicas: "
          f"{normalized_mutual_info(pooled_phases, pooled_labels):.3f}")

    # Which clusters did each replica visit? Overlap = shared conformations.
    visited = [set(np.unique(r.labels[r.labels >= 0]).tolist())
               for r in results]
    common = set.intersection(*visited)
    print(f"clusters visited per replica: {[len(v) for v in visited]}; "
          f"visited by ALL replicas: {len(common)}")


if __name__ == "__main__":
    main()
