#!/usr/bin/env python3
"""Distributed tracing through a fleet: record spans, rebuild the trees.

Runs a 2-replica fleet in-process with the request tracer enabled,
drives traced predicts through the router — including one forced
failover (a replica dies mid-run) — and writes every span to a JSONL
trace file. The recorded file is then rebuilt and printed with the same
code behind ``python -m repro obs-trace``, which is exactly how CI
smokes the whole pipeline:

    python examples/trace_fleet.py /tmp/fleet-trace.jsonl
    python -m repro obs-trace /tmp/fleet-trace.jsonl

Run:  python examples/trace_fleet.py [trace-file]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.core import KeyBin2
from repro.data import gaussian_mixture
from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.obs import (
    build_traces,
    configure_tracer,
    load_spans,
    render_trace,
    reset_tracer,
    trace_summary,
)
from repro.serve import ServeClient


def main() -> None:
    trace_path = (
        sys.argv[1] if len(sys.argv) > 1
        else str(Path(tempfile.mkdtemp()) / "fleet-trace.jsonl")
    )
    x, _ = gaussian_mixture(n_points=4000, n_dims=16, n_clusters=4, seed=0)
    train, traffic = x[:2000], x[2000:]
    model = KeyBin2(n_projections=4, seed=0).fit(train).model_

    # Everything below shares the process, so one tracer observes every
    # hop; multi-process deployments pass --trace-out per process and
    # hand obs-trace a glob over the per-pid files instead.
    tracer = configure_tracer(trace_path, sample_rate=1.0, seed=0)
    try:
        with ReplicaSupervisor(model=model, mode="thread",
                               n_replicas=2) as sup:
            endpoints = sup.start()
            with router_in_thread(endpoints, shard_model=model,
                                  probe_interval_s=60.0) as handle:
                with ServeClient(*handle.address) as client:
                    for i in range(20):
                        client.predict(traffic[i])
                    print(f"20 traced predicts through "
                          f"{len(endpoints)} replicas")

                    # Force a failover: kill one replica, keep predicting
                    # until a forward attempt fails over to the survivor.
                    sup.kill("r0")
                    deadline = time.monotonic() + 15.0
                    i = 0
                    while time.monotonic() < deadline:
                        i += 1
                        client.predict(traffic[i % len(traffic)])
                        if any(s["name"] == "router/forward"
                               and s["status"] == "failover"
                               for s in tracer.sink.spans()):
                            break
                    else:
                        raise SystemExit("no failover observed")
                    print("replica r0 killed: failover recorded")
    finally:
        reset_tracer()  # closes the sink; flushes the trace file

    # Rebuild from the recorded file — the obs-trace pipeline.
    spans = load_spans(trace_path)
    trees = build_traces(spans)
    connected = sum(1 for t in trees.values() if t.connected)
    print(f"\n{len(spans)} spans -> {len(trees)} traces "
          f"({connected} connected) in {trace_path}")

    failover_trees = [
        t for t in trees.values()
        if any(r["status"] == "failover" for r in t.spans.values())
    ]
    assert failover_trees, "expected a failover trace"
    tree = failover_trees[0]
    assert tree.connected, "failover trace must form one connected tree"
    print("\nthe failover trace:")
    print(render_trace(tree))
    summary = trace_summary(tree)
    print(f"accounted {summary['accounted_s'] * 1e3:.2f}ms of "
          f"{summary['total_s'] * 1e3:.2f}ms across "
          f"{summary['spans']} spans")
    print(f"\ninspect any trace with:  python -m repro obs-trace "
          f"{trace_path}")


if __name__ == "__main__":
    main()
