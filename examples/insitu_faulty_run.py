#!/usr/bin/env python3
"""In-situ clustering that survives losing a rank mid-stream.

Four simulated folding trajectories run in parallel, one per rank, with
periodic consolidation of the shared streaming model. A deterministic
fault plan kills rank 2 at its second consolidation. The survivors:

1. notice the death (failure sentinel + recovery notice fan-out),
2. agree on the new membership and shrink the communicator,
3. roll back to their own-history ledgers and re-merge,
4. finish the stream — ending in exactly the state a fault-free run over
   only their three trajectories would have produced.

The dead rank's already-merged frames vanish with the discarded global
view; the recovery metrics account for them precisely.

Run:  python examples/insitu_faulty_run.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.insitu import run_distributed_insitu
from repro.obs import default_registry
from repro.obs.report import recovery_table
from repro.proteins import TrajectorySimulator


def main() -> None:
    n_ranks, n_frames, chunk, every = 4, 480, 60, 2
    victim = 2

    proto = TrajectorySimulator(n_residues=32, n_frames=n_frames, n_phases=4,
                                seed=42)
    targets = proto.simulate().phase_targets
    trajectories = [
        TrajectorySimulator(
            n_residues=32, n_frames=n_frames, n_phases=4,
            phase_targets=targets, seed=100 + i,
        ).simulate(name=f"replica-{i}")
        for i in range(n_ranks)
    ]

    print(f"{n_ranks} ranks x {n_frames} frames, consolidating every "
          f"{every * chunk} frames; killing rank {victim} at its 2nd merge\n")

    with tempfile.TemporaryDirectory(prefix="kb2-ckpt-") as ckpt_dir:
        results = run_distributed_insitu(
            trajectories, seed=42, chunk_size=chunk, consolidate_every=every,
            recover=True, faults=f"kill:{victim}@1", timeout=30.0,
            checkpoint_dir=ckpt_dir,
        )
        saved = sorted(p.relative_to(ckpt_dir)
                       for p in Path(ckpt_dir).rglob("ckpt-*.kb2"))

    survivors = {i: r for i, r in enumerate(results)
                 if not isinstance(r, BaseException)}
    print("rank  status      recoveries  frames lost  lost ranks  clusters")
    for i, res in enumerate(results):
        if isinstance(res, BaseException):
            print(f"{i:>4}  died        {type(res).__name__}")
        else:
            print(f"{i:>4}  survived  {res.recoveries:>10}  "
                  f"{res.frames_lost:>11}  {str(res.lost_ranks):>10}  "
                  f"{res.n_clusters:>8}")

    print("\nRecovery metrics (as rendered by `python -m repro obs-report"
          " --faults ...`):")
    print(recovery_table(default_registry()))
    print(f"\n{len(saved)} checkpoint barriers written "
          f"(restart resumes from the newest common round), e.g. {saved[0]}")

    # The recovery is exact: survivors match a fault-free run over only
    # their own trajectories, label for label.
    reference = run_distributed_insitu(
        [t for i, t in enumerate(trajectories) if i != victim],
        seed=42, chunk_size=chunk, consolidate_every=every, timeout=30.0,
    )
    for ref, (rank, res) in zip(reference, sorted(survivors.items())):
        assert np.array_equal(res.labels, ref.labels), f"rank {rank} diverged"
    lost = {res.frames_lost for res in survivors.values()}
    print(f"\nsurvivors are bit-identical to a {n_ranks - 1}-rank fault-free "
          f"run; {lost.pop()} merged frames died with rank {victim}")


if __name__ == "__main__":
    main()
