"""Traffic accounting."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.traffic import TrafficStats, payload_nbytes


class TestPayloadNbytes:
    def test_ndarray_nbytes(self):
        arr = np.zeros(10, dtype=np.float64)
        assert payload_nbytes(arr) == 80

    def test_bytes_length(self):
        assert payload_nbytes(b"abcd") == 4

    def test_none_zero(self):
        assert payload_nbytes(None) == 0

    def test_scalar_flat_cost(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8

    def test_object_pickle_length_positive(self):
        assert payload_nbytes({"a": [1, 2, 3]}) > 0


class TestTrafficStats:
    def test_record_and_totals(self):
        t = TrafficStats()
        t.record_send(1, 100)
        t.record_send(2, 50)
        t.record_recv(1, 25)
        assert t.messages_sent == 2
        assert t.bytes_sent == 150
        assert t.messages_received == 1
        assert t.bytes_received == 25
        assert t.by_peer_sent == {1: 100, 2: 50}

    def test_reset(self):
        t = TrafficStats()
        t.record_send(0, 10)
        t.reset()
        assert t.bytes_sent == 0 and t.by_peer_sent == {}

    def test_add_merges(self):
        a = TrafficStats()
        b = TrafficStats()
        a.record_send(1, 10)
        b.record_send(1, 5)
        b.record_recv(0, 7)
        merged = a + b
        assert merged.bytes_sent == 15
        assert merged.by_peer_sent == {1: 15}
        assert merged.bytes_received == 7

    def test_snapshot_keys(self):
        snap = TrafficStats().snapshot()
        assert set(snap) == {
            "messages_sent", "messages_received", "bytes_sent", "bytes_received"
        }


class TestTrafficIntegration:
    def test_collectives_counted(self):
        def prog(comm):
            comm.allreduce(np.zeros(100))
            return comm.traffic.bytes_sent

        results = run_spmd(prog, 4, executor="thread", timeout=20)
        # Every rank but possibly the root sends at least its 800-byte buffer.
        assert all(b >= 800 for b in results[1:])

    def test_histogram_payload_dominates(self):
        """The dominant traffic of a distributed fit must be the histograms
        (the paper's communication claim, sanity level)."""

        def prog(comm):
            buf = np.zeros(1 << 12, dtype=np.int64)  # 32 KiB histogram
            comm.allreduce(buf)
            comm.bcast([1, 2, 3], root=0)  # small control message
            return comm.traffic.bytes_sent

        results = run_spmd(prog, 3, executor="thread", timeout=20)
        for nbytes in results[1:]:
            assert nbytes >= (1 << 12) * 8
