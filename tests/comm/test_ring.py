"""Ring-topology collectives."""

import numpy as np
import pytest

from repro.comm import ReduceOp, ring_allgather, ring_allreduce, ring_pass, run_spmd
from repro.comm.ring import ring_reduce_scatter
from repro.errors import CommError


def _run(fn, size, **kw):
    return run_spmd(fn, size, executor="thread", timeout=30, **kw)


class TestRingPass:
    def test_single_shift(self):
        def prog(comm):
            return ring_pass(comm, comm.rank)

        assert _run(prog, 4) == [3, 0, 1, 2]

    def test_shift_two(self):
        def prog(comm):
            return ring_pass(comm, comm.rank, shift=2)

        assert _run(prog, 4) == [2, 3, 0, 1]

    def test_size_one_identity(self):
        def prog(comm):
            return ring_pass(comm, "only")

        assert _run(prog, 1) == ["only"]


class TestRingAllreduce:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7])
    def test_matches_naive_allreduce(self, size):
        def prog(comm):
            buf = np.arange(10, dtype=float) * (comm.rank + 1)
            ring = ring_allreduce(comm, buf)
            naive = comm.allreduce(buf)
            return bool(np.allclose(ring, naive))

        assert all(_run(prog, size))

    def test_max_op(self):
        def prog(comm):
            buf = np.full(6, float(comm.rank))
            return ring_allreduce(comm, buf, op=ReduceOp.MAX).tolist()

        size = 5
        assert _run(prog, size) == [[4.0] * 6] * size

    def test_buffer_shorter_than_ranks(self):
        # Edge case: fewer elements than ranks → some chunks are empty.
        def prog(comm):
            buf = np.array([1.0, 2.0])
            return ring_allreduce(comm, buf).tolist()

        size = 4
        assert _run(prog, size) == [[4.0, 8.0]] * size

    def test_rejects_2d(self):
        def prog(comm):
            return ring_allreduce(comm, np.zeros((2, 2)))

        with pytest.raises(Exception):
            _run(prog, 2)


class TestRingReduceScatterAllgather:
    def test_reduce_scatter_chunks_sum(self):
        def prog(comm):
            buf = np.arange(8, dtype=float)
            chunk, (a, b) = ring_reduce_scatter(comm, buf)
            expected = np.arange(8, dtype=float)[a:b] * comm.size
            return bool(np.allclose(chunk, expected))

        assert all(_run(prog, 4))

    def test_allgather_reassembles(self):
        def prog(comm):
            total_length = 12
            from repro.util.chunking import chunk_slices

            idx = (comm.rank + 1) % comm.size
            a, b = chunk_slices(total_length, comm.size)[idx]
            chunk = np.arange(a, b, dtype=float)
            full = ring_allgather(comm, chunk, total_length, idx)
            return bool(np.allclose(full, np.arange(total_length, dtype=float)))

        assert all(_run(prog, 3))

    def test_allgather_wrong_chunk_length(self):
        def prog(comm):
            return ring_allgather(comm, np.zeros(3), 12, 0)

        with pytest.raises(Exception):
            _run(prog, 2)

    def test_allgather_invalid_index(self):
        def prog(comm):
            return ring_allgather(comm, np.zeros(6), 12, 99)

        with pytest.raises(Exception):
            _run(prog, 2)
