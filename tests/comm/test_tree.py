"""Tree collectives must agree with the linear reference versions."""

import numpy as np
import pytest

from repro.comm import ReduceOp, run_spmd
from repro.comm.tree import tree_allreduce, tree_barrier, tree_bcast, tree_reduce


def _run(fn, size):
    return run_spmd(fn, size, executor="thread", timeout=30)


class TestTreeBcast:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 11])
    def test_matches_linear(self, size):
        def prog(comm):
            payload = {"data": list(range(10))} if comm.rank == 0 else None
            return tree_bcast(comm, payload, root=0)

        results = _run(prog, size)
        assert all(r == {"data": list(range(10))} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        size = 5

        def prog(comm):
            payload = "from-root" if comm.rank == root else None
            return tree_bcast(comm, payload, root=root)

        assert _run(prog, size) == ["from-root"] * size

    def test_numpy_payload(self):
        def prog(comm):
            arr = np.arange(50) if comm.rank == 0 else None
            return int(tree_bcast(comm, arr, root=0).sum())

        assert _run(prog, 6) == [1225] * 6

    def test_message_rounds_logarithmic(self):
        """Root sends ⌈log2 K⌉ messages, not K − 1."""

        def prog(comm):
            tree_bcast(comm, "x", root=0)
            return comm.traffic.messages_sent

        results = _run(prog, 8)
        assert results[0] == 3  # log2(8)


class TestTreeReduce:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    def test_sum_matches_linear(self, size):
        def prog(comm):
            tree = tree_reduce(comm, comm.rank + 1, root=0)
            linear = comm.reduce(comm.rank + 1, root=0)
            return (tree, linear)

        results = _run(prog, size)
        assert results[0][0] == results[0][1] == size * (size + 1) // 2
        for tree, linear in results[1:]:
            assert tree is None and linear is None

    def test_array_sum(self):
        def prog(comm):
            out = tree_reduce(comm, np.full(4, float(comm.rank)), root=0)
            return None if out is None else out.tolist()

        results = _run(prog, 5)
        assert results[0] == [10.0] * 4

    def test_max_op(self):
        def prog(comm):
            return tree_reduce(comm, comm.rank, op=ReduceOp.MAX, root=0)

        assert _run(prog, 6)[0] == 5

    @pytest.mark.parametrize("root", [0, 2])
    def test_nonzero_root(self, root):
        def prog(comm):
            return tree_reduce(comm, 1, root=root)

        results = _run(prog, 4)
        assert results[root] == 4


class TestTreeAllreduceBarrier:
    @pytest.mark.parametrize("size", [1, 2, 3, 6, 9])
    def test_allreduce_everywhere(self, size):
        def prog(comm):
            return tree_allreduce(comm, np.array([comm.rank + 1.0]))[0]

        expected = float(size * (size + 1) // 2)
        assert _run(prog, size) == [expected] * size

    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(3):
                tree_barrier(comm)
            return True

        assert all(_run(prog, 7))
