"""Collective semantics on the thread executor (the reference backend)."""

import numpy as np
import pytest

from repro.comm import ReduceOp, run_spmd
from repro.errors import CommError


def _run(fn, size, **kw):
    return run_spmd(fn, size, executor="thread", timeout=30, **kw)


class TestBcast:
    def test_root_value_everywhere(self):
        def prog(comm):
            payload = {"v": 42} if comm.rank == 0 else None
            return comm.bcast(payload, root=0)["v"]

        assert _run(prog, 4) == [42, 42, 42, 42]

    def test_nonzero_root(self):
        def prog(comm):
            payload = comm.rank if comm.rank == 2 else None
            return comm.bcast(payload, root=2)

        assert _run(prog, 4) == [2, 2, 2, 2]

    def test_numpy_payload(self):
        def prog(comm):
            arr = np.arange(8) if comm.rank == 0 else None
            return comm.bcast(arr, root=0).sum()

        assert _run(prog, 3) == [28, 28, 28]

    def test_invalid_root(self):
        def prog(comm):
            return comm.bcast(1, root=99)

        with pytest.raises(Exception):
            _run(prog, 2)


class TestScatterGather:
    def test_scatter_distributes(self):
        def prog(comm):
            objs = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert _run(prog, 4) == [0, 10, 20, 30]

    def test_scatter_wrong_length(self):
        def prog(comm):
            objs = [1] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(Exception):
            _run(prog, 3)

    def test_gather_collects_in_rank_order(self):
        def prog(comm):
            return comm.gather(comm.rank * comm.rank, root=0)

        results = _run(prog, 4)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None and results[3] is None

    def test_allgather_everywhere(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        assert _run(prog, 3) == [["a", "b", "c"]] * 3


class TestReduce:
    def test_sum_scalar(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1)

        assert _run(prog, 4) == [10] * 4

    def test_sum_array(self):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=float)).tolist()

        assert _run(prog, 3) == [[3.0, 3.0, 3.0]] * 3

    def test_max_min(self):
        def prog(comm):
            return (
                comm.allreduce(comm.rank, op=ReduceOp.MAX),
                comm.allreduce(comm.rank, op=ReduceOp.MIN),
            )

        assert _run(prog, 5) == [(4, 0)] * 5

    def test_prod(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1, op=ReduceOp.PROD)

        assert _run(prog, 4) == [24] * 4

    def test_custom_callable_rank_ordered(self):
        # Non-commutative fold: string concatenation must follow rank order.
        def prog(comm):
            return comm.allreduce(str(comm.rank), op=lambda a, b: a + b)

        assert _run(prog, 4) == ["0123"] * 4

    def test_reduce_only_at_root(self):
        def prog(comm):
            return comm.reduce(comm.rank, root=1)

        results = _run(prog, 3)
        assert results[1] == 3
        assert results[0] is None and results[2] is None

    def test_allreduce_equals_composed(self):
        """allreduce must agree with gather + fold + bcast."""

        def prog(comm):
            fast = comm.allreduce(np.array([comm.rank, 1.0]))
            gathered = comm.allgather(np.array([comm.rank, 1.0]))
            slow = np.sum(gathered, axis=0)
            return bool(np.allclose(fast, slow))

        assert all(_run(prog, 4))


class TestAlltoall:
    def test_personalized_exchange(self):
        def prog(comm):
            objs = [(comm.rank, j) for j in range(comm.size)]
            received = comm.alltoall(objs)
            return received == [(j, comm.rank) for j in range(comm.size)]

        assert all(_run(prog, 5))

    def test_wrong_length_rejected(self):
        def prog(comm):
            return comm.alltoall([1])

        with pytest.raises(Exception):
            _run(prog, 3)


class TestBarrierAndMisc:
    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(_run(prog, 6))

    def test_split_range_partitions(self):
        def prog(comm):
            return comm.split_range(103)

        slices = _run(prog, 4)
        assert slices[0][0] == 0
        assert slices[-1][1] == 103
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0

    def test_sendrecv_ring_shift(self):
        def prog(comm):
            dest = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=dest, source=src)

        assert _run(prog, 4) == [3, 0, 1, 2]

    def test_size_one_trivial(self):
        def prog(comm):
            comm.barrier()
            assert comm.allreduce(5) == 5
            assert comm.allgather("x") == ["x"]
            return comm.bcast("y")

        assert _run(prog, 1) == ["y"]
