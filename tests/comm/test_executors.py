"""Executor equivalence and failure semantics."""

import numpy as np
import pytest

from repro.comm import run_spmd, spmd_available_executors
from repro.comm.serial import SerialComm
from repro.errors import CommError, RankFailedError


def _allreduce_prog(comm):
    local = np.full(4, float(comm.rank + 1))
    total = comm.allreduce(local)
    gathered = comm.allgather(comm.rank)
    return float(total[0]), gathered


def _failing_prog(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.allreduce(1.0)


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_same_results_as_serial_math(self, executor):
        size = 4
        results = run_spmd(_allreduce_prog, size, executor=executor, timeout=60)
        expected_total = sum(range(1, size + 1))
        for total, gathered in results:
            assert total == expected_total
            assert gathered == list(range(size))

    def test_serial_executor(self):
        results = run_spmd(_allreduce_prog, 1, executor="serial")
        assert results[0][0] == 1.0

    def test_serial_rejects_multi_rank(self):
        with pytest.raises(CommError):
            run_spmd(_allreduce_prog, 2, executor="serial")

    def test_unknown_executor(self):
        with pytest.raises(CommError, match="unknown executor"):
            run_spmd(_allreduce_prog, 2, executor="quantum")

    def test_zero_size_rejected(self):
        with pytest.raises(CommError):
            run_spmd(_allreduce_prog, 0)

    def test_available_executors_contains_builtins(self):
        names = spmd_available_executors()
        for expected in ("serial", "thread", "process"):
            assert expected in names


class TestFailurePropagation:
    def test_thread_failure_raises_with_rank(self):
        with pytest.raises(RankFailedError) as exc:
            run_spmd(_failing_prog, 3, executor="thread", timeout=20)
        assert exc.value.rank == 1
        assert "rank 1 exploded" in str(exc.value)

    def test_process_failure_raises_with_rank(self):
        with pytest.raises(RankFailedError) as exc:
            run_spmd(_failing_prog, 3, executor="process", timeout=60)
        assert exc.value.rank == 1

    def test_blocked_peers_released(self):
        """Ranks blocked in a collective must not hang when a peer dies."""

        with pytest.raises(RankFailedError):
            run_spmd(_failing_prog, 4, executor="thread", timeout=20)
        # Reaching this line at all demonstrates release; assert again for
        # clarity that the run did not succeed silently.

    def test_timeout_detects_deadlock(self):
        def deadlock(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=77)  # rank 1 never sends
            return None

        with pytest.raises((CommError, RankFailedError)):
            run_spmd(deadlock, 2, executor="thread", timeout=0.5)


class TestSerialComm:
    def test_identity(self):
        comm = SerialComm()
        assert comm.rank == 0 and comm.size == 1

    def test_self_send_recv(self):
        comm = SerialComm()
        comm.send("hello", dest=0, tag=3)
        assert comm.recv(source=0, tag=3) == "hello"

    def test_recv_without_send_raises(self):
        comm = SerialComm()
        with pytest.raises(CommError, match="deadlock"):
            comm.recv(source=0, tag=1)

    def test_fifo_per_tag(self):
        comm = SerialComm()
        comm.send(1, 0, tag=0)
        comm.send(2, 0, tag=0)
        assert comm.recv(0, tag=0) == 1
        assert comm.recv(0, tag=0) == 2

    def test_invalid_peer(self):
        comm = SerialComm()
        with pytest.raises(CommError):
            comm.send("x", dest=1)
