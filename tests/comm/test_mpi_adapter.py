"""Tests for the optional mpi4py adapter (guarded-import paths)."""

import pytest

from repro.comm.mpi import mpi_available, world_communicator
from repro.errors import CommError


class TestMPIGuards:
    def test_mpi_available_is_boolean(self):
        assert isinstance(mpi_available(), bool)

    def test_world_communicator_raises_without_mpi4py(self):
        if mpi_available():  # pragma: no cover - environment-dependent
            pytest.skip("mpi4py installed; adapter would succeed")
        with pytest.raises(CommError, match="mpi4py"):
            world_communicator()

    def test_executor_list_reflects_mpi(self):
        from repro.comm import spmd_available_executors

        names = spmd_available_executors()
        assert ("mpi" in names) == mpi_available()
