"""Tests for the zero-copy shared-memory array transport."""

import os

import numpy as np
import pytest

from repro.comm.process import run_spmd_processes
from repro.comm.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmArrayRef,
    open_array,
    share_array,
    shareable,
    unlink_ref,
)
from repro.errors import RankFailedError

SHM_DIR = "/dev/shm"


def _shm_names():
    """Snapshot of python shared-memory segment names currently backing."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-tmpfs platform
        return set()
    return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}


class TestShareOpenRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(24, dtype=np.float64).reshape(4, 6),
            np.arange(7, dtype=np.int32),
            np.zeros((3, 0, 5)),  # zero-size: segment size clamps to 1 byte
            np.array(3.5),  # zero-dim scalar array
        ],
        ids=["2d-f8", "1d-i4", "empty", "scalar"],
    )
    def test_round_trip_preserves_value_shape_dtype(self, arr):
        ref = share_array(arr)
        out = open_array(ref)
        assert out.shape == arr.shape
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_ref_is_tiny_and_endianness_explicit(self):
        ref = share_array(np.ones((1000, 1000)))
        assert isinstance(ref, ShmArrayRef)
        # dtype.str spelling leads with an explicit byte order, never "=".
        assert ref.dtype[0] in "<>|"
        import pickle

        assert len(pickle.dumps(ref)) < 200
        unlink_ref(ref)

    def test_non_contiguous_source_copied_correctly(self):
        base = np.arange(100, dtype=np.float64).reshape(10, 10)
        sliced = base[::2, ::3]  # strided view
        out = open_array(share_array(sliced))
        assert np.array_equal(out, sliced)

    def test_receiver_unlinks_immediately(self):
        before = _shm_names()
        ref = share_array(np.ones(64))
        created = _shm_names() - before
        assert len(created) == 1  # segment exists while in flight
        open_array(ref)
        # The name is gone the moment the receiver attaches — a crash
        # after this point cannot leak the segment.
        assert not (_shm_names() - before)

    def test_large_array_integrity(self, rng):
        arr = rng.standard_normal((512, 257))
        out = open_array(share_array(arr))
        assert np.array_equal(out, arr)
        # Zero-copy: mutating the mapped array must not touch the source.
        out[0, 0] += 1.0
        assert out[0, 0] != arr[0, 0]


class TestShareable:
    def test_large_plain_array(self):
        assert shareable(np.zeros(1 << 14), threshold=1 << 16)

    def test_below_threshold(self):
        assert not shareable(np.zeros(10), threshold=1 << 16)

    def test_at_threshold_boundary(self):
        arr = np.zeros(DEFAULT_SHM_THRESHOLD, dtype=np.uint8)
        assert shareable(arr, DEFAULT_SHM_THRESHOLD)
        assert not shareable(arr[:-1], DEFAULT_SHM_THRESHOLD)

    def test_non_array_payloads(self):
        assert not shareable([0.0] * 100_000, threshold=1)
        assert not shareable("x" * 100_000, threshold=1)
        assert not shareable({"a": np.zeros(100_000)}, threshold=1)

    def test_object_dtype_refused(self):
        # Object arrays hold pointers; their bytes are meaningless in
        # another address space.
        arr = np.array([{"a": 1}, {"b": 2}], dtype=object)
        assert not shareable(arr, threshold=1)


class TestUnlinkRef:
    def test_reclaims_unreceived_segment(self):
        before = _shm_names()
        ref = share_array(np.ones(128))
        assert unlink_ref(ref) is True
        assert not (_shm_names() - before)

    def test_already_received_returns_false(self):
        ref = share_array(np.ones(128))
        open_array(ref)
        assert unlink_ref(ref) is False

    def test_double_sweep_returns_false(self):
        ref = share_array(np.ones(128))
        assert unlink_ref(ref) is True
        assert unlink_ref(ref) is False


# SPMD programs must be module-level for the process executor.

def _ring_exchange_prog(comm, n):
    """Each rank sends a large deterministic array to the next rank."""
    rng = np.random.default_rng(1000 + comm.rank)
    payload = rng.standard_normal((n,))
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    got = comm.sendrecv(payload, dest=right, source=left, tag=5)
    expected = np.random.default_rng(1000 + left).standard_normal((n,))
    return bool(np.array_equal(got, expected))


def _dead_receiver_prog(comm, n):
    """Rank 0 parks a large array in shm for a rank that dies first."""
    if comm.rank == 1:
        raise ValueError("receiver died before draining its inbox")
    if comm.rank == 0:
        comm.send(np.ones(n), dest=1, tag=9)
    return comm.rank


class TestSpmdIntegration:
    def test_large_arrays_cross_process_ranks_intact(self):
        before = _shm_names()
        results = run_spmd_processes(
            _ring_exchange_prog, size=3, args=(20_000,), timeout=60,
            shm_threshold=1 << 10,
        )
        assert results == [True, True, True]
        assert not (_shm_names() - before)  # nothing leaked

    def test_small_threshold_none_disables_shm_path(self):
        results = run_spmd_processes(
            _ring_exchange_prog, size=2, args=(4_000,), timeout=60,
            shm_threshold=None,
        )
        assert results == [True, True]

    def test_rank_failure_leaves_no_leaked_segments(self):
        before = _shm_names()
        with pytest.raises(RankFailedError) as exc:
            run_spmd_processes(
                _dead_receiver_prog, size=2, args=(50_000,), timeout=60,
                shm_threshold=1 << 10,
            )
        assert exc.value.rank == 1
        # The dead rank never received rank 0's array; the teardown sweep
        # must have unlinked the orphaned segment.
        assert not (_shm_names() - before)
