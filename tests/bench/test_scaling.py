"""Tests for the complexity-verification harness (C2)."""

import numpy as np
import pytest

from repro.bench.scaling import loglog_slope, run_scaling
from repro.errors import ValidationError


class TestLogLogSlope:
    def test_linear_data_slope_one(self):
        xs = [10, 100, 1000]
        ys = [5, 50, 500]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data_slope_two(self):
        xs = [10, 100, 1000]
        ys = [1, 100, 10000]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_constant_data_slope_zero(self):
        assert loglog_slope([1, 10, 100], [7, 7, 7]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            loglog_slope([1], [1])
        with pytest.raises(ValidationError):
            loglog_slope([1, 2], [0, 1])


class TestRunScaling:
    def test_small_run_shape(self):
        res = run_scaling(
            m_values=(1_000, 4_000), n_values=(16, 64),
            fixed_n=16, fixed_m=1_000, repeats=1,
        )
        assert len(res.m_sweep) == 2
        assert len(res.n_sweep) == 2
        assert np.isfinite(res.m_slope)
        assert "C2" in res.render()

    def test_m_slope_at_most_linearish(self):
        """The headline claim: growth in M is at most ~linear (slope ≤ 1.2
        with measurement noise); it must certainly not look quadratic."""
        res = run_scaling(
            m_values=(2_000, 8_000, 32_000), n_values=(16,),
            fixed_n=16, fixed_m=2_000, repeats=2,
        )
        assert res.m_slope < 1.3
