"""Tests for the protein-experiment result containers."""

import numpy as np
import pytest

from repro.bench.experiments_proteins import Fig3Result, Fig4Result
from repro.insitu.pipeline import InSituPipeline
from repro.proteins.trajectory import TrajectorySimulator


class TestFig3Result:
    def _result(self):
        res = Fig3Result()
        res.rows.append({"name": "a", "n_frames": 100, "n_residues": 10,
                         "keybin2_time": 0.5, "kmeans_time": 0.1,
                         "dbscan_time": 1.0, "keybin2_clusters": 4})
        res.rows.append({"name": "b", "n_frames": 300, "n_residues": 20,
                         "keybin2_time": 1.5, "kmeans_time": 0.3,
                         "dbscan_time": None, "keybin2_clusters": 6})
        return res

    def test_totals(self):
        totals = self._result().totals()
        assert totals["keybin2_time"] == pytest.approx(2.0)
        assert totals["dbscan_time"] == pytest.approx(1.0)  # None skipped

    def test_per_frame(self):
        per = self._result().per_frame()
        assert per["keybin2_time"] == pytest.approx(2.0 / 400)

    def test_render_contains_dash_for_skipped(self):
        out = self._result().render()
        assert "—" in out
        assert "Figure 3" in out


class TestFig4Result:
    def test_render_narrow_width(self):
        traj = TrajectorySimulator(16, 400, n_phases=3, seed=1).simulate()
        res = InSituPipeline(seed=1).run(traj)
        fig = Fig4Result(name="tiny", result=res, n_frames=traj.n_frames,
                         phase_ids=traj.phase_ids)
        out = fig.render(width=40)
        lines = out.splitlines()
        assert any(len(l) <= 41 for l in lines)
        assert "tiny" in out
