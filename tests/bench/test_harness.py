"""Tests for the benchmark harness plumbing (tables, runner, small runs)."""

import numpy as np
import pytest

from repro.bench.runner import ExperimentScale, repeat_with_seeds, timed
from repro.bench.tables import TextTable, format_mean_ci
from repro.errors import ValidationError


class TestTextTable:
    def test_render_contains_cells(self):
        t = TextTable(["Method", "F1"], title="demo")
        t.section("case A")
        t.row(["KeyBin2", "0.9"])
        out = t.render()
        assert "demo" in out
        assert "case A" in out
        assert "KeyBin2" in out and "0.9" in out

    def test_row_width_mismatch(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValidationError):
            t.row(["only-one"])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            TextTable([])

    def test_alignment_consistent(self):
        t = TextTable(["col", "value"])
        t.row(["short", "1"])
        t.row(["a-much-longer-cell", "2"])
        lines = t.render().splitlines()
        data = [l for l in lines if l.startswith(("short", "a-much"))]
        positions = {l.rstrip()[-1] == l.rstrip()[-1] for l in data}
        widths = {len(l) for l in data}
        assert len(widths) == 1  # padded to equal width

    def test_format_mean_ci(self):
        assert format_mean_ci(0.87654, 0.0321) == "0.877 ± 0.032"
        assert format_mean_ci(1.0, 0.5, digits=1) == "1.0 ± 0.5"


class TestRunner:
    def test_timed(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_repeat_with_seeds_distinct(self):
        seen = []

        def body(seed):
            seen.append(seed)
            return {"x": float(seed)}

        agg = repeat_with_seeds(body, 3, base_seed=7)
        assert len(set(seen)) == 3
        assert agg.n_runs("x") == 3

    def test_repeat_invalid(self):
        with pytest.raises(ValidationError):
            repeat_with_seeds(lambda s: {}, 0)

    def test_scale_from_factor(self):
        full = ExperimentScale.from_factor(1.0)
        assert full.repeats == 20
        assert full.max_ranks == 16
        assert full.points_per_rank() == 80_000
        small = ExperimentScale.from_factor(0.01)
        assert small.points_per_rank() == 800

    def test_scale_floor(self):
        tiny = ExperimentScale.from_factor(1e-9)
        assert tiny.points_per_rank() >= 200

    def test_invalid_factor(self):
        with pytest.raises(ValidationError):
            ExperimentScale.from_factor(0.0)


class TestSmallExperimentRuns:
    """Tiny smoke runs of each experiment (shape checks, not benchmarks)."""

    def test_fig1(self):
        from repro.bench.experiments import run_fig1

        res = run_fig1(n_points=600, seed=1)
        assert "original (a)" in res.overlaps
        # The original correlated data overlaps in both dims.
        o0, o1 = res.overlaps["original (a)"]
        assert min(o0, o1) > 0.4
        assert res.keybin2_clusters >= 2
        assert res.keybin2_f1 > res.keybin1_f1
        assert "KeyBin2" in res.render()

    def test_fig2(self):
        from repro.bench.experiments import run_fig2

        res = run_fig2(n_points=1800, seed=5)
        assert res.chosen_clusters == 6
        assert res.f1 > 0.95
        for score in res.alternative_scores.values():
            assert res.chosen_score > score
        assert "Figure 2" in res.render()

    def test_table3(self):
        from repro.bench.experiments import run_table3

        res = run_table3()
        out = res.render()
        assert "Number of residues" in out
        assert res.ours["n_residues"]["min"] == 58

    def test_comm_volume_master_flat(self):
        from repro.bench.experiments import run_comm_volume

        res = run_comm_volume(rank_steps=(2, 4), n_dims=32,
                              points_per_rank=300, n_projections=2)
        master = [r for r in res.rows if r["topology"] == "master"]
        assert len(master) == 2
        # Master-topology per-worker traffic must not grow with ranks.
        assert master[1]["measured"] < master[0]["measured"] * 1.5
        assert "C1" in res.render()

    def test_table1_tiny(self):
        from repro.bench.experiments import run_table1
        from repro.bench.runner import ExperimentScale

        scale = ExperimentScale(points=0.005, repeats=1, max_ranks=2)
        res = run_table1(dims=(8,), scale=scale, n_ranks=2, seed=0)
        agg = res.results[8]["KeyBin2"]
        assert agg.n_runs("f1") == 1
        assert "Table 1" in res.render()

    def test_table2_tiny(self):
        from repro.bench.experiments import run_table2
        from repro.bench.runner import ExperimentScale

        scale = ExperimentScale(points=0.005, repeats=1, max_ranks=2)
        res = run_table2(rank_steps=(1, 2), n_dims=16, scale=scale, seed=0)
        assert set(res.results) == {1, 2}
        assert "Table 2" in res.render()

    def test_fig3_tiny(self):
        from repro.bench.experiments import run_fig3

        res = run_fig3(scale=0.01, n_trajectories=2)
        assert len(res.rows) == 2
        totals = res.totals()
        assert totals["keybin2_time"] > 0
        assert "Figure 3" in res.render()

    def test_fig4_tiny(self):
        from repro.bench.experiments import run_fig4

        res = run_fig4(scale=0.05)
        out = res.render()
        assert "1a70" in out
        assert res.result.labels.shape[0] == res.n_frames

    def test_ablation_bootstrap_tiny(self):
        from repro.bench.experiments import run_ablation_bootstrap

        res = run_ablation_bootstrap(trials=(1, 2), n_points=500, n_dims=8,
                                     repeats=1)
        assert set(res.rows) == {"1", "2"}
        assert "Ablation" in res.render()
