"""Tests for the CLI front-end (cheap subcommands only)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Number of residues" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "KeyBin2" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_scale_argument_parsed(self, capsys):
        assert main(["table3", "--scale", "0.5"]) == 0

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for name in ("table1", "fig4", "comm-volume", "scaling"):
            assert name in out
