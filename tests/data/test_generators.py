"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.correlated import correlated_clusters
from repro.data.gaussians import gaussian_mixture
from repro.data.shapes import box_clusters, moons, ring_clusters
from repro.data.streams import (
    BatchStream,
    DriftingStream,
    MeanShiftStream,
    RangeGrowthStream,
    RegimeChangeStream,
    distributed_partitions,
)
from repro.errors import ValidationError


class TestGaussianMixture:
    def test_shape_and_labels(self):
        x, y = gaussian_mixture(500, 8, n_clusters=3, seed=0)
        assert x.shape == (500, 8)
        assert y.shape == (500,)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_every_cluster_populated(self):
        _, y = gaussian_mixture(100, 4, n_clusters=10, seed=1)
        assert np.unique(y).size == 10

    def test_reproducible(self):
        a = gaussian_mixture(100, 4, seed=5)
        b = gaussian_mixture(100, 4, seed=5)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_separation_respected(self):
        x, y = gaussian_mixture(2000, 6, n_clusters=4, separation=8.0, seed=2)
        centers = np.stack([x[y == k].mean(axis=0) for k in range(4)])
        for i in range(4):
            for j in range(i + 1, 4):
                # sampled centres jitter around the requested separation
                assert np.linalg.norm(centers[i] - centers[j]) > 6.0

    def test_diagonal_covariance(self):
        x, y = gaussian_mixture(20_000, 3, n_clusters=1, seed=3)
        cov = np.cov(x.T)
        off = cov - np.diag(np.diag(cov))
        assert np.abs(off).max() < 0.05

    def test_weight_concentration_balances(self):
        _, y_bal = gaussian_mixture(4000, 2, n_clusters=4, seed=4,
                                    weight_concentration=1000.0)
        counts = np.bincount(y_bal)
        assert counts.max() / counts.min() < 1.3

    def test_shuffle_disabled_blocks(self):
        _, y = gaussian_mixture(100, 2, n_clusters=2, seed=0, shuffle=False)
        changes = np.count_nonzero(np.diff(y))
        assert changes == 1

    def test_invalid(self):
        with pytest.raises(ValidationError):
            gaussian_mixture(3, 2, n_clusters=4)
        with pytest.raises(ValidationError):
            gaussian_mixture(10, 2, sigma_range=(1.0, 0.5))


class TestShapes:
    def test_box_clusters(self):
        x, y = box_clusters(400, n_dims=3, n_clusters=4, seed=0)
        assert x.shape == (400, 3)
        assert np.unique(y).size == 4

    def test_boxes_bounded(self):
        x, y = box_clusters(400, n_dims=2, n_clusters=2, side=4.0,
                            spacing=10.0, seed=0)
        for k in range(2):
            pts = x[y == k]
            assert np.ptp(pts[:, 0]) <= 4.0 + 1e-9

    def test_box_invalid_geometry(self):
        with pytest.raises(ValidationError):
            box_clusters(10, side=5.0, spacing=4.0)

    def test_rings_radii(self):
        x, y = ring_clusters(600, n_rings=2, radius_step=5.0, seed=0)
        r = np.linalg.norm(x, axis=1)
        assert abs(np.median(r[y == 0]) - 5.0) < 0.5
        assert abs(np.median(r[y == 1]) - 10.0) < 0.5

    def test_moons_two_classes(self):
        x, y = moons(500, seed=0)
        assert x.shape == (500, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_moons_min_points(self):
        with pytest.raises(ValidationError):
            moons(1)


class TestCorrelated:
    def test_projection_overlap_property(self):
        """Both original axes must show heavy class overlap while the 2-D
        clusters are separated — the Figure-1 construction."""
        x, y = correlated_clusters(3000, seed=0)
        for dim in range(2):
            lo = np.percentile(x[y == 0, dim], 10)
            hi = np.percentile(x[y == 0, dim], 90)
            other = x[y == 1, dim]
            frac_inside = np.mean((other > lo) & (other < hi))
            assert frac_inside > 0.5  # heavy 1-D overlap
        # Yet the clusters are separated along the minor axis direction.
        minor = np.zeros(2)
        minor[0], minor[1] = 1.0, -1.0
        minor /= np.sqrt(2)
        proj = x @ minor
        gap = abs(np.median(proj[y == 0]) - np.median(proj[y == 1]))
        assert gap > 2.0

    def test_n_dims_above_two(self):
        x, y = correlated_clusters(500, n_dims=5, seed=1)
        assert x.shape == (500, 5)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            correlated_clusters(100, n_dims=1)
        with pytest.raises(ValidationError):
            correlated_clusters(100, n_clusters=1)


class TestStreams:
    def test_batchstream_covers_data(self, rng):
        x = rng.random((95, 3))
        y = rng.integers(0, 2, 95)
        batches = list(BatchStream(x, y, 20))
        assert len(batches) == 5
        assert sum(b[0].shape[0] for b in batches) == 95
        reassembled = np.concatenate([b[0] for b in batches])
        assert np.array_equal(reassembled, x)

    def test_batchstream_replayable(self, rng):
        stream = BatchStream(rng.random((10, 2)), None, 3)
        assert len(list(stream)) == len(list(stream))

    def test_batchstream_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            BatchStream(rng.random((10, 2)), np.zeros(9), 3)

    def test_drifting_stream_batches(self):
        stream = DriftingStream(n_batches=4, batch_size=50, n_dims=3, seed=0)
        batches = list(stream)
        assert len(batches) == 4
        for bx, by in batches:
            assert bx.shape == (50, 3)
            assert by.shape == (50,)

    def test_drift_moves_centers(self):
        big_drift = DriftingStream(
            n_batches=10, batch_size=200, n_dims=2, n_clusters=1, drift=0.5, seed=1
        )
        batches = list(big_drift)
        first = batches[0][0].mean(axis=0)
        last = batches[-1][0].mean(axis=0)
        assert np.linalg.norm(first - last) > 1.0


class TestDistributedPartitions:
    def test_covers_all_rows(self, rng):
        x = rng.random((100, 2))
        y = rng.integers(0, 3, 100)
        parts = distributed_partitions(x, y, 4, seed=0)
        assert sum(p[0].shape[0] for p in parts) == 100

    def test_skew_one_sorts_by_label(self, rng):
        x = rng.random((300, 2))
        y = np.repeat([0, 1, 2], 100)
        parts = distributed_partitions(x, y, 3, skew=1.0, seed=0)
        # Each rank sees (almost) one label.
        for _, yi in parts:
            assert np.unique(yi).size == 1

    def test_skew_zero_mixes(self, rng):
        x = rng.random((300, 2))
        y = np.repeat([0, 1, 2], 100)
        parts = distributed_partitions(x, y, 3, skew=0.0, seed=0)
        for _, yi in parts:
            assert np.unique(yi).size == 3

    def test_none_labels_ok(self, rng):
        parts = distributed_partitions(rng.random((50, 2)), None, 2, seed=0)
        assert parts[0][1] is None

    def test_invalid_skew(self, rng):
        with pytest.raises(ValidationError):
            distributed_partitions(rng.random((10, 2)), None, 2, skew=2.0)


class TestRangeGrowthStream:
    def test_shapes_and_determinism(self):
        a = [(x.copy(), y.copy()) for x, y in RangeGrowthStream(
            n_batches=4, batch_size=50, n_dims=3, seed=7)]
        b = list(RangeGrowthStream(n_batches=4, batch_size=50, n_dims=3,
                                   seed=7))
        assert len(a) == 4
        for (xa, ya), (xb, yb) in zip(a, b):
            assert xa.shape == (50, 3) and ya.shape == (50,)
            assert ya.dtype == np.int64
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_spread_grows_geometrically(self):
        spreads = [float(np.abs(x).max()) for x, _ in RangeGrowthStream(
            n_batches=8, batch_size=400, n_dims=4, growth=2.0, seed=0)]
        # Late batches dwarf early ones: any fixed range is exceeded.
        assert spreads[-1] > 20 * spreads[0]

    def test_growth_one_is_stationary(self):
        spreads = [float(np.abs(x).max()) for x, _ in RangeGrowthStream(
            n_batches=6, batch_size=400, n_dims=4, growth=1.0, seed=0)]
        assert max(spreads) < 3 * min(spreads)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RangeGrowthStream(n_batches=0, batch_size=10, n_dims=2)
        with pytest.raises(ValidationError):
            RangeGrowthStream(n_batches=2, batch_size=10, n_dims=2,
                              growth=0.0)


class TestMeanShiftStream:
    def test_mean_walks_linearly(self):
        means = [x.mean(axis=0) for x, _ in MeanShiftStream(
            n_batches=10, batch_size=500, n_dims=4, shift=2.0, seed=1)]
        steps = [float(np.linalg.norm(means[i + 1] - means[i]))
                 for i in range(len(means) - 1)]
        # Every step moves by ~shift along one fixed unit direction
        # (batch means also jitter with cluster-membership sampling, a
        # noise term of order separation/sqrt(batch_size) per step).
        for step in steps:
            assert 0.5 < step < 4.0
        total = float(np.linalg.norm(means[-1] - means[0]))
        assert total == pytest.approx(2.0 * 9, rel=0.15)

    def test_geometry_is_stationary(self):
        # Centered batches look alike: only the mean moves.
        batches = [x for x, _ in MeanShiftStream(
            n_batches=6, batch_size=2000, n_dims=3, shift=3.0, seed=2)]
        stds = [np.std(x - x.mean(axis=0)) for x in batches]
        assert max(stds) < 1.2 * min(stds)

    def test_deterministic(self):
        a = list(MeanShiftStream(n_batches=3, batch_size=20, n_dims=2,
                                 seed=9))
        b = list(MeanShiftStream(n_batches=3, batch_size=20, n_dims=2,
                                 seed=9))
        for (xa, _), (xb, _) in zip(a, b):
            np.testing.assert_array_equal(xa, xb)


class TestRegimeChangeStream:
    def test_labels_disjoint_across_regimes(self):
        stream = list(RegimeChangeStream(n_batches=6, batch_size=100,
                                         n_dims=3, change_at=3,
                                         n_clusters=4, seed=0))
        before = np.unique(np.concatenate([y for _, y in stream[:3]]))
        after = np.unique(np.concatenate([y for _, y in stream[3:]]))
        assert before.max() < 4 <= after.min()
        assert not set(before) & set(after)

    def test_n_clusters_after_controls_second_regime(self):
        stream = list(RegimeChangeStream(n_batches=4, batch_size=400,
                                         n_dims=3, change_at=2,
                                         n_clusters=2, n_clusters_after=5,
                                         seed=1))
        after = np.unique(np.concatenate([y for _, y in stream[2:]]))
        assert set(after) == set(range(2, 7))

    def test_distribution_actually_moves(self):
        stream = list(RegimeChangeStream(n_batches=6, batch_size=500,
                                         n_dims=4, change_at=3, seed=2))
        mean_before = np.concatenate([x for x, _ in stream[:3]]).mean(axis=0)
        mean_after = np.concatenate([x for x, _ in stream[3:]]).mean(axis=0)
        assert np.linalg.norm(mean_after - mean_before) > 2.0

    def test_change_at_must_be_interior(self):
        for bad in (0, 5, -1):
            with pytest.raises(ValidationError):
                RegimeChangeStream(n_batches=5, batch_size=10, n_dims=2,
                                   change_at=bad)

    def test_deterministic(self):
        a = list(RegimeChangeStream(n_batches=4, batch_size=30, n_dims=2,
                                    change_at=2, seed=4))
        b = list(RegimeChangeStream(n_batches=4, batch_size=30, n_dims=2,
                                    change_at=2, seed=4))
        for (xa, ya), (xb, yb) in zip(a, b):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)
