"""Fixtures for the observability-layer tests."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, set_default_registry


@pytest.fixture()
def fresh_default():
    """Install a fresh registry as the process default, restore on exit."""
    reg = MetricsRegistry()
    previous = set_default_registry(reg)
    try:
        yield reg
    finally:
        set_default_registry(previous)
