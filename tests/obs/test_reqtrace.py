"""Request-tracing unit tests: wire context, sampling, sink, rebuild."""

from __future__ import annotations

import json

import pytest

from repro.obs.reqtrace import (
    NOOP_SPAN,
    RequestTracer,
    TraceContext,
    TraceSink,
    build_traces,
    configure_tracer,
    extract,
    get_tracer,
    inject,
    load_spans,
    render_trace,
    reset_tracer,
    trace_summary,
)


@pytest.fixture()
def tracer():
    return RequestTracer(TraceSink(), sample_rate=1.0, seed=7)


class TestWireContext:
    def test_inject_extract_roundtrip(self, tracer):
        with tracer.root("client/predict") as span:
            payload = {"op": "predict", "x": [1.0]}
            inject(payload, span)
        ctx = extract(payload)
        assert ctx is not None
        assert ctx.trace_id == span.trace_id
        assert ctx.span_id == span.span_id
        assert ctx.sampled is True

    def test_inject_from_context_object(self):
        ctx = TraceContext("a" * 16, "b" * 16, False)
        payload = {}
        inject(payload, ctx)
        assert payload["trace"] == {"id": "a" * 16, "span": "b" * 16,
                                    "sampled": 0}

    @pytest.mark.parametrize("field", [
        None, "not-a-dict", {}, {"id": "short", "span": "b" * 16},
        {"id": "a" * 16, "span": 12345},
        {"id": "A" * 16, "span": "b" * 16},  # uppercase = invalid
    ])
    def test_extract_tolerates_malformed(self, field):
        request = {"op": "predict"}
        if field is not None:
            request["trace"] = field
        assert extract(request) is None

    def test_extract_non_dict_request(self):
        assert extract(None) is None
        assert extract(["not", "a", "dict"]) is None


class TestSampling:
    def test_disabled_tracer_returns_noop(self):
        disabled = RequestTracer()
        assert disabled.root("x") is NOOP_SPAN
        assert disabled.child_of(NOOP_SPAN, "y") is NOOP_SPAN
        assert disabled.from_wire({"trace": {}}, "z") is NOOP_SPAN
        assert NOOP_SPAN.context is None

    def test_sample_rate_zero_emits_nothing_on_ok(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)
        with tracer.root("client/predict"):
            pass
        assert sink.emitted == 0

    def test_unsampled_error_span_still_emitted(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)

        class Shed(Exception):
            code = "shed"

        with pytest.raises(Shed):
            with tracer.root("client/predict"):
                raise Shed()
        assert sink.emitted == 1
        assert sink.spans()[0]["status"] == "shed"

    def test_sampling_decision_rides_the_wire(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)
        root = tracer.root("client/predict")
        assert root.sampled is False
        child = tracer.child_of(root, "server/predict")
        with child:
            pass
        assert sink.emitted == 0  # child inherited the unsampled decision

    def test_force_overrides_rate(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)
        with tracer.root("rollout/run", force=True):
            pass
        assert sink.emitted == 1

    def test_exception_status_from_code_attr(self, tracer):
        class Deadline(Exception):
            code = "deadline_exceeded"

        with pytest.raises(Deadline):
            with tracer.root("server/predict"):
                raise Deadline()
        assert tracer.sink.spans()[-1]["status"] == "deadline_exceeded"

    def test_plain_exception_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.root("server/predict"):
                raise RuntimeError("boom")
        assert tracer.sink.spans()[-1]["status"] == "exception"

    def test_event_always_emitted_even_unsampled(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)
        tracer.event("router/eject", attrs={"replica": "r0"})
        assert sink.emitted == 1
        assert sink.spans()[0]["status"] == "event"

    def test_emit_timed_skips_unsampled_ok_keeps_errors(self):
        sink = TraceSink()
        tracer = RequestTracer(sink, sample_rate=0.0, seed=1)
        ctx = TraceContext("a" * 16, "b" * 16, sampled=False)
        tracer.emit_timed("server/queue", ctx, 0.001)
        assert sink.emitted == 0
        tracer.emit_timed("server/queue", ctx, 0.001,
                          status="deadline_exceeded")
        assert sink.emitted == 1

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            RequestTracer(TraceSink(), sample_rate=1.5)


class TestSink:
    def test_file_export_and_pid_expansion(self, tmp_path):
        import os

        path = tmp_path / "spans-{pid}.jsonl"
        sink = TraceSink(str(path))
        assert str(os.getpid()) in sink.path
        sink.emit({"trace": "a" * 16, "span": "b" * 16, "parent": None,
                   "name": "x", "start": 1.0, "dur": 0.1, "status": "ok",
                   "attrs": {}})
        sink.close()
        records = load_spans(str(tmp_path / "spans-*.jsonl"))
        assert len(records) == 1 and records[0]["name"] == "x"

    def test_max_spans_cap_counts_drops(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = TraceSink(str(path), max_spans=2)
        for i in range(5):
            sink.emit({"span": f"{i:016x}"})
        sink.close()
        assert sink.emitted == 5
        assert sink.dropped == 3
        assert len(path.read_text().splitlines()) == 2
        # The memory ring still holds the most recent spans regardless.
        assert len(sink.spans()) == 5

    def test_memory_ring_bounded(self):
        sink = TraceSink(memory=3)
        for i in range(10):
            sink.emit({"span": f"{i:016x}"})
        assert len(sink.spans()) == 3

    def test_load_spans_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            'garbage\n{"span": "' + "a" * 16 + '"}\n{"no": "span"}\n\n'
        )
        records = load_spans(str(path))
        assert len(records) == 1

    def test_global_configure_reset(self, tmp_path):
        assert not get_tracer().enabled
        tracer = configure_tracer(str(tmp_path / "t.jsonl"))
        try:
            assert get_tracer() is tracer and tracer.enabled
        finally:
            reset_tracer()
        assert not get_tracer().enabled


def _emit_tree(tracer):
    """client -> router -> forward -> server(predict -> model_call)."""
    with tracer.root("client/predict") as root:
        with tracer.child_of(root, "router/route") as route:
            with tracer.child_of(route, "router/forward") as fwd:
                with tracer.child_of(fwd, "server/predict") as srv:
                    tracer.emit_timed("server/model_call", srv, 0.0)
    return root.trace_id


class TestReconstruction:
    def test_connected_tree_single_root(self, tracer):
        trace_id = _emit_tree(tracer)
        trees = build_traces(tracer.sink.spans())
        assert set(trees) == {trace_id}
        tree = trees[trace_id]
        assert tree.connected
        assert len(tree.spans) == 5
        assert tree.root["name"] == "client/predict"
        names = [record["name"] for _, record in tree.walk()]
        assert names[0] == "client/predict"
        assert "server/model_call" in names

    def test_orphan_detection(self, tracer):
        _emit_tree(tracer)
        records = tracer.sink.spans()
        # Drop the router/route span: its children lose their link.
        broken = [r for r in records if r["name"] != "router/route"]
        tree = next(iter(build_traces(broken).values()))
        assert not tree.connected
        assert len(tree.orphans) == 1

    def test_self_times_sum_to_root_duration(self, tracer):
        trace_id = _emit_tree(tracer)
        tree = build_traces(tracer.sink.spans())[trace_id]
        summary = trace_summary(tree)
        assert summary["connected"]
        assert summary["accounted_s"] == pytest.approx(
            summary["total_s"], rel=1e-9
        )

    def test_summary_phases_cover_model_call(self, tracer):
        trace_id = _emit_tree(tracer)
        tree = build_traces(tracer.sink.spans())[trace_id]
        summary = trace_summary(tree)
        assert "predict kernel (paper §3)" in summary["phases"]
        assert summary["hops"]["client/predict"]["count"] == 1

    def test_render_trace_marks_errors(self, tracer):
        class Shed(Exception):
            code = "shed"

        with pytest.raises(Shed):
            with tracer.root("client/predict") as root:
                with tracer.child_of(root, "server/predict"):
                    raise Shed()
        tree = next(iter(build_traces(tracer.sink.spans()).values()))
        text = render_trace(tree)
        assert "!shed" in text
        assert "client/predict" in text

    def test_render_disconnected_banner(self, tracer):
        _emit_tree(tracer)
        broken = [r for r in tracer.sink.spans()
                  if r["name"] != "client/predict"]
        tree = next(iter(build_traces(broken).values()))
        assert "DISCONNECTED" in render_trace(tree)

    def test_wire_roundtrip_reconnects_across_processes(self, tracer):
        # Simulate the cross-process hop: context travels as JSON bytes.
        with tracer.root("client/predict") as root:
            payload = {"op": "predict", "x": [0.0]}
            inject(payload, root)
            wire = json.dumps(payload).encode()
            request = json.loads(wire)
            with tracer.from_wire(request, "server/predict"):
                pass
        tree = next(iter(build_traces(tracer.sink.spans()).values()))
        assert tree.connected
