"""Phase-tracer tests: nesting, thread propagation, disabled no-op."""

import threading

import pytest

from repro.obs import MetricsRegistry, PhaseTracer, trace
from repro.obs.trace import _NOOP_SPAN


def _phase_values(reg, name="phase_seconds_total"):
    fam = reg.get(name)
    if fam is None:
        return {}
    return {
        s["labels"]["phase"]: s["value"] for s in fam.snapshot()["samples"]
    }


def test_nested_spans_build_slash_paths():
    reg = MetricsRegistry()
    tracer = PhaseTracer(reg)
    with tracer.span("partial_fit"):
        with tracer.span("project"):
            pass
        with tracer.span("bin"):
            pass
    phases = set(_phase_values(reg))
    assert phases == {"partial_fit", "partial_fit/project", "partial_fit/bin"}
    calls = _phase_values(reg, "phase_calls_total")
    assert calls["partial_fit"] == 1
    assert calls["partial_fit/project"] == 1


def test_span_elapsed_and_seconds_accumulate():
    reg = MetricsRegistry()
    tracer = PhaseTracer(reg)
    with tracer.span("work") as sp:
        pass
    assert sp.elapsed >= 0.0
    assert _phase_values(reg)["work"] == pytest.approx(sp.elapsed)
    with tracer.span("work"):
        pass
    assert _phase_values(reg, "phase_calls_total")["work"] == 2


def test_path_restored_after_exit_even_on_error():
    reg = MetricsRegistry()
    tracer = PhaseTracer(reg)
    try:
        with tracer.span("outer"):
            assert tracer.current_path() == ("outer",)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.current_path() == ()
    # The failed span still recorded (its time was genuinely spent).
    assert _phase_values(reg, "phase_calls_total")["outer"] == 1


def test_propagate_reroots_worker_thread():
    reg = MetricsRegistry()
    tracer = PhaseTracer(reg)
    done = threading.Event()

    def worker():
        # A fresh thread starts from an empty contextvar path; propagate
        # re-roots it so spans attribute under the logical parent.
        assert tracer.current_path() == ()
        with tracer.propagate(("serve",)):
            with tracer.span("flush"):
                pass
        assert tracer.current_path() == ()
        done.set()

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert done.is_set()
    assert "serve/flush" in _phase_values(reg)


def test_disabled_registry_hands_back_shared_noop_span():
    reg = MetricsRegistry(enabled=False)
    tracer = PhaseTracer(reg)
    sp = tracer.span("anything")
    assert sp is _NOOP_SPAN
    with sp:
        assert tracer.current_path() == ()
    assert reg.get("phase_calls_total") is None


def test_module_tracer_follows_default_registry(fresh_default):
    with trace.span("root"):
        pass
    assert "root" in _phase_values(fresh_default)
