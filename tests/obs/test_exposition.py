"""Exposition (Prometheus text + JSON), snapshot logger, obs-report."""

import io
import json

from repro.obs import (
    MetricsRegistry,
    SnapshotLogger,
    ensure_core_series,
    render_json,
    render_prometheus,
    run_obs_report,
)


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("req_total", "Requests.", ("op",)).labels(op="predict").inc(3)
    reg.gauge("depth", "Queue depth.").set(7)
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheusText:
    def test_help_type_and_samples(self):
        text = render_prometheus(_populated_registry())
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="predict"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text

    def test_histogram_rendering(self):
        text = render_prometheus(_populated_registry())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("p",)).labels(p='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'c_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_multi_registry_merge_and_dedupe(self):
        a = _populated_registry()
        b = MetricsRegistry()
        b.counter("req_total", "Requests.", ("op",)).labels(op="stats").inc()
        b.counter("only_b_total").inc()
        text = render_prometheus([a, b, a])  # a listed twice: deduped
        assert text.count('req_total{op="predict"}') == 1
        assert 'req_total{op="stats"} 1' in text
        assert "only_b_total 1" in text

    def test_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")


class TestPrometheusConformance:
    """Text-format (0.0.4) invariants the fleet scrapers rely on."""

    def test_help_escapes_backslash_and_newline(self):
        reg = MetricsRegistry()
        reg.counter("c_total", 'path\\to\nthing "quoted"').inc()
        text = render_prometheus(reg)
        assert '# HELP c_total path\\\\to\\nthing "quoted"' in text

    def test_histogram_buckets_cumulative_and_terminated(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", "H.", buckets=(0.01, 0.1, 1.0),
                          labelnames=("op",))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.labels(op="x").observe(v)
        text = render_prometheus(reg)
        counts = []
        for line in text.splitlines():
            if line.startswith("h_seconds_bucket"):
                counts.append(float(line.rsplit(" ", 1)[1]))
        # Cumulative, monotone non-decreasing, +Inf last and == _count.
        assert counts == sorted(counts)
        assert 'le="+Inf"' in text.splitlines()[
            [i for i, l in enumerate(text.splitlines())
             if l.startswith("h_seconds_bucket")][-1]
        ]
        assert counts[-1] == 5.0
        assert "h_seconds_count" in text and "h_seconds_sum" in text
        count_line = next(l for l in text.splitlines()
                          if l.startswith("h_seconds_count"))
        assert float(count_line.rsplit(" ", 1)[1]) == counts[-1]

    def test_every_sample_line_parses(self):
        text = render_prometheus(_populated_registry())
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value is a valid float
            assert name_part[0].isalpha() or name_part[0] == "_"

    def test_le_label_merges_with_user_labels(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", "H.", buckets=(1.0,),
                          labelnames=("op",))
        h.labels(op="predict").observe(0.5)
        text = render_prometheus(reg)
        assert 'h_seconds_bucket{op="predict",le="1"} 1' in text
        assert 'h_seconds_bucket{op="predict",le="+Inf"} 1' in text


class TestJson:
    def test_shape_round_trips_through_json(self):
        payload = render_json(_populated_registry())
        blob = json.loads(json.dumps(payload))
        fam = blob["families"]["req_total"]
        assert fam["type"] == "counter"
        assert fam["samples"] == [{"labels": {"op": "predict"}, "value": 3.0}]
        hist = blob["families"]["lat_seconds"]["samples"][0]
        assert hist["buckets"]["+Inf"] == hist["count"] == 3


class TestEnsureCoreSeries:
    def test_core_families_present_even_at_zero_samples(self):
        reg = ensure_core_series(MetricsRegistry())
        text = render_prometheus(reg)
        for name in (
            "phase_calls_total",
            "phase_seconds_total",
            "insitu_consolidation_rounds_total",
            "insitu_consolidation_bytes_total",
            "kernel_launches_total",
            "stream_points_total",
        ):
            assert f"# TYPE {name} counter" in text

    def test_idempotent(self):
        reg = MetricsRegistry()
        ensure_core_series(reg)
        ensure_core_series(reg)  # second call must not raise or duplicate
        assert len([f for f in reg.families()
                    if f.name == "phase_calls_total"]) == 1


class TestSnapshotLogger:
    def test_writes_json_lines_and_final_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(4)
        sink = io.StringIO()
        with SnapshotLogger(sink, interval_s=3600.0, registries=[reg]):
            pass  # interval never fires; stop() writes the final snapshot
        lines = [l for l in sink.getvalue().splitlines() if l]
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["ts"] > 0
        assert record["families"]["c_total"]["samples"][0]["value"] == 4.0

    def test_periodic_snapshots(self):
        reg = MetricsRegistry()
        sink = io.StringIO()
        logger = SnapshotLogger(sink, interval_s=0.01, registries=[reg])
        with logger:
            import time

            deadline = time.monotonic() + 2.0
            while logger.snapshots_written < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert logger.snapshots_written >= 3  # >= 2 periodic + 1 final
        for line in sink.getvalue().splitlines():
            json.loads(line)  # every line parses whole

    def test_slow_writes_do_not_stretch_cadence(self):
        # A sink whose write takes ~1.5 intervals: fixed-sleep scheduling
        # would drift the cadence to interval+write; tick-boundary
        # scheduling instead skips missed ticks and stays aligned, so over
        # the run we still land >= half the wall-clock tick count.
        import time

        reg = MetricsRegistry()
        interval = 0.02

        class SlowSink(io.StringIO):
            def write(self, s):
                time.sleep(interval * 1.5)
                return super().write(s)

        sink = SlowSink()
        t0 = time.monotonic()
        with SnapshotLogger(sink, interval_s=interval, registries=[reg]):
            time.sleep(0.4)
        elapsed = time.monotonic() - t0
        ticks = elapsed / interval
        lines = [l for l in sink.getvalue().splitlines() if l]
        # Every ~1.5-tick write still lands on a boundary: close to
        # ticks/1.5 snapshots, and never the drifted interval+write rate
        # (which would cap at ticks/2.5).
        assert len(lines) >= int(ticks / 2.5) + 1
        for line in lines:
            json.loads(line)

    def test_path_sink(self, tmp_path):
        reg = MetricsRegistry()
        path = tmp_path / "metrics.jsonl"
        with SnapshotLogger(str(path), interval_s=3600.0, registries=[reg]):
            pass
        assert json.loads(path.read_text().splitlines()[0])["families"] == {}


class TestObsReport:
    def test_report_renders_phase_and_comm_tables(self):
        out = run_obs_report(n_ranks=2, n_frames=80, chunk_size=40,
                             consolidate_every=2, seed=0)
        assert "Per-phase time" in out
        assert "partial_fit" in out
        assert "Consolidation comm volume" in out
        assert "hist B/round" in out

    def test_report_json_contains_core_series(self):
        blob = json.loads(run_obs_report(
            n_ranks=2, n_frames=80, chunk_size=40, consolidate_every=2,
            seed=0, as_json=True,
        ))
        fams = blob["families"]
        assert blob["workload"]["ranks"] == 2
        assert blob["workload"]["model_hist_bytes_per_round"] > 0
        assert any(
            s["value"] > 0
            for s in fams["insitu_consolidation_bytes_total"]["samples"]
        )
        assert any(
            s["labels"]["phase"].endswith("partial_fit/project")
            for s in fams["phase_calls_total"]["samples"]
        )
