"""stream_table rendering: OOR rows, rebins, drift scores, edge warnings."""

from __future__ import annotations

import numpy as np

from repro.obs import MetricsRegistry, set_default_registry
from repro.obs.report import EDGE_BIN_WARN_FRACTION, stream_table


def _reg() -> MetricsRegistry:
    return MetricsRegistry()


def _oor(reg, projection, dim, side, n):
    reg.counter(
        "stream_out_of_range_total", "", ("projection", "dim", "side")
    ).labels(projection=projection, dim=dim, side=side).inc(n)


def _edge(reg, projection, fraction):
    reg.gauge(
        "stream_edge_bin_fraction", "", ("projection",)
    ).labels(projection=projection).set(fraction)


class TestStreamTable:
    def test_untouched_registry_renders_one_liner(self):
        assert stream_table(_reg()) == "  (no stream range/drift events)"

    def test_oor_rows_grouped_by_projection_and_side(self):
        reg = _reg()
        _oor(reg, "0", "0", "low", 3)
        _oor(reg, "0", "1", "low", 4)  # same projection+side, other dim
        _oor(reg, "1", "0", "high", 5)
        out = stream_table(reg)
        assert "out-of-range rows: 12" in out
        assert "proj0/low=7" in out
        assert "proj1/high=5" in out

    def test_zero_valued_series_are_omitted(self):
        reg = _reg()
        _oor(reg, "0", "0", "low", 0)
        reg.counter("stream_rebin_total", "", ("projection",)).labels(
            projection="0"
        )  # touched but never incremented
        assert stream_table(reg) == "  (no stream range/drift events)"

    def test_rebins_and_drift_scores_render(self):
        reg = _reg()
        reg.counter("stream_rebin_total", "", ("projection",)).labels(
            projection="2"
        ).inc(3)
        reg.gauge("stream_drift_score", "", ("projection",)).labels(
            projection="2"
        ).set(0.875)
        reg.counter(
            "stream_drift_responses_total", "", ("projection",)
        ).labels(projection="2").inc()
        out = stream_table(reg)
        assert "adaptive grid rebins: 3" in out
        assert "proj2=0.875" in out
        assert "drift-triggered republishes: 1" in out

    def test_edge_saturation_warns_above_threshold(self):
        reg = _reg()
        _edge(reg, "0", 0.002)
        _edge(reg, "1", 0.40)
        out = stream_table(reg)
        assert "WARNING" in out
        assert "projection(s) 1" in out
        assert "adaptive binning" in out  # the actionable remedy

    def test_edge_below_threshold_stays_quiet(self):
        reg = _reg()
        _edge(reg, "0", EDGE_BIN_WARN_FRACTION / 2)
        out = stream_table(reg)
        assert "edge-bin mass fraction" in out
        assert "WARNING" not in out

    def test_custom_edge_warn_threshold(self):
        reg = _reg()
        _edge(reg, "0", 0.03)
        assert "WARNING" not in stream_table(reg)  # default 5%
        assert "WARNING" in stream_table(reg, edge_warn=0.01)


class TestStreamTableEndToEnd:
    def test_adaptive_growth_run_populates_every_section(self):
        from repro.core.streaming import StreamingKeyBin2
        from repro.data.streams import RangeGrowthStream

        reg = _reg()
        prev = set_default_registry(reg)
        try:
            skb = StreamingKeyBin2(
                n_projections=3, candidate_depths=(4, 5), fused=True,
                adaptive=True, drift_window=300, seed=0,
            )
            for x, _ in RangeGrowthStream(n_batches=6, batch_size=200,
                                          n_dims=8, growth=2.0, seed=2):
                skb.partial_fit(x)
        finally:
            set_default_registry(prev)
        out = stream_table(reg)
        assert "out-of-range rows:" in out
        assert "adaptive grid rebins:" in out
        assert "drift scores (latest window TV):" in out

    def test_fixed_range_clipping_run_warns(self):
        rng = np.random.default_rng(0)
        from repro.core.streaming import StreamingKeyBin2

        reg = _reg()
        prev = set_default_registry(reg)
        try:
            skb = StreamingKeyBin2(
                n_projections=3, candidate_depths=(4, 5), fused=True,
                feature_range=(-1.0, 1.0), seed=0,
            )
            skb.partial_fit(50.0 * rng.normal(size=(400, 8)))
            skb.refresh()  # edge-bin fractions are recorded at refresh
        finally:
            set_default_registry(prev)
        out = stream_table(reg)
        assert "out-of-range rows:" in out
        assert "WARNING" in out
