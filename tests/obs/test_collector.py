"""Fleet metrics collector: live pulls, merged endpoint, scrape health."""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.core.estimator import KeyBin2
from repro.errors import ValidationError
from repro.obs import (
    MetricsCollector,
    MetricsRegistry,
    SnapshotLogger,
    collector_in_thread,
)
from repro.serve import BatchPolicy, ModelRegistry, ServeClient, serve_in_thread


@pytest.fixture(scope="module")
def collector_model(small_gaussians):
    x, _ = small_gaussians
    return KeyBin2(n_projections=4, seed=3).fit(x).model_


@pytest.fixture()
def two_replicas(collector_model):
    """Two independent in-thread replicas with a little traffic on each."""
    handles = []
    try:
        for _ in range(2):
            registry = ModelRegistry()
            registry.publish(collector_model)
            handles.append(serve_in_thread(
                registry, policy=BatchPolicy(max_delay_s=0.002)
            ))
        rng = np.random.default_rng(0)
        for handle in handles:
            with ServeClient(*handle.address) as client:
                for _ in range(4):
                    client.predict(rng.normal(size=16))
        yield handles
    finally:
        for handle in handles:
            handle.stop()


def _targets(handles):
    return [(f"replica-{i}", *h.address) for i, h in enumerate(handles)]


def _rpc(address, payload):
    with socket.create_connection(address, timeout=5.0) as sock:
        fh = sock.makefile("rwb")
        fh.write(json.dumps(payload).encode() + b"\n")
        fh.flush()
        return json.loads(fh.readline())


class TestLivePull:
    def test_poll_folds_every_replica(self, two_replicas):
        collector = MetricsCollector(targets=_targets(two_replicas))
        collector.poll_once()
        assert collector.cycles == 1
        assert collector.up == {"replica-0": True, "replica-1": True}
        for instance in ("replica-0", "replica-1"):
            assert collector.store.latest(
                instance, "serve_requests_total"
            ) >= 4

    def test_merged_families_stamp_instance_label(self, two_replicas):
        collector = MetricsCollector(targets=_targets(two_replicas))
        collector.poll_once()
        families = collector.merged_families()
        # Scrape-health family leads the exposition.
        assert families[0]["name"] == "collector_instance_up"
        reqs = next(f for f in families
                    if f["name"] == "serve_requests_total")
        instances = {s["labels"]["instance"] for s in reqs["samples"]}
        assert instances == {"replica-0", "replica-1"}
        text = collector.render_prometheus()
        assert 'serve_requests_total{instance="replica-0"}' in text
        assert 'serve_requests_total{instance="replica-1"}' in text
        assert 'collector_instance_up{instance="replica-0"} 1' in text

    def test_instance_summary_shape(self, two_replicas):
        collector = MetricsCollector(targets=_targets(two_replicas))
        collector.poll_once()
        summary = collector.instance_summary("replica-0")
        assert summary["up"] is True
        assert summary["circuit"] == "closed"
        assert summary["queue_depth"] is not None
        assert {s["instance"] for s in collector.summaries()} == {
            "replica-0", "replica-1",
        }


class TestScrapeHealth:
    def test_dead_target_marked_down_not_fatal(self, two_replicas):
        # One live replica plus one target nobody listens on.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        targets = _targets(two_replicas[:1]) + [
            ("replica-dead", "127.0.0.1", dead_port)
        ]
        collector = MetricsCollector(targets=targets, timeout_s=0.5)
        collector.poll_once()
        assert collector.up == {"replica-0": True, "replica-dead": False}
        assert collector.scrape_failures == 1
        assert collector.store.latest("replica-dead", "collector_up") == 0.0
        text = collector.render_prometheus()
        assert 'collector_instance_up{instance="replica-dead"} 0' in text


class TestSnapshotSource:
    def test_rank_snapshot_file_joins_the_store(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("stream_points_total", "Points.").inc(123)
        path = tmp_path / "rank0.metrics.jsonl"
        with SnapshotLogger(str(path), interval_s=3600.0, registries=[reg]):
            pass  # final flush writes one line
        collector = MetricsCollector(
            snapshot_files=[("rank-0", str(path))]
        )
        collector.poll_once()
        assert collector.up == {"rank-0": True}
        assert collector.store.latest(
            "rank-0", "stream_points_total"
        ) == 123.0

    def test_missing_snapshot_marks_down(self, tmp_path):
        collector = MetricsCollector(
            snapshot_files=[("rank-0", str(tmp_path / "absent.jsonl"))]
        )
        collector.poll_once()
        assert collector.up == {"rank-0": False}

    def test_torn_final_line_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "rank0.metrics.jsonl"
        good = json.dumps({"ts": 1.0, "families": {
            "c_total": {"type": "counter", "help": "",
                        "samples": [{"labels": {}, "value": 9.0}]},
        }})
        path.write_text(good + "\n" + '{"ts": 2.0, "families": {"tru')
        collector = MetricsCollector(
            snapshot_files=[("rank-0", str(path))]
        )
        collector.poll_once()
        assert collector.store.latest("rank-0", "c_total") == 9.0


class TestMergedEndpoint:
    def test_rpc_serves_metrics_alerts_healthz(self, two_replicas):
        import time

        collector = MetricsCollector(targets=_targets(two_replicas),
                                     interval_s=0.1)
        with collector_in_thread(collector) as handle:
            deadline = time.monotonic() + 5.0
            while collector.cycles < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            metrics = _rpc(handle.address, {"op": "metrics"})
            assert metrics["ok"] is True
            assert 'instance="replica-1"' in metrics["prometheus"]
            fams = metrics["metrics"]["families"]
            assert "serve_requests_total" in fams
            alerts = _rpc(handle.address, {"op": "alerts"})
            assert alerts["ok"] is True and isinstance(alerts["alerts"], list)
            health = _rpc(handle.address, {"op": "healthz"})
            assert health["role"] == "metrics-collector"
            assert health["instances"] == {"replica-0": True,
                                           "replica-1": True}
            bad = _rpc(handle.address, {"op": "nonsense"})
            assert bad["ok"] is False

    def test_background_loop_keeps_cycling(self, two_replicas):
        import time

        collector = MetricsCollector(targets=_targets(two_replicas),
                                     interval_s=0.05)
        with collector:
            deadline = time.monotonic() + 5.0
            while collector.cycles < 3 and time.monotonic() < deadline:
                time.sleep(0.02)
        assert collector.cycles >= 3


class TestValidation:
    def test_needs_a_target(self):
        with pytest.raises(ValidationError):
            MetricsCollector()

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValidationError):
            MetricsCollector(targets=[("a", "h", 1), ("a", "h", 2)])
        with pytest.raises(ValidationError):
            MetricsCollector(targets=[("a", "h", 1)],
                             snapshot_files=[("a", "p")])

    def test_rejects_bad_interval(self):
        with pytest.raises(ValidationError):
            MetricsCollector(targets=[("a", "h", 1)], interval_s=0.0)
