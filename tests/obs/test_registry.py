"""Unit tests for the metrics registry: families, children, no-op mode."""

import pytest

from repro.errors import ValidationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    POW2_BUCKETS,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_unlabeled_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("op",))
        c.labels(op="a").inc(3)
        c.labels(op="b").inc()
        assert c.labels(op="a").value == 3
        assert c.labels(op="b").value == 1

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("c_total").inc(-1)

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("op",))
        with pytest.raises(ValidationError):
            c.labels(other="x")
        with pytest.raises(ValidationError):
            c.labels(op="x", extra="y")

    def test_unlabeled_call_on_labeled_family_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("op",))
        with pytest.raises(ValidationError):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_set_max_keeps_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set_max(4)
        g.set_max(2)
        assert g.value == 4


class TestHistogram:
    def test_le_bucket_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 9.0):
            h.observe(v)
        snap = h.snapshot()["samples"][0]
        # le-cumulative: 1.0 catches 0.5 and 1.0; 2.0 adds 1.5; 4.0 adds 4.0.
        assert snap["buckets"] == {"1": 2, "2": 3, "4": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(16.0)

    def test_bucket_counts_sum_to_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=POW2_BUCKETS)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()["samples"][0]
        assert snap["buckets"]["+Inf"] == snap["count"] == 100

    def test_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_empty_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.histogram("h", buckets=())


class TestRegistration:
    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", ("op",))
        b = reg.counter("x_total", "different help", ("op",))
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValidationError):
            reg.gauge("x_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("op",))
        with pytest.raises(ValidationError):
            reg.counter("x_total", labelnames=("rank",))

    def test_get_and_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        reg.gauge("b")
        assert reg.get("a_total").kind == "counter"
        assert reg.get("missing") is None
        assert sorted(f.name for f in reg.families()) == ["a_total", "b"]

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.get("a_total") is None
        # Re-registering after reset starts from zero.
        assert reg.counter("a_total").value == 0


class TestNoOpMode:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        g = reg.gauge("g")
        h = reg.histogram("h", buckets=(1.0,))
        reg.disable()
        c.inc()
        g.set(5)
        g.set_max(9)
        h.observe(0.5)
        assert c.value == 0
        assert g.value == 0
        assert h.snapshot()["samples"][0]["count"] == 0
        reg.enable()
        c.inc()
        assert c.value == 1

    def test_construct_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c_total").inc()
        assert reg.counter("c_total").value == 0


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

    def test_swap_rejects_non_registry(self):
        with pytest.raises(ValidationError):
            set_default_registry(object())


class TestSnapshot:
    def test_family_snapshot_shape(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "the help", ("op",))
        c.labels(op="a").inc(2)
        snap = c.snapshot()
        assert snap["name"] == "c_total"
        assert snap["type"] == "counter"
        assert snap["help"] == "the help"
        assert snap["samples"] == [{"labels": {"op": "a"}, "value": 2.0}]

    def test_collect_covers_all_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.gauge("b").set(3)
        names = {fam["name"] for fam in reg.collect()}
        assert names == {"a_total", "b"}
