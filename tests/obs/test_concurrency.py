"""Concurrency guarantees: exact totals and un-torn snapshots under load.

The registry's contract (module docstring, constraint 2) is that counter
totals are exact and histogram snapshots internally consistent no matter
how many threads hammer one series. These tests hammer from >= 8 threads
with a start barrier so the increments genuinely race.
"""

import threading

from repro.obs import MetricsRegistry, POW2_BUCKETS

N_THREADS = 8
N_ITER = 2_000


def _hammer(n_threads, target):
    barrier = threading.Barrier(n_threads)

    def run(i):
        barrier.wait()
        target(i)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_counter_totals_exact_under_contention():
    reg = MetricsRegistry()
    c = reg.counter("c_total")

    def work(_i):
        for _ in range(N_ITER):
            c.inc()

    _hammer(N_THREADS, work)
    assert c.value == N_THREADS * N_ITER


def test_labeled_counter_children_exact_under_contention():
    reg = MetricsRegistry()
    fam = reg.counter("c_total", "help", ("worker",))

    def work(i):
        # Every thread creates/looks up its own child AND a shared one,
        # racing the family's child-creation path as well as the adds.
        own = fam.labels(worker=str(i))
        shared = fam.labels(worker="shared")
        for _ in range(N_ITER):
            own.inc()
            shared.inc(2)

    _hammer(N_THREADS, work)
    for i in range(N_THREADS):
        assert fam.labels(worker=str(i)).value == N_ITER
    assert fam.labels(worker="shared").value == 2 * N_THREADS * N_ITER


def test_gauge_inc_dec_balance_under_contention():
    reg = MetricsRegistry()
    g = reg.gauge("g")

    def work(_i):
        for _ in range(N_ITER):
            g.inc()
            g.dec()

    _hammer(N_THREADS, work)
    assert g.value == 0


def test_histogram_snapshots_never_torn_under_contention():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=POW2_BUCKETS)
    stop = threading.Event()
    torn = []

    def observe(i):
        for k in range(N_ITER):
            h.observe(float((i * N_ITER + k) % 5000))

    def scrape():
        # Concurrent scraper: every snapshot must be internally consistent
        # (cumulative buckets end at count; never a torn view).
        while not stop.is_set():
            snap = h.snapshot()["samples"][0]
            if snap["buckets"]["+Inf"] != snap["count"]:
                torn.append(snap)
        stop.wait(0)

    scraper = threading.Thread(target=scrape)
    scraper.start()
    try:
        _hammer(N_THREADS, observe)
    finally:
        stop.set()
        scraper.join()
    assert not torn
    final = h.snapshot()["samples"][0]
    assert final["count"] == N_THREADS * N_ITER
    assert final["buckets"]["+Inf"] == final["count"]


def test_registration_race_yields_one_family():
    reg = MetricsRegistry()
    got = []

    def register(_i):
        got.append(reg.counter("raced_total", "help", ("op",)))

    _hammer(N_THREADS, register)
    assert len({id(f) for f in got}) == 1
