"""Terminal dashboard rendering over a synthetic collector."""

from __future__ import annotations

import io

from repro.obs import MetricsCollector, render_dashboard, run_dashboard
from repro.obs.dashboard import _CLEAR

T0 = 1_000_000.0


def _loaded_collector():
    """A collector fed synthetically (no sockets): one busy replica."""
    collector = MetricsCollector(targets=[("replica-0", "127.0.0.1", 1)])
    for i in range(8):
        ts = T0 + i
        families = {
            "serve_requests_total": {
                "type": "counter", "help": "",
                "samples": [{"labels": {}, "value": 50.0 * i}],
            },
            "serve_shed_total": {
                "type": "counter", "help": "",
                "samples": [{"labels": {"reason": "queue_full"},
                             "value": 40.0 * i}],
            },
            "serve_queue_depth": {
                "type": "gauge", "help": "",
                "samples": [{"labels": {}, "value": 12.0}],
            },
            "serve_in_flight": {
                "type": "gauge", "help": "",
                "samples": [{"labels": {}, "value": 3.0}],
            },
            "serve_cache_hit_rate": {
                "type": "gauge", "help": "",
                "samples": [{"labels": {}, "value": 0.5}],
            },
            "serve_circuit_state": {
                "type": "gauge", "help": "",
                "samples": [{"labels": {}, "value": 2.0}],
            },
        }
        collector._fold("replica-0", families, ts)
    collector.alerts = collector.evaluator.evaluate(collector.store,
                                                    now=T0 + 7)
    return collector


class TestRenderDashboard:
    def test_frame_has_header_row_and_values(self):
        frame = render_dashboard(_loaded_collector(), window_s=4.0,
                                 now=T0 + 7)
        assert "fleet dashboard" in frame
        for column in ("instance", "qps", "queue", "p99 ms", "circuit"):
            assert column in frame
        assert "replica-0" in frame
        assert "UP" in frame
        assert "open" in frame  # circuit state 2 renders as "open"
        # 50 requests/s over the window.
        assert "50.0" in frame

    def test_shed_burn_alert_surfaces_in_frame(self):
        # 40/90 shed against the 5% objective: the shed burn alert from
        # the synthetic overload must appear on the dashboard.
        frame = render_dashboard(_loaded_collector(), window_s=4.0,
                                 now=T0 + 7)
        assert "ALERTS FIRING" in frame
        assert "shed_rate on replica-0" in frame

    def test_no_alerts_renders_quiet_footer(self):
        collector = MetricsCollector(targets=[("r0", "127.0.0.1", 1)])
        frame = render_dashboard(collector, now=T0)
        assert "alerts: none firing" in frame
        assert "ALERTS FIRING" not in frame


class TestRunDashboard:
    def test_once_renders_single_plain_frame(self):
        out = io.StringIO()
        frames = run_dashboard(_loaded_collector(), once=True, out=out)
        assert frames == 1
        text = out.getvalue()
        assert "fleet dashboard" in text
        assert _CLEAR not in text  # --once never clears the screen

    def test_loop_honors_max_frames_and_clears(self):
        out = io.StringIO()
        frames = run_dashboard(_loaded_collector(), interval_s=0.0,
                               max_frames=3, out=out)
        assert frames == 3
        assert out.getvalue().count(_CLEAR) == 3
