"""SeriesStore windowed math + multi-window burn-rate alerting."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs.slo import (
    SeriesStore,
    SLOEvaluator,
    SLORule,
    Window,
    default_rules,
)

T0 = 1_000_000.0


def _feed_counter(store, instance, name, labels, points):
    for ts, value in points:
        store.record(instance, name, labels, value, ts)


class TestSeriesStore:
    def test_delta_over_window(self):
        store = SeriesStore()
        _feed_counter(store, "r0", "serve_requests_total", None,
                      [(T0 + i, 10.0 * i) for i in range(20)])
        # Window covering the last 5 seconds: 5 increments of 10.
        assert store.delta("r0", "serve_requests_total", None, 5.0,
                           now=T0 + 19) == pytest.approx(50.0)

    def test_delta_straddles_window_edge(self):
        # Samples every 10 s but a 5 s window: the baseline is the newest
        # sample at-or-before the edge, so the window never reads empty.
        store = SeriesStore()
        _feed_counter(store, "r0", "c_total", None,
                      [(T0, 0.0), (T0 + 10, 40.0)])
        assert store.delta("r0", "c_total", None, 5.0,
                           now=T0 + 10) == pytest.approx(40.0)

    def test_delta_clamps_counter_reset(self):
        store = SeriesStore()
        _feed_counter(store, "r0", "c_total", None,
                      [(T0, 100.0), (T0 + 1, 3.0)])  # replica restarted
        assert store.delta("r0", "c_total", None, 10.0, now=T0 + 1) == 0.0

    def test_sum_delta_across_label_sets(self):
        store = SeriesStore()
        for reason in ("queue_full", "deadline"):
            _feed_counter(store, "r0", "serve_shed_total",
                          {"reason": reason}, [(T0, 0.0), (T0 + 10, 5.0)])
        assert store.sum_delta("r0", "serve_shed_total", 60.0,
                               now=T0 + 10) == pytest.approx(10.0)

    def test_ring_capacity_bounded(self):
        store = SeriesStore(capacity=4)
        _feed_counter(store, "r0", "c_total", None,
                      [(T0 + i, float(i)) for i in range(100)])
        # Baseline can only reach back 4 points.
        assert store.delta("r0", "c_total", None, 1e9,
                           now=T0 + 99) == pytest.approx(3.0)
        with pytest.raises(ValidationError):
            SeriesStore(capacity=1)

    def test_ingest_families_explodes_histograms(self):
        store = SeriesStore()
        families = {
            "serve_request_seconds": {
                "type": "histogram",
                "samples": [{
                    "labels": {},
                    "buckets": {"0.1": 3, "+Inf": 4},
                    "sum": 1.5, "count": 4,
                }],
            },
            "serve_queue_depth": {
                "type": "gauge",
                "samples": [{"labels": {}, "value": 7.0}],
            },
        }
        store.ingest_families("r0", families, T0)
        assert store.latest("r0", "serve_request_seconds_count") == 4
        assert store.latest("r0", "serve_request_seconds_bucket",
                            {"le": "0.1"}) == 3
        assert store.latest("r0", "serve_queue_depth") == 7.0
        assert store.instances() == ["r0"]

    def test_quantile_interpolates_bucket_deltas(self):
        store = SeriesStore()
        # 100 observations in the window, all in the (0.1, 0.2] bucket.
        for le, base, top in (("0.1", 0, 0), ("0.2", 0, 100),
                              ("+Inf", 0, 100)):
            _feed_counter(store, "r0", "serve_request_seconds_bucket",
                          {"le": le}, [(T0, float(base)), (T0 + 60, float(top))])
        p50 = store.quantile("r0", "serve_request_seconds", 0.5, 120.0,
                             now=T0 + 60)
        assert 0.1 < p50 <= 0.2
        assert p50 == pytest.approx(0.15)

    def test_quantile_none_without_observations(self):
        store = SeriesStore()
        assert store.quantile("r0", "serve_request_seconds", 0.99,
                              60.0) is None
        # Flat buckets (no new observations in window) also yield None.
        for le in ("0.1", "+Inf"):
            _feed_counter(store, "r0", "serve_request_seconds_bucket",
                          {"le": le}, [(T0, 50.0), (T0 + 60, 50.0)])
        assert store.quantile("r0", "serve_request_seconds", 0.99, 30.0,
                              now=T0 + 60) is None

    def test_quantile_inf_bucket_returns_last_finite_bound(self):
        store = SeriesStore()
        for le, top in (("0.1", 0.0), ("+Inf", 10.0)):
            _feed_counter(store, "r0", "serve_request_seconds_bucket",
                          {"le": le}, [(T0, 0.0), (T0 + 60, top)])
        assert store.quantile("r0", "serve_request_seconds", 0.99, 120.0,
                              now=T0 + 60) == pytest.approx(0.1)

    def test_window_max_spans_label_sets(self):
        # Drift gauges are per projection; the rule cares about the worst.
        store = SeriesStore()
        for proj, score in (("0", 0.1), ("1", 0.8), ("2", 0.3)):
            _feed_counter(store, "r0", "stream_drift_score",
                          {"projection": proj}, [(T0, score)])
        assert store.window_max("r0", "stream_drift_score", 60.0,
                                now=T0 + 1) == pytest.approx(0.8)

    def test_window_max_straddles_window_edge(self):
        # A gauge holds its value until the next sample: the newest point
        # at-or-before the edge still counts, old history does not.
        store = SeriesStore()
        _feed_counter(store, "r0", "stream_drift_score",
                      {"projection": "0"},
                      [(T0, 0.9), (T0 + 100, 0.05)])
        assert store.window_max("r0", "stream_drift_score", 60.0,
                                now=T0 + 130) == pytest.approx(0.05)
        # A wider window reaches the drifted sample itself.
        assert store.window_max("r0", "stream_drift_score", 200.0,
                                now=T0 + 130) == pytest.approx(0.9)

    def test_window_max_none_without_samples(self):
        assert SeriesStore().window_max("r0", "stream_drift_score",
                                        60.0, now=T0) is None


def _burning_store(error_ratio, n=40, period=30.0, requests_per_tick=100.0):
    """Store with a steady request rate and the given error ratio."""
    store = SeriesStore()
    for i in range(n):
        ts = T0 + i * period
        total = requests_per_tick * i
        store.record("r0", "serve_requests_total", None, total, ts)
        store.record("r0", "serve_errors_total", None,
                     total * error_ratio, ts)
    return store, T0 + (n - 1) * period


class TestBurnRateAlerts:
    def test_fast_burn_fires_page(self):
        # 2% errors against 0.999 => burn 20x: over the 4x page factor.
        store, now = _burning_store(0.02)
        alerts = SLOEvaluator([SLORule("availability", "availability",
                                       0.999)]).evaluate(store, now=now)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.severity == "page" and alert.instance == "r0"
        assert alert.burn > 4.0 and alert.burn_short > 4.0
        assert "burn" in alert.describe()

    def test_sustainable_burn_stays_silent(self):
        # 0.01% errors => burn 0.1x: well under both factors.
        store, now = _burning_store(0.0001)
        alerts = SLOEvaluator([SLORule("availability", "availability",
                                       0.999)]).evaluate(store, now=now)
        assert alerts == []

    def test_short_window_gates_the_alert(self):
        # Historic burn but clean recent traffic: the long window still
        # shows errors, the short window shows none => no alert (the
        # incident is over).
        store = SeriesStore()
        for i in range(40):
            ts = T0 + i * 30.0
            # Errors plateau after i=20: the incident is over.
            store.record("r0", "serve_requests_total", None, 100.0 * i, ts)
            store.record("r0", "serve_errors_total", None,
                         min(50.0 * i, 50.0 * 20), ts)
        now = T0 + 39 * 30.0
        rule = SLORule("availability", "availability", 0.999,
                       windows=(Window(900.0, 60.0, 4.0),))
        assert SLOEvaluator([rule]).evaluate(store, now=now) == []

    def test_no_data_no_alert(self):
        assert SLOEvaluator().evaluate(SeriesStore(), now=T0) == []

    def test_shed_burn_alert_fires_under_synthetic_overload(self):
        # Acceptance criterion: sustained shedding fires the shed-rate
        # burn alert long before availability moves.
        store = SeriesStore()
        for i in range(40):
            ts = T0 + i * 30.0
            store.record("r0", "serve_requests_total", None, 100.0 * i, ts)
            store.record("r0", "serve_shed_total",
                         {"reason": "queue_full"}, 60.0 * i, ts)
        now = T0 + 39 * 30.0
        alerts = SLOEvaluator(default_rules()).evaluate(store, now=now)
        shed = [a for a in alerts if a.kind == "shed_rate"]
        assert len(shed) == 1
        # 60/160 = 37.5% shed against a 5% objective: 7.5x burn.
        assert shed[0].burn == pytest.approx(7.5, rel=0.05)
        assert shed[0].severity == "page"
        # And availability did NOT fire: sheds are not errors.
        assert not [a for a in alerts if a.kind == "availability"]

    def test_latency_rule_fires_on_slow_p99(self):
        store = SeriesStore()
        # All requests land in the (0.5, 1.0] bucket: p99 ~ 1.0s > 0.25s.
        for le, top in (("0.25", 0.0), ("0.5", 0.0), ("1.0", 100.0),
                        ("+Inf", 100.0)):
            _feed_counter(store, "r0", "serve_request_seconds_bucket",
                          {"le": le}, [(T0, 0.0), (T0 + 120, top)])
        now = T0 + 120
        alerts = SLOEvaluator(default_rules()).evaluate(store, now=now)
        lat = [a for a in alerts if a.kind == "latency_p99"]
        assert len(lat) == 1 and lat[0].value > 0.25

    def test_per_instance_isolation(self):
        # One sick replica cannot hide behind a healthy one.
        store, now = _burning_store(0.02)
        for i in range(40):
            ts = T0 + i * 30.0
            store.record("r1", "serve_requests_total", None, 100.0 * i, ts)
            store.record("r1", "serve_errors_total", None, 0.0, ts)
        alerts = SLOEvaluator([SLORule("availability", "availability",
                                       0.999)]).evaluate(store, now=now)
        assert [a.instance for a in alerts] == ["r0"]

    def _drift_store(self, tail_score, head_score=0.9, n=14, period=30.0):
        """Scores are ``head_score`` until the last two samples, which
        carry ``tail_score`` — enough to cover the 60 s short window."""
        store = SeriesStore()
        for i in range(n):
            score = tail_score if i >= n - 2 else head_score
            store.record("r0", "stream_drift_score", {"projection": "1"},
                         score, T0 + i * period)
        return store, T0 + (n - 1) * period

    def test_sustained_drift_fires_ticket(self):
        store, now = self._drift_store(tail_score=0.9)
        alerts = SLOEvaluator(default_rules()).evaluate(store, now=now)
        drift = [a for a in alerts if a.kind == "drift_score"]
        assert len(drift) == 1
        assert drift[0].severity == "ticket"
        # Burn = worst window score over the 0.25 objective.
        assert drift[0].burn == pytest.approx(0.9 / 0.25)
        assert drift[0].value == pytest.approx(0.9)

    def test_absorbed_drift_stops_paging(self):
        # The re-projection response brought scores back down: the long
        # window still remembers the excursion, the short window gates.
        store, now = self._drift_store(tail_score=0.02)
        alerts = SLOEvaluator(default_rules()).evaluate(store, now=now)
        assert not [a for a in alerts if a.kind == "drift_score"]

    def test_subthreshold_drift_stays_silent(self):
        store, now = self._drift_store(tail_score=0.2, head_score=0.2)
        alerts = SLOEvaluator(default_rules()).evaluate(store, now=now)
        assert not [a for a in alerts if a.kind == "drift_score"]

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            Window(10.0, 20.0, 4.0)  # short > long
        with pytest.raises(ValidationError):
            Window(10.0, 5.0, 0.0)
        with pytest.raises(ValidationError):
            SLORule("bad", "nonsense", 0.5)
        with pytest.raises(ValidationError):
            SLORule("bad", "availability", 1.5)
