"""Windowed drift detection and the detect → refresh → republish loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift import DriftResponder, WindowDriftDetector, tv_distance
from repro.core.streaming import StreamingKeyBin2
from repro.data.streams import RegimeChangeStream
from repro.errors import ValidationError


class TestTvDistance:
    def test_identical_is_zero(self):
        p = np.array([5, 5, 0, 10], dtype=np.int64)
        assert tv_distance(p, 3 * p) == 0.0  # scale-free: same distribution

    def test_disjoint_is_one(self):
        p = np.array([10, 0], dtype=np.int64)
        q = np.array([0, 7], dtype=np.int64)
        assert tv_distance(p, q) == pytest.approx(1.0)

    def test_empty_window_scores_zero(self):
        p = np.array([1, 2, 3], dtype=np.int64)
        assert tv_distance(p, np.zeros(3, dtype=np.int64)) == 0.0
        assert tv_distance(np.zeros(3, dtype=np.int64), p) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            p = rng.integers(0, 50, size=16)
            q = rng.integers(0, 50, size=16)
            assert 0.0 <= tv_distance(p, q) <= 1.0


def _hist(rows: int, col: int, n_dims: int = 2, n_bins: int = 8) -> np.ndarray:
    """A deep histogram with all of ``rows`` rows' mass in one bin."""
    h = np.zeros((n_dims, n_bins), dtype=np.int64)
    h[:, col] = rows
    return h


class TestWindowDriftDetector:
    def test_first_window_only_seeds_reference(self):
        det = WindowDriftDetector(n_dims=2, n_bins=8, window=10)
        det.update(_hist(10, 1), 10)
        assert det.last_score is None  # nothing to compare against yet
        assert det.swaps == 1

    def test_stationary_scores_low(self):
        det = WindowDriftDetector(n_dims=2, n_bins=8, window=10, threshold=0.25)
        for _ in range(4):
            det.update(_hist(10, 1), 10)
        assert det.last_score == pytest.approx(0.0)
        assert not det.drifted

    def test_shift_scores_high_then_recovers(self):
        det = WindowDriftDetector(n_dims=2, n_bins=8, window=10, threshold=0.25)
        det.update(_hist(10, 1), 10)   # seed reference
        det.update(_hist(10, 6), 10)   # new regime: full TV against reference
        assert det.last_score == pytest.approx(1.0)
        assert det.drifted
        det.update(_hist(10, 6), 10)   # next window: new regime vs new regime
        assert det.last_score == pytest.approx(0.0)
        assert not det.drifted

    def test_partial_windows_accumulate(self):
        det = WindowDriftDetector(n_dims=2, n_bins=8, window=10)
        det.update(_hist(4, 1), 4)
        assert det.swaps == 0          # window not yet complete
        det.update(_hist(6, 1), 6)
        assert det.swaps == 1

    def test_rebin_moves_window_mass(self):
        from repro.core.adaptive import rebin_maps

        det = WindowDriftDetector(n_dims=1, n_bins=16, window=100)
        det.update(_hist(10, 3, n_dims=1, n_bins=16), 10)  # partial window
        maps = rebin_maps(np.array([0]), np.array([2]), depth=4)
        before_ref = det.ref.sum()
        before_cur = det.cur.sum()
        det.rebin(maps)
        assert det.ref.sum() == before_ref and det.cur.sum() == before_cur
        assert det.cur[0, maps[0][3]] == 10

    def test_state_roundtrip(self):
        det = WindowDriftDetector(n_dims=2, n_bins=8, window=10, threshold=0.3)
        det.update(_hist(10, 1), 10)
        det.update(_hist(7, 5), 7)
        det2 = WindowDriftDetector.from_state_dict(det.state_dict())
        assert np.array_equal(det2.ref, det.ref)
        assert np.array_equal(det2.cur, det.cur)
        assert det2.last_score == det.last_score
        assert det2.swaps == det.swaps
        assert det2.threshold == det.threshold

    def test_validation(self):
        with pytest.raises(ValidationError):
            WindowDriftDetector(n_dims=0, n_bins=8, window=10)
        with pytest.raises(ValidationError):
            WindowDriftDetector(n_dims=2, n_bins=8, window=0)


def _feed(skb: StreamingKeyBin2, responder: DriftResponder, stream):
    events = []
    for x, _ in stream:
        skb.partial_fit(x)
        event = responder.step()
        if event is not None:
            events.append(event)
    return events


class TestDriftResponder:
    def _skb(self, **kw):
        kw.setdefault("n_projections", 3)
        kw.setdefault("candidate_depths", (4, 5))
        kw.setdefault("adaptive", True)
        kw.setdefault("drift_window", 400)
        kw.setdefault("drift_threshold", 0.4)
        kw.setdefault("seed", 0)
        return StreamingKeyBin2(**kw)

    def test_requires_drift_detection(self):
        skb = StreamingKeyBin2(n_projections=2, seed=0)
        with pytest.raises(ValidationError):
            DriftResponder(skb)
        with pytest.raises(ValidationError):
            DriftResponder(self._skb(), cooldown_swaps=0)

    def test_regime_change_triggers_one_response(self):
        skb = self._skb()
        published = []
        responder = DriftResponder(
            skb, publish=lambda: published.append(skb.model_) or "ok"
        )
        stream = RegimeChangeStream(
            n_batches=10, batch_size=200, n_dims=8, change_at=4, seed=3
        )
        events = _feed(skb, responder, stream)
        assert len(events) == 1
        event = events[0]
        assert event.refreshed and event.score >= 0.4
        assert event.publish_result == "ok"
        assert published and published[0] is skb.model_
        assert responder.history == events

    def test_stationary_stream_never_fires(self):
        skb = self._skb()
        responder = DriftResponder(skb)
        stream = RegimeChangeStream(
            n_batches=6, batch_size=200, n_dims=8, change_at=4, seed=3
        )
        # Stop before the change reaches a completed window.
        for i, (x, _) in enumerate(stream):
            if i >= 4:
                break
            skb.partial_fit(x)
            assert responder.step() is None

    def test_cooldown_suppresses_repeat_responses(self):
        # A long transition can keep scores high across several windows;
        # a large cooldown must keep the responder quiet after the first.
        skb = self._skb(drift_window=200)
        responder = DriftResponder(skb, cooldown_swaps=100)
        stream = RegimeChangeStream(
            n_batches=12, batch_size=200, n_dims=8, change_at=4, seed=3
        )
        events = _feed(skb, responder, stream)
        assert len(events) == 1

    def test_publish_to_forwarded(self):
        class Registry:
            def __init__(self):
                self.models = []

            def publish(self, model):
                self.models.append(model)

        reg = Registry()
        skb = self._skb()
        responder = DriftResponder(skb, publish_to=reg)
        stream = RegimeChangeStream(
            n_batches=10, batch_size=200, n_dims=8, change_at=4, seed=3
        )
        events = _feed(skb, responder, stream)
        assert len(events) == 1
        assert reg.models == [skb.model_]
