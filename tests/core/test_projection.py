"""Tests for repro.core.projection."""

import math

import numpy as np
import pytest

from repro.core.projection import projection_matrix, target_dimension
from repro.errors import ValidationError


class TestTargetDimension:
    def test_paper_rule(self):
        # 1.5 ln(1280) ≈ 10.7 → 11
        assert target_dimension(1280) == math.ceil(1.5 * math.log(1280))

    def test_minimum_enforced(self):
        assert target_dimension(2) >= 2

    def test_never_exceeds_features(self):
        assert target_dimension(3) <= 3

    def test_monotone_in_features(self):
        dims = [target_dimension(n) for n in (4, 16, 64, 256, 1024)]
        assert dims == sorted(dims)

    def test_custom_factor(self):
        assert target_dimension(100, factor=3.0) >= target_dimension(100)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            target_dimension(0)
        with pytest.raises(ValidationError):
            target_dimension(10, factor=0)


class TestProjectionMatrix:
    @pytest.mark.parametrize("kind", ["gaussian", "sparse", "orthonormal"])
    def test_shape(self, kind):
        a = projection_matrix(20, 5, seed=0, kind=kind)
        assert a.shape == (20, 5)

    @pytest.mark.parametrize("kind", ["gaussian", "sparse", "orthonormal"])
    def test_unit_columns(self, kind):
        a = projection_matrix(50, 7, seed=1, kind=kind)
        norms = np.linalg.norm(a, axis=0)
        assert np.allclose(norms, 1.0)

    def test_orthonormal_columns_orthogonal(self):
        a = projection_matrix(30, 6, seed=2, kind="orthonormal")
        gram = a.T @ a
        assert np.allclose(gram, np.eye(6), atol=1e-10)

    def test_gaussian_nearly_orthogonal_high_dim(self):
        a = projection_matrix(2000, 8, seed=3, kind="gaussian")
        gram = a.T @ a
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() < 0.15

    def test_sparse_entries_ternary(self):
        a = projection_matrix(100, 4, seed=4, kind="sparse")
        scaled = a * np.linalg.norm(a, axis=0, keepdims=True)
        # Before normalization entries were in {-1, 0, +1}; after
        # normalization each column has at most 3 distinct values.
        for j in range(4):
            assert np.unique(np.round(a[:, j], 12)).size <= 3

    def test_reproducible(self):
        a = projection_matrix(10, 3, seed=5)
        b = projection_matrix(10, 3, seed=5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_distinct_matrices(self):
        a = projection_matrix(10, 3, seed=5)
        b = projection_matrix(10, 3, seed=6)
        assert not np.array_equal(a, b)

    def test_components_exceed_features_rejected(self):
        with pytest.raises(ValidationError):
            projection_matrix(3, 4)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            projection_matrix(4, 2, kind="fourier")

    def test_projection_preserves_order_along_column(self, rng):
        """Points ordered along a projection direction stay ordered in that
        projected coordinate — the property binning relies on (§3.1)."""
        a = projection_matrix(8, 3, seed=7)
        direction = a[:, 0]
        ts = np.sort(rng.random(20))
        points = np.outer(ts, direction)
        projected = points @ a
        assert np.all(np.diff(projected[:, 0]) >= -1e-12)
