"""Tests for KS-based dimension collapsing."""

import numpy as np
import pytest

from repro.core.collapse import (
    collapse_dimensions,
    effective_support,
    uniformity_statistic,
)
from repro.errors import ValidationError


class TestUniformityStatistic:
    def test_uniform_near_zero(self, rng):
        counts = np.full(64, 100.0) + rng.integers(-5, 5, 64)
        assert uniformity_statistic(counts) < 0.05

    def test_bimodal_large(self, rng):
        left = rng.normal(16, 2, 1000).astype(int)
        right = rng.normal(48, 2, 1000).astype(int)
        counts = np.bincount(np.clip(np.concatenate([left, right]), 0, 63),
                             minlength=64)
        assert uniformity_statistic(counts) > 0.2

    def test_empty_zero(self):
        assert uniformity_statistic(np.zeros(16)) == 0.0

    def test_single_occupied_bin_zero(self):
        counts = np.zeros(16)
        counts[7] = 100
        assert uniformity_statistic(counts) == 0.0

    def test_occupied_range_only(self):
        """A uniform block inside a wide window must read as uniform."""
        counts = np.zeros(64)
        counts[20:40] = 50.0
        assert uniformity_statistic(counts) < 0.05

    def test_invalid(self):
        with pytest.raises(ValidationError):
            uniformity_statistic(np.array([]))
        with pytest.raises(ValidationError):
            uniformity_statistic(np.array([-1.0]))


class TestEffectiveSupport:
    def test_concentrated(self):
        counts = np.zeros(32)
        counts[5] = 1000
        assert effective_support(counts) == 1

    def test_uniform_wide(self):
        assert effective_support(np.full(32, 10.0)) >= 31

    def test_empty(self):
        assert effective_support(np.zeros(8)) == 0


class TestCollapseDimensions:
    def _bimodal(self, rng, n=2000):
        vals = np.concatenate(
            [rng.normal(16, 2, n // 2), rng.normal(48, 2, n // 2)]
        ).astype(int)
        return np.bincount(np.clip(vals, 0, 63), minlength=64).astype(float)

    def test_keeps_structured_drops_uniform(self, rng):
        structured = self._bimodal(rng)
        uniform = np.full(64, structured.sum() / 64)
        counts = np.stack([structured, uniform])
        keep = collapse_dimensions(counts)
        assert keep.tolist() == [True, False]

    def test_drops_degenerate_spike(self, rng):
        structured = self._bimodal(rng)
        spike = np.zeros(64)
        spike[10] = structured.sum()
        counts = np.stack([structured, spike])
        keep = collapse_dimensions(counts)
        assert keep.tolist() == [True, False]

    def test_never_collapses_everything(self, rng):
        uniform = np.full(64, 100.0)
        counts = np.stack([uniform, uniform + rng.integers(0, 3, 64)])
        keep = collapse_dimensions(counts)
        assert keep.sum() == 1  # the most structured one survives

    def test_all_structured_all_kept(self, rng):
        counts = np.stack([self._bimodal(rng) for _ in range(4)])
        assert collapse_dimensions(counts).all()

    def test_invalid_shape(self):
        with pytest.raises(ValidationError):
            collapse_dimensions(np.zeros(8))

    def test_threshold_effect(self, rng):
        slightly = np.full(64, 100.0)
        slightly[:32] += 12  # mild skew
        counts = np.stack([self._bimodal(rng), slightly])
        strict = collapse_dimensions(counts, uniform_threshold=0.2)
        loose = collapse_dimensions(counts, uniform_threshold=0.001)
        assert strict.sum() <= loose.sum()
