"""Tests for HistogramSet."""

import numpy as np
import pytest

from repro.core.binning import SpaceRange
from repro.core.histogram import HistogramSet
from repro.errors import ValidationError


@pytest.fixture
def space2():
    return SpaceRange(np.zeros(2), np.ones(2))


class TestConstruction:
    def test_from_points_counts(self, rng, space2):
        x = rng.random((100, 2))
        h = HistogramSet.from_points(x, space2, depths=[2, 4])
        assert h.total_count() == 100
        assert h.counts[2].shape == (2, 4)
        assert h.counts[4].shape == (2, 16)

    def test_depths_sorted_deduped(self):
        h = HistogramSet(3, [4, 2, 4])
        assert h.depths == (2, 4)

    def test_invalid_depths(self):
        with pytest.raises(ValidationError):
            HistogramSet(2, [])
        with pytest.raises(ValidationError):
            HistogramSet(2, [0])
        with pytest.raises(ValidationError):
            HistogramSet(2, [40])

    def test_dim_mismatch_on_update(self, rng, space2):
        h = HistogramSet(2, [3])
        with pytest.raises(ValidationError):
            h.update(rng.random((5, 3)), SpaceRange(np.zeros(3), np.ones(3)))

    def test_empty_batch_noop(self, space2):
        h = HistogramSet(2, [3])
        h.update(np.empty((0, 2)), space2)
        assert h.total_count() == 0


class TestStreamingEqualsBatch:
    def test_incremental_updates(self, rng, space2):
        x = rng.random((90, 2))
        batch = HistogramSet.from_points(x, space2, [3, 5])
        stream = HistogramSet(2, [3, 5])
        for i in range(0, 90, 13):
            stream.update(x[i : i + 13], space2)
        assert stream == batch

    def test_single_point_stream(self, rng, space2):
        x = rng.random((20, 2))
        batch = HistogramSet.from_points(x, space2, [4])
        stream = HistogramSet(2, [4])
        for row in x:
            stream.update(row.reshape(1, -1), space2)
        assert stream == batch


class TestMergeAlgebra:
    def test_merge_adds(self, rng, space2):
        x = rng.random((60, 2))
        a = HistogramSet.from_points(x[:30], space2, [3])
        b = HistogramSet.from_points(x[30:], space2, [3])
        whole = HistogramSet.from_points(x, space2, [3])
        assert (a + b) == whole

    def test_merge_commutative(self, rng, space2):
        a = HistogramSet.from_points(rng.random((30, 2)), space2, [3])
        b = HistogramSet.from_points(rng.random((40, 2)), space2, [3])
        assert (a + b) == (b + a)

    def test_merge_associative(self, rng, space2):
        hs = [
            HistogramSet.from_points(rng.random((20, 2)), space2, [3])
            for _ in range(3)
        ]
        left = (hs[0] + hs[1]) + hs[2]
        right = hs[0] + (hs[1] + hs[2])
        assert left == right

    def test_incompatible_merge_rejected(self, rng, space2):
        a = HistogramSet(2, [3])
        b = HistogramSet(2, [4])
        with pytest.raises(ValidationError):
            a.merge(b)
        c = HistogramSet(3, [3])
        with pytest.raises(ValidationError):
            a.merge(c)

    def test_add_does_not_mutate(self, rng, space2):
        a = HistogramSet.from_points(rng.random((10, 2)), space2, [3])
        before = a.counts[3].copy()
        _ = a + a
        assert np.array_equal(a.counts[3], before)


class TestWireFormat:
    def test_buffer_round_trip(self, rng, space2):
        h = HistogramSet.from_points(rng.random((50, 2)), space2, [2, 5])
        again = HistogramSet.from_buffer(h.to_buffer(), 2, [2, 5])
        assert again == h

    def test_buffer_length_formula(self):
        assert HistogramSet.buffer_length(3, [2, 4]) == 3 * 4 + 3 * 16

    def test_wrong_buffer_length_rejected(self):
        with pytest.raises(ValidationError):
            HistogramSet.from_buffer(np.zeros(5, dtype=np.int64), 2, [3])

    def test_nbytes_reported(self, rng, space2):
        h = HistogramSet.from_points(rng.random((10, 2)), space2, [3])
        assert h.nbytes() == 2 * 8 * 8  # dims × bins × int64

    def test_add_counts_validation(self):
        h = HistogramSet(2, [3])
        with pytest.raises(ValidationError):
            h.add_counts(4, np.zeros((2, 16), dtype=np.int64))
        with pytest.raises(ValidationError):
            h.add_counts(3, np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValidationError):
            h.add_counts(3, np.full((2, 8), -1, dtype=np.int64))


class TestDensity:
    def test_rows_sum_to_one(self, rng, space2):
        h = HistogramSet.from_points(rng.random((40, 2)), space2, [4])
        dens = h.density(4)
        assert np.allclose(dens.sum(axis=1), 1.0)

    def test_empty_histogram_zero_density(self):
        h = HistogramSet(2, [3])
        assert np.all(h.density(3) == 0.0)
