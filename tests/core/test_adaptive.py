"""Adaptive dyadic grid chain: extents, covering, exact rebin, sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import (
    MAX_LEVEL,
    TailSketch,
    chain_extents,
    cover_levels,
    grid_bounds,
    rebin_maps,
)


class TestChainGeometry:
    def test_level_zero_is_base_grid(self):
        r_min, r_max = grid_bounds(np.array([0.0]), np.array([1.0]),
                                   np.array([0]))
        assert r_min[0] == 0.0 and r_max[0] == 1.0

    def test_each_level_doubles_span(self):
        base_min, base_max = np.array([-1.0]), np.array([3.0])
        span0 = 4.0
        for g in range(0, 12):
            r_min, r_max = grid_bounds(base_min, base_max, np.array([g]))
            assert r_max[0] - r_min[0] == pytest.approx(span0 * 2.0**g)

    def test_alternating_extension_sides(self):
        # Step 1 extends downward, step 2 upward, step 3 downward again.
        b, t = chain_extents(np.array([0, 1, 2, 3]))
        assert b.tolist() == [0, 1, 1, 5]
        assert t.tolist() == [0, 0, 2, 2]
        # Invariant: bottom + top + 1 == 2^level (in units of span0).
        for g in range(MAX_LEVEL + 1):
            bb, tt = chain_extents(np.array([g]))
            assert int(bb[0]) + int(tt[0]) + 1 == 2**g

    def test_chain_is_nested(self):
        base_min, base_max = np.array([2.0]), np.array([5.0])
        prev = grid_bounds(base_min, base_max, np.array([0]))
        for g in range(1, 10):
            cur = grid_bounds(base_min, base_max, np.array([g]))
            assert cur[0][0] <= prev[0][0] and cur[1][0] >= prev[1][0]
            prev = cur


class TestCoverLevels:
    def test_inside_base_needs_level_zero(self):
        levels = cover_levels(np.array([0.0]), np.array([1.0]),
                              np.array([0.2]), np.array([0.9]))
        assert levels.tolist() == [0]

    def test_covers_requested_envelope(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            base_min = rng.uniform(-5, 5, size=3)
            base_max = base_min + rng.uniform(0.5, 4.0, size=3)
            need_lo = base_min - rng.uniform(0, 1e6, size=3)
            need_hi = base_max + rng.uniform(0, 1e6, size=3)
            levels = cover_levels(base_min, base_max, need_lo, need_hi)
            r_min, r_max = grid_bounds(base_min, base_max, levels)
            assert np.all(r_min <= need_lo) and np.all(r_max >= need_hi)

    def test_monotone_in_start(self):
        base_min, base_max = np.zeros(1), np.ones(1)
        lo, hi = np.array([-3.0]), np.array([1.0])
        free = cover_levels(base_min, base_max, lo, hi)
        pinned = cover_levels(base_min, base_max, lo, hi,
                              start=np.array([7]))
        assert pinned[0] == max(int(free[0]), 7)


class TestRebinMaps:
    def test_identity_when_levels_equal(self):
        maps = rebin_maps(np.array([3]), np.array([3]), depth=4)
        assert maps[0].tolist() == list(range(16))

    def test_rejects_shrinking(self):
        with pytest.raises(Exception):
            rebin_maps(np.array([3]), np.array([2]), depth=4)

    @pytest.mark.parametrize("depth", [2, 5, 8])
    def test_rebin_is_geometrically_exact(self, depth):
        """Every old bin's interval must land inside its image bin."""
        rng = np.random.default_rng(depth)
        n_bins = 1 << depth
        for _ in range(50):
            g = int(rng.integers(0, 10))
            g2 = g + int(rng.integers(0, 6))
            base_min = np.array([float(rng.uniform(-3, 3))])
            base_max = base_min + float(rng.uniform(0.25, 5.0))
            maps = rebin_maps(np.array([g]), np.array([g2]), depth)
            lo_old, hi_old = grid_bounds(base_min, base_max, np.array([g]))
            lo_new, hi_new = grid_bounds(base_min, base_max, np.array([g2]))
            w_old = (hi_old[0] - lo_old[0]) / n_bins
            w_new = (hi_new[0] - lo_new[0]) / n_bins
            for i in range(n_bins):
                j = int(maps[0][i])
                a, b = lo_old[0] + i * w_old, lo_old[0] + (i + 1) * w_old
                a2, b2 = lo_new[0] + j * w_new, lo_new[0] + (j + 1) * w_new
                assert a2 <= a + 1e-9 and b <= b2 + 1e-9

    def test_rebin_conserves_mass(self):
        rng = np.random.default_rng(1)
        depth, n_bins = 6, 64
        old = rng.integers(0, 1000, size=n_bins).astype(np.int64)
        maps = rebin_maps(np.array([2]), np.array([5]), depth)
        new = np.zeros(n_bins, dtype=np.int64)
        np.add.at(new, maps[0], old)
        assert new.sum() == old.sum()

    def test_composition_equals_direct(self):
        """rebin(g0->g1) then rebin(g1->g2) == rebin(g0->g2)."""
        depth, n_bins = 5, 32
        rng = np.random.default_rng(2)
        old = rng.integers(0, 100, size=n_bins).astype(np.int64)
        m01 = rebin_maps(np.array([1]), np.array([3]), depth)[0]
        m12 = rebin_maps(np.array([3]), np.array([6]), depth)[0]
        m02 = rebin_maps(np.array([1]), np.array([6]), depth)[0]
        step = np.zeros(n_bins, dtype=np.int64)
        np.add.at(step, m01, old)
        two = np.zeros(n_bins, dtype=np.int64)
        np.add.at(two, m12, step)
        direct = np.zeros(n_bins, dtype=np.int64)
        np.add.at(direct, m02, old)
        assert np.array_equal(two, direct)


class TestTailSketch:
    def test_tracks_extremes_exactly(self):
        sk = TailSketch(max_bins=8)
        xs = np.array([3.0, -7.0, 2.0, 11.0, 0.5])
        sk.update_many(xs)
        assert sk.min == -7.0 and sk.max == 11.0
        assert sk.n == 5

    def test_merges_down_to_capacity(self):
        sk = TailSketch(max_bins=16)
        sk.update_many(np.random.default_rng(0).normal(size=5000))
        assert len(sk.state_dict()["centers"]) <= 16
        assert sk.n == 5000

    def test_quantiles_monotone(self):
        sk = TailSketch(max_bins=32)
        sk.update_many(np.random.default_rng(1).uniform(0, 10, size=2000))
        qs = [sk.quantile(q) for q in (0.05, 0.25, 0.5, 0.75, 0.95)]
        assert qs == sorted(qs)
        assert 0.0 <= qs[0] and qs[-1] <= 10.0

    def test_state_roundtrip(self):
        sk = TailSketch(max_bins=16)
        sk.update_many(np.random.default_rng(2).normal(size=300))
        sk2 = TailSketch.from_state_dict(sk.state_dict())
        assert sk2.n == sk.n
        assert sk2.state_dict() == sk.state_dict()
        assert sk2.min == sk.min and sk2.max == sk.max

    def test_headroom_widens_with_factor(self):
        sk = TailSketch(max_bins=32)
        sk.update_many(np.random.default_rng(3).normal(size=1000))
        lo1, hi1 = sk.headroom(1.0)
        lo2, hi2 = sk.headroom(3.0)
        assert lo2 <= lo1 and hi2 >= hi1
