"""Tests for the SPMD KeyBin2 driver."""

import numpy as np
import pytest

from repro.core.distributed import fit_distributed, keybin2_spmd
from repro.comm.spmd import run_spmd
from repro.data.gaussians import gaussian_mixture
from repro.data.streams import distributed_partitions
from repro.errors import ValidationError
from repro.metrics.external import purity
from repro.metrics.pairs import pair_precision_recall_f1


@pytest.fixture(scope="module")
def sharded():
    x, y = gaussian_mixture(n_points=2400, n_dims=16, n_clusters=4, seed=11)
    shards = [x[i::4] for i in range(4)]
    ys = [y[i::4] for i in range(4)]
    return shards, ys, x, y


class TestFitDistributed:
    def test_accuracy(self, sharded):
        shards, ys, _, _ = sharded
        res = fit_distributed(shards, executor="thread", seed=0)
        all_y = np.concatenate(ys)
        assert purity(all_y, res.concatenated_labels()) > 0.95
        assert res.n_clusters >= 4

    def test_model_identical_across_ranks_predicts_shards(self, sharded):
        shards, ys, _, _ = sharded
        res = fit_distributed(shards, executor="thread", seed=0)
        # The broadcast model must reproduce each rank's local labels.
        for shard, labels in zip(shards, res.labels):
            assert np.array_equal(res.model.predict(shard), labels)

    def test_single_rank_equals_serial_pipeline(self, sharded):
        _, _, x, y = sharded
        res = fit_distributed([x], executor="thread", seed=0)
        assert purity(y, res.labels[0]) > 0.95

    @pytest.mark.parametrize("consolidation", ["master", "allreduce", "ring"])
    def test_consolidation_modes_agree(self, sharded, consolidation):
        shards, ys, _, _ = sharded
        res = fit_distributed(
            shards, executor="thread", seed=0, consolidation=consolidation,
            n_projections=3,
        )
        all_y = np.concatenate(ys)
        assert purity(all_y, res.concatenated_labels()) > 0.9

    def test_master_and_allreduce_identical_labels(self, sharded):
        shards, _, _, _ = sharded
        a = fit_distributed(shards, executor="thread", seed=0,
                            consolidation="master", n_projections=3)
        b = fit_distributed(shards, executor="thread", seed=0,
                            consolidation="allreduce", n_projections=3)
        assert np.array_equal(a.concatenated_labels(), b.concatenated_labels())

    def test_process_executor(self, sharded):
        shards, ys, _, _ = sharded
        res = fit_distributed(shards[:2], executor="process", seed=0,
                              n_projections=2)
        assert res.n_clusters >= 2

    def test_skewed_shards_still_recovered(self):
        """Each rank holding a biased subset of clusters must not break the
        global clustering (histogram merging handles it)."""
        x, y = gaussian_mixture(n_points=2400, n_dims=16, n_clusters=4, seed=3)
        parts = distributed_partitions(x, y, 4, skew=1.0, seed=3)
        shards = [p[0] for p in parts]
        all_y = np.concatenate([p[1] for p in parts])
        res = fit_distributed(shards, executor="thread", seed=0)
        assert purity(all_y, res.concatenated_labels()) > 0.9

    def test_distributed_equals_single_rank_accuracy(self, sharded):
        shards, ys, x, y = sharded
        dist = fit_distributed(shards, executor="thread", seed=0)
        single = fit_distributed([x], executor="thread", seed=0)
        _, _, f1_dist = pair_precision_recall_f1(
            np.concatenate(ys), dist.concatenated_labels()
        )
        _, _, f1_single = pair_precision_recall_f1(y, single.labels[0])
        assert abs(f1_dist - f1_single) < 0.1

    def test_traffic_recorded(self, sharded):
        shards, _, _, _ = sharded
        res = fit_distributed(shards, executor="thread", seed=0)
        assert len(res.traffic) == 4
        for t in res.traffic:
            assert t["bytes_sent"] > 0

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValidationError):
            fit_distributed([])

    def test_mismatched_features_rejected(self):
        a = np.zeros((10, 3))
        b = np.zeros((10, 4))
        with pytest.raises(Exception):
            fit_distributed([a, b], executor="thread", timeout=10)


class TestKeybin2SpmdDirect:
    def test_uneven_shard_sizes(self):
        x, y = gaussian_mixture(n_points=1000, n_dims=8, n_clusters=3, seed=5)
        shards = [x[:100], x[100:400], x[400:]]

        def prog(comm):
            labels, model = keybin2_spmd(comm, shards[comm.rank], seed=0,
                                         n_projections=2)
            return labels.shape[0], model.n_clusters

        results = run_spmd(prog, 3, executor="thread", timeout=120)
        assert [r[0] for r in results] == [100, 300, 600]
        ks = {r[1] for r in results}
        assert len(ks) == 1  # identical model everywhere

    def test_invalid_consolidation(self):
        def prog(comm):
            return keybin2_spmd(comm, np.zeros((5, 2)), consolidation="carrier-pigeon")

        with pytest.raises(Exception):
            run_spmd(prog, 2, executor="thread", timeout=10)
