"""Tests for key-space outlier detection."""

import numpy as np
import pytest

from repro.core import KeyBin2
from repro.core.outliers import KeyOutlierDetector
from repro.data.gaussians import gaussian_mixture
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def fitted_detector():
    x, y = gaussian_mixture(4000, 16, n_clusters=3, seed=9)
    kb = KeyBin2(seed=9, n_projections=4).fit(x)
    return KeyOutlierDetector(kb.model_, contamination=0.02), kb, x, y


class TestKeyOutlierDetector:
    def test_far_points_flagged(self, fitted_detector):
        det, kb, x, _ = fitted_detector
        far = np.full((5, x.shape[1]), 500.0)
        assert det.predict(far).all()
        assert np.all(det.score(far) == det.unseen_score)

    def test_cluster_centers_not_flagged(self, fitted_detector):
        det, kb, x, y = fitted_detector
        # Dense-cluster members: low scores, below threshold mostly.
        flagged = det.predict(x)
        assert flagged.mean() < 0.1

    def test_scores_monotone_in_rarity(self, fitted_detector):
        det, kb, x, _ = fitted_detector
        scores = det.score(x)
        labels = kb.model_.predict(x)
        sizes = kb.model_.table.sizes
        # Points in the largest cell must score <= points in the smallest.
        big_cell = int(np.argmax(sizes))
        small_cell = int(np.argmin(sizes))
        if big_cell != small_cell:
            s_big = scores[labels == big_cell]
            s_small = scores[labels == small_cell]
            if s_big.size and s_small.size:
                assert s_big.max() <= s_small.min() + 1e-9

    def test_training_flag_rate_near_contamination(self, fitted_detector):
        det, kb, x, _ = fitted_detector
        rate = det.predict(x).mean()
        assert rate <= 0.1  # quantile thresholding keeps the rate bounded

    def test_threshold_quantiles_monotone(self, fitted_detector):
        det, _, _, _ = fitted_detector
        assert det.score_threshold(0.5) <= det.score_threshold(0.99)

    def test_invalid_contamination(self, fitted_detector):
        det, kb, _, _ = fitted_detector
        with pytest.raises(ValidationError):
            KeyOutlierDetector(kb.model_, contamination=0.0)
        with pytest.raises(ValidationError):
            KeyOutlierDetector(kb.model_, contamination=0.9)

    def test_invalid_quantile(self, fitted_detector):
        det, _, _, _ = fitted_detector
        with pytest.raises(ValidationError):
            det.score_threshold(1.0)

    def test_injected_anomalies_ranked_highest(self):
        rng = np.random.default_rng(4)
        x, _ = gaussian_mixture(3000, 8, n_clusters=3, seed=4)
        kb = KeyBin2(seed=4, n_projections=4).fit(x)
        det = KeyOutlierDetector(kb.model_)
        anomalies = rng.uniform(-100, 100, (20, 8))
        mixed = np.vstack([x[:200], anomalies])
        scores = det.score(mixed)
        top = np.argsort(scores)[::-1][:20]
        # Most of the top-20 scores must be the injected anomalies (a few
        # may fall inside occupied cells — uniform noise overlaps the data).
        assert np.mean(top >= 200) >= 0.75
