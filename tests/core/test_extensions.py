"""Tests for the optional/extension features: simultaneous projections
(§3.4), the KDE partitioner alternative (§3.2), and the privacy utilities
(§1)."""

import numpy as np
import pytest

from repro.core import KeyBin2
from repro.core.binning import SpaceRange
from repro.core.partitioning import find_cuts, kde_density
from repro.core.privacy import histogram_anonymity, reconstruction_ambiguity
from repro.errors import ValidationError
from repro.metrics.pairs import pair_precision_recall_f1


class TestSimultaneousProjections:
    def test_identical_results(self, small_gaussians):
        """§3.4's optimization must change throughput, not outcomes."""
        x, _ = small_gaussians
        a = KeyBin2(n_projections=4, seed=3).fit(x)
        b = KeyBin2(n_projections=4, seed=3, simultaneous_projections=True).fit(x)
        assert np.array_equal(a.labels_, b.labels_)
        assert a.score_ == pytest.approx(b.score_)
        assert a.n_clusters_ == b.n_clusters_

    def test_noop_with_projection_none(self, tiny_gaussians):
        x, _ = tiny_gaussians
        kb = KeyBin2(projection="none", simultaneous_projections=True,
                     seed=0).fit(x)
        assert kb.model_.projection is None

    def test_accuracy_preserved(self, small_gaussians):
        x, y = small_gaussians
        kb = KeyBin2(seed=1, simultaneous_projections=True).fit(x)
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert f1 > 0.9


class TestKDEPartitioner:
    def _bimodal(self, rng):
        vals = np.concatenate([rng.normal(16, 3, 1500), rng.normal(48, 3, 1500)])
        return np.bincount(np.clip(vals.astype(int), 0, 63), minlength=64).astype(float)

    def test_kde_density_mass_preserved(self, rng):
        counts = self._bimodal(rng)
        dens = kde_density(counts)
        assert dens.sum() == pytest.approx(counts.sum(), rel=1e-6)

    def test_kde_density_smooth(self, rng):
        counts = self._bimodal(rng)
        dens = kde_density(counts)
        # Smoother = smaller second differences than the raw counts.
        assert np.abs(np.diff(dens, 2)).mean() < np.abs(np.diff(counts, 2)).mean()

    def test_kde_cuts_match_ma_cuts_on_clean_data(self, rng):
        counts = self._bimodal(rng)
        ma = find_cuts(counts, n_points=3000, smoother="ma")
        kde = find_cuts(counts, n_points=3000, smoother="kde")
        assert ma.size == kde.size == 1
        assert abs(int(ma[0]) - int(kde[0])) <= 6

    def test_kde_unimodal_no_cut(self, rng):
        vals = rng.normal(32, 5, 3000)
        counts = np.bincount(np.clip(vals.astype(int), 0, 63), minlength=64).astype(float)
        assert find_cuts(counts, n_points=3000, smoother="kde").size == 0

    def test_kde_empty_histogram(self):
        assert kde_density(np.zeros(16)).sum() == 0.0

    def test_estimator_accepts_kde(self, small_gaussians):
        x, y = small_gaussians
        kb = KeyBin2(seed=0, smoother="kde", n_projections=3).fit(x)
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert f1 > 0.85

    def test_invalid_smoother(self):
        with pytest.raises(ValidationError):
            KeyBin2(smoother="wavelet")
        with pytest.raises(ValidationError):
            find_cuts(np.ones(8), smoother="loess")


class TestPrivacyUtilities:
    def test_reconstruction_ambiguity_is_bin_width(self):
        space = SpaceRange(np.array([0.0, -10.0]), np.array([1.0, 10.0]))
        amb = reconstruction_ambiguity(space, depth=4)
        assert amb.tolist() == [1.0 / 16, 20.0 / 16]

    def test_deeper_bins_less_ambiguity(self):
        space = SpaceRange(np.zeros(1), np.ones(1))
        assert reconstruction_ambiguity(space, 6)[0] < reconstruction_ambiguity(space, 3)[0]

    def test_ambiguity_never_zero(self):
        space = SpaceRange(np.zeros(1), np.ones(1))
        assert reconstruction_ambiguity(space, 31)[0] > 0

    def test_anonymity_stats(self):
        counts = np.array([[0, 5, 1, 10]])
        stats = histogram_anonymity(counts)
        assert stats["min_occupancy"] == 1.0
        assert stats["singleton_fraction"] == pytest.approx(1 / 3)

    def test_anonymity_empty(self):
        stats = histogram_anonymity(np.zeros((2, 4)))
        assert stats["min_occupancy"] == 0.0

    def test_histograms_cannot_distinguish_permutations(self, rng):
        """The core non-invertibility fact: any within-bin rearrangement of
        the data produces identical published histograms."""
        from repro.kernels.histogram import accumulate_histogram
        from repro.kernels.keys import bin_indices

        x = rng.random((500, 3))
        space = SpaceRange.from_data(x)
        bins = bin_indices(x, space.r_min, space.r_max, 4)
        h1 = accumulate_histogram(bins, 16)
        # Jitter every point within its bin: histograms must be identical.
        width = space.span / 16
        jitter = (rng.random((500, 3)) - 0.5) * width * 0.9
        centers = space.r_min + (bins + 0.5) * width
        x2 = centers + jitter
        bins2 = bin_indices(x2, space.r_min, space.r_max, 4)
        h2 = accumulate_histogram(bins2, 16)
        assert np.array_equal(h1, h2)
        assert not np.allclose(x, x2)  # yet the data is different


class TestAutoDepths:
    def test_resolution_scales_with_m(self):
        from repro.core.estimator import resolve_depths

        small = resolve_depths("auto", 1_000)
        paper = resolve_depths("auto", 1_280_000)
        assert small[-1] <= paper[-1]
        assert paper == (6, 7, 8, 9)  # B = log2²(1.28M) ≈ 412 → depth 9

    def test_sequences_pass_through(self):
        from repro.core.estimator import resolve_depths

        assert resolve_depths((3, 5), 10_000) == (3, 5)

    def test_auto_estimator_works(self, small_gaussians):
        from repro.metrics.pairs import pair_precision_recall_f1

        x, y = small_gaussians
        kb = KeyBin2(seed=0, candidate_depths="auto").fit(x)
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert f1 > 0.9
        assert kb.model_.depth in kb._resolved_depths

    def test_invalid_string(self):
        with pytest.raises(ValidationError):
            KeyBin2(candidate_depths="deep")
