"""Tests for StreamingKeyBin2 and the KeyCounter."""

import numpy as np
import pytest

from repro.core.streaming import KeyCounter, StreamingKeyBin2
from repro.data.gaussians import gaussian_mixture
from repro.data.streams import BatchStream, DriftingStream
from repro.errors import NotFittedError, ValidationError
from repro.metrics.external import purity


class TestKeyCounter:
    def test_counts_unique_rows(self, rng):
        rows = rng.integers(0, 4, (100, 3)).astype(np.uint8)
        kc = KeyCounter()
        kc.update(rows)
        keys, counts = kc.to_arrays()
        assert counts.sum() == 100
        assert keys.shape[0] == np.unique(rows, axis=0).shape[0]

    def test_incremental_equals_batch(self, rng):
        rows = rng.integers(0, 4, (90, 2)).astype(np.uint8)
        a = KeyCounter()
        a.update(rows)
        b = KeyCounter()
        for i in range(0, 90, 7):
            b.update(rows[i : i + 7])
        ka, ca = a.to_arrays()
        kb, cb = b.to_arrays()
        da = {bytes(k): c for k, c in zip(ka, ca)}
        db = {bytes(k): c for k, c in zip(kb, cb)}
        assert da == db

    def test_eviction_drops_smallest(self, rng):
        kc = KeyCounter(capacity=10)
        # One heavy key plus many singletons.
        heavy = np.zeros((50, 2), dtype=np.uint8)
        kc.update(heavy)
        singles = np.stack(
            [np.arange(1, 41, dtype=np.uint8), np.arange(1, 41, dtype=np.uint8)],
            axis=1,
        )
        kc.update(singles)
        keys, counts = kc.to_arrays()
        assert len(kc) <= 10
        assert kc.evicted_keys > 0
        # The heavy key must have survived eviction.
        assert counts.max() == 50

    def test_width_change_rejected(self):
        kc = KeyCounter()
        kc.update(np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(ValidationError):
            kc.update(np.zeros((2, 4), dtype=np.uint8))

    def test_empty_update_noop(self):
        kc = KeyCounter()
        kc.update(np.zeros((0, 3), dtype=np.uint8))
        assert len(kc) == 0

    def test_merge_arrays_equals_pooled_update(self, rng):
        rows_a = rng.integers(0, 4, (80, 3)).astype(np.uint8)
        rows_b = rng.integers(0, 4, (60, 3)).astype(np.uint8)
        a = KeyCounter()
        a.update(rows_a)
        b = KeyCounter()
        b.update(rows_b)
        a.merge_arrays(*b.to_arrays())
        pooled = KeyCounter()
        pooled.update(np.concatenate([rows_a, rows_b]))
        da = {bytes(k): c for k, c in zip(*a.to_arrays())}
        dp = {bytes(k): c for k, c in zip(*pooled.to_arrays())}
        assert da == dp

    def test_merge_arrays_enforces_capacity(self):
        """A merge that overflows the cap must evict, not silently grow."""
        a = KeyCounter(capacity=10)
        a.update(np.arange(8, dtype=np.uint8).reshape(-1, 1))
        b = KeyCounter()
        b.update(np.arange(100, 108, dtype=np.uint8).reshape(-1, 1))
        a.merge_arrays(*b.to_arrays())
        assert len(a) <= 10
        assert a.evicted_keys > 0

    def test_merge_arrays_accumulates_peer_evictions(self):
        a = KeyCounter()
        a.update(np.zeros((5, 2), dtype=np.uint8))
        b = KeyCounter(capacity=4)
        b.update(np.arange(20, dtype=np.uint8).reshape(-1, 2))  # forces evictions
        assert b.evicted_points > 0
        a.merge_arrays(
            *b.to_arrays(),
            evicted_keys=b.evicted_keys,
            evicted_points=b.evicted_points,
        )
        assert a.evicted_keys == b.evicted_keys
        assert a.evicted_points == b.evicted_points

    def test_merge_arrays_empty_payload_keeps_evictions(self):
        a = KeyCounter()
        a.merge_arrays(
            np.empty((0, 0), dtype=np.uint8),
            np.empty(0, dtype=np.int64),
            evicted_keys=2,
            evicted_points=7,
        )
        assert len(a) == 0
        assert (a.evicted_keys, a.evicted_points) == (2, 7)

    def test_merge_arrays_width_mismatch_rejected(self):
        a = KeyCounter()
        a.update(np.zeros((3, 2), dtype=np.uint8))
        with pytest.raises(ValidationError):
            a.merge_arrays(np.zeros((2, 3), dtype=np.uint8), np.ones(2, dtype=np.int64))

    def test_merge_arrays_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            KeyCounter().merge_arrays(
                np.zeros((3, 2), dtype=np.uint8), np.ones(2, dtype=np.int64)
            )

    def test_eviction_is_content_deterministic(self):
        """Replicas holding the same cells in different insertion orders
        must evict the same cells (ties broken on key bytes)."""
        rows = np.arange(40, dtype=np.uint8).reshape(-1, 1)  # all count 1
        a = KeyCounter(capacity=30)
        a.update(rows[:20])
        a.update(rows[20:])  # overflow evicts here, insertion order 0..39
        b = KeyCounter(capacity=30)
        b.update(rows[20:])
        b.update(rows[:20])  # same contents, insertion order 20..39,0..19
        da = {bytes(k): c for k, c in zip(*a.to_arrays())}
        db = {bytes(k): c for k, c in zip(*b.to_arrays())}
        assert da == db


class TestStreamingKeyBin2:
    def test_stream_learns_clusters(self, small_gaussians):
        x, y = small_gaussians
        skb = StreamingKeyBin2(seed=0)
        for batch, _ in BatchStream(x, y, batch_size=250):
            skb.partial_fit(batch)
        skb.refresh()
        assert skb.n_clusters_ >= 4
        assert purity(y, skb.predict(x)) > 0.9

    def test_single_point_batches(self, rng):
        x = np.concatenate(
            [rng.normal(-10, 0.5, (100, 4)), rng.normal(10, 0.5, (100, 4))]
        )
        skb = StreamingKeyBin2(seed=0, n_projections=2)
        for row in x:
            skb.partial_fit(row.reshape(1, -1))
        skb.refresh()
        assert skb.n_clusters_ >= 2

    def test_refresh_without_data_raises(self):
        with pytest.raises(NotFittedError):
            StreamingKeyBin2().refresh()

    def test_predict_before_refresh_raises(self, rng):
        skb = StreamingKeyBin2(seed=0)
        skb.partial_fit(rng.random((10, 3)))
        with pytest.raises(NotFittedError):
            skb.predict(rng.random((5, 3)))

    def test_feature_count_locked(self, rng):
        skb = StreamingKeyBin2(seed=0)
        skb.partial_fit(rng.random((10, 3)))
        with pytest.raises(ValidationError):
            skb.partial_fit(rng.random((10, 4)))

    def test_out_of_range_drift_clips_not_crashes(self, rng):
        skb = StreamingKeyBin2(seed=0, n_projections=2)
        skb.partial_fit(rng.normal(0, 1, (200, 4)))
        # Later batch far outside the seeded range.
        skb.partial_fit(rng.normal(50, 1, (200, 4)))
        skb.refresh()
        labels = skb.predict(rng.normal(50, 1, (20, 4)))
        assert labels.shape == (20,)

    def test_drifting_stream_end_to_end(self):
        stream = DriftingStream(
            n_batches=8, batch_size=200, n_dims=8, n_clusters=3, seed=0
        )
        skb = StreamingKeyBin2(seed=0, n_projections=3)
        last_x, last_y = None, None
        for bx, by in stream:
            skb.partial_fit(bx)
            last_x, last_y = bx, by
        skb.refresh()
        assert purity(last_y, skb.predict(last_x)) > 0.7

    def test_refresh_is_repeatable(self, small_gaussians):
        x, _ = small_gaussians
        skb = StreamingKeyBin2(seed=0)
        skb.partial_fit(x)
        skb.refresh()
        first = skb.predict(x)
        skb.refresh()  # refresh again without new data
        assert np.array_equal(skb.predict(x), first)

    def test_more_data_after_refresh(self, small_gaussians):
        x, y = small_gaussians
        half = x.shape[0] // 2
        skb = StreamingKeyBin2(seed=0)
        skb.partial_fit(x[:half])
        skb.refresh()
        skb.partial_fit(x[half:])
        skb.refresh()
        assert skb.n_seen_ == x.shape[0]
        assert purity(y, skb.predict(x)) > 0.85

    def test_depth_limit_enforced(self):
        with pytest.raises(ValidationError):
            StreamingKeyBin2(candidate_depths=(4, 9))

    def test_streaming_equals_batch_histograms(self, small_gaussians):
        """After an identical initializing batch (which seeds the binning
        range), chunked and one-shot accumulation must agree exactly."""
        x, _ = small_gaussians
        first, rest = x[:500], x[500:]
        a = StreamingKeyBin2(seed=5)
        a.partial_fit(first)
        a.partial_fit(rest)
        b = StreamingKeyBin2(seed=5)
        b.partial_fit(first)
        for i in range(0, rest.shape[0], 111):
            b.partial_fit(rest[i : i + 111])
        for st_a, st_b in zip(a._states, b._states):
            for d in st_a.depths:
                assert np.array_equal(st_a.hist[d], st_b.hist[d])
