"""Tests for smoothing and discrete derivatives."""

import numpy as np
import pytest

from repro.core.smoothing import (
    local_slopes,
    moving_average,
    paper_window,
    second_derivative,
)
from repro.errors import ValidationError


class TestPaperWindow:
    def test_bin_based_rule(self):
        assert paper_window(10_000, n_bins=64) == 8
        assert paper_window(10_000, n_bins=144) == 12

    def test_point_based_fallback(self):
        # w = log2(M): for M = 4096 → 12
        assert paper_window(4096) == 12

    def test_floor_one(self):
        assert paper_window(1) >= 1
        assert paper_window(100, n_bins=1) == 1

    def test_invalid(self):
        with pytest.raises(ValidationError):
            paper_window(0)
        with pytest.raises(ValidationError):
            paper_window(10, n_bins=0)


class TestMovingAverage:
    def test_window_one_is_copy(self):
        y = np.array([1.0, 5.0, 2.0])
        out = moving_average(y, 1)
        assert np.array_equal(out, y)
        assert out is not y

    def test_preserves_mass_of_constant(self):
        y = np.full(20, 3.0)
        assert np.allclose(moving_average(y, 5), 3.0)

    def test_smooths_spike(self):
        y = np.zeros(21)
        y[10] = 10.0
        sm = moving_average(y, 5)
        assert sm[10] < 10.0
        assert sm[8] > 0.0

    def test_no_phase_shift(self):
        """A symmetric bump stays centred after smoothing."""
        y = np.exp(-0.5 * ((np.arange(31) - 15) / 3.0) ** 2)
        sm = moving_average(y, 7)
        assert np.argmax(sm) == 15

    def test_short_input(self):
        y = np.array([2.0])
        assert np.array_equal(moving_average(y, 9), y)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            moving_average(np.zeros((2, 2)), 3)

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            moving_average(np.zeros(5), 0)


class TestLocalSlopes:
    def test_linear_signal_constant_slope(self):
        y = 2.0 * np.arange(30) + 5.0
        slopes = local_slopes(y, 5)
        # Interior slopes must equal the true slope.
        assert np.allclose(slopes[3:-3], 2.0)

    def test_constant_signal_zero_slope(self):
        slopes = local_slopes(np.full(20, 7.0), 5)
        assert np.allclose(slopes, 0.0)

    def test_sign_tracks_derivative(self):
        y = np.sin(np.linspace(0, 2 * np.pi, 100))
        slopes = local_slopes(y, 5)
        # Rising at the start, falling in the middle.
        assert slopes[10] > 0
        assert slopes[50] < 0

    def test_tiny_input(self):
        assert np.allclose(local_slopes(np.array([1.0]), 3), 0.0)


class TestSecondDerivative:
    def test_quadratic_constant_curvature(self):
        y = np.arange(40, dtype=float) ** 2
        curv = second_derivative(y, 5)
        assert np.allclose(curv[6:-6], 2.0, atol=1e-8)

    def test_sign_at_valley(self):
        y = (np.arange(41, dtype=float) - 20) ** 2
        curv = second_derivative(y, 5)
        assert curv[20] > 0  # convex at the minimum
