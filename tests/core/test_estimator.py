"""Tests for the KeyBin2 estimator."""

import numpy as np
import pytest

from repro.core import KeyBin2
from repro.data.correlated import correlated_clusters
from repro.data.gaussians import gaussian_mixture
from repro.errors import NotFittedError, ValidationError
from repro.metrics.external import purity
from repro.metrics.pairs import pair_precision_recall_f1


class TestFitBasics:
    def test_finds_at_least_true_clusters(self, small_gaussians):
        x, y = small_gaussians
        kb = KeyBin2(seed=0).fit(x)
        assert kb.n_clusters_ >= 4

    def test_high_accuracy_on_separated_data(self, small_gaussians):
        x, y = small_gaussians
        kb = KeyBin2(seed=0).fit(x)
        prec, rec, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert prec > 0.95
        assert f1 > 0.9

    def test_fit_predict_equals_labels(self, small_gaussians):
        x, _ = small_gaussians
        kb = KeyBin2(seed=1)
        labels = kb.fit_predict(x)
        assert np.array_equal(labels, kb.labels_)
        assert np.array_equal(kb.predict(x), labels)

    def test_reproducible_with_seed(self, small_gaussians):
        x, _ = small_gaussians
        a = KeyBin2(seed=9).fit_predict(x)
        b = KeyBin2(seed=9).fit_predict(x)
        assert np.array_equal(a, b)

    def test_trials_recorded(self, small_gaussians):
        x, _ = small_gaussians
        kb = KeyBin2(n_projections=5, seed=0).fit(x)
        assert len(kb.trials_) == 5
        assert kb.score_ == max(
            t.score for t in kb.trials_ if t.n_clusters >= 2
        )

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KeyBin2().predict(np.zeros((2, 2)))


class TestProjectionHandling:
    def test_separates_correlated_clusters(self):
        """The headline KeyBin2 capability (Fig. 1)."""
        x, y = correlated_clusters(3000, seed=1)
        kb = KeyBin2(n_projections=10, seed=1).fit(x)
        assert kb.n_clusters_ >= 2
        assert purity(y, kb.labels_) > 0.85

    def test_projection_none_keeps_original_space(self, tiny_gaussians):
        x, y = tiny_gaussians
        kb = KeyBin2(projection="none", seed=0).fit(x)
        assert kb.model_.projection is None
        assert purity(y, kb.labels_) > 0.9

    @pytest.mark.parametrize("kind", ["gaussian", "sparse", "orthonormal"])
    def test_all_projection_kinds_work(self, small_gaussians, kind):
        x, y = small_gaussians
        kb = KeyBin2(projection=kind, n_projections=4, seed=2).fit(x)
        assert purity(y, kb.labels_) > 0.8

    def test_explicit_n_components(self, small_gaussians):
        x, _ = small_gaussians
        kb = KeyBin2(n_components=3, n_projections=3, seed=0).fit(x)
        assert kb.model_.n_projected_dims == 3

    def test_n_components_capped_at_features(self, tiny_gaussians):
        x, _ = tiny_gaussians
        kb = KeyBin2(n_components=50, n_projections=2, seed=0).fit(x)
        assert kb.model_.n_projected_dims <= x.shape[1]


class TestParameters:
    def test_invalid_projection_kind(self):
        with pytest.raises(ValidationError):
            KeyBin2(projection="pca")

    def test_invalid_n_projections(self):
        with pytest.raises(ValidationError):
            KeyBin2(n_projections=0)

    def test_empty_depths(self):
        with pytest.raises(ValidationError):
            KeyBin2(candidate_depths=())

    def test_invalid_min_cluster_fraction(self):
        with pytest.raises(ValidationError):
            KeyBin2(min_cluster_fraction=1.0)

    def test_min_cluster_fraction_prunes(self, small_gaussians):
        x, y = small_gaussians
        loose = KeyBin2(seed=4).fit(x)
        strict = KeyBin2(seed=4, min_cluster_fraction=0.05).fit(x)
        assert strict.n_clusters_ <= loose.n_clusters_

    def test_collapse_disabled_keeps_all_dims(self, small_gaussians):
        x, _ = small_gaussians
        kb = KeyBin2(collapse=False, n_projections=2, seed=0).fit(x)
        assert kb.model_.kept_dims.all()


class TestInputValidation:
    def test_nan_rejected(self):
        x = np.ones((10, 3))
        x[0, 0] = np.nan
        with pytest.raises(ValidationError):
            KeyBin2().fit(x)

    def test_inf_rejected(self):
        x = np.ones((10, 3))
        x[5, 1] = np.inf
        with pytest.raises(ValidationError):
            KeyBin2().fit(x)

    def test_single_point_rejected(self):
        with pytest.raises(ValidationError):
            KeyBin2().fit(np.ones((1, 3)))

    def test_1d_input_treated_as_single_feature(self, rng):
        vals = np.concatenate([rng.normal(-5, 0.5, 300), rng.normal(5, 0.5, 300)])
        kb = KeyBin2(seed=0, n_projections=2).fit(vals)
        assert kb.n_clusters_ >= 2


class TestDegenerateData:
    def test_single_blob_single_cluster(self, rng):
        x = rng.normal(0, 1, (500, 8))
        kb = KeyBin2(seed=0, n_projections=4).fit(x)
        # One Gaussian blob: should not shatter into many clusters.
        assert kb.n_clusters_ <= 4

    def test_constant_data(self):
        x = np.ones((100, 5))
        kb = KeyBin2(seed=0, n_projections=2).fit(x)
        assert kb.n_clusters_ == 1
        assert np.all(kb.labels_ == 0)

    def test_two_points(self):
        x = np.array([[0.0, 0.0], [10.0, 10.0]])
        kb = KeyBin2(seed=0, n_projections=2).fit(x)
        assert kb.labels_.shape == (2,)
