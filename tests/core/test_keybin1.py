"""Tests for the KeyBin1 baseline."""

import numpy as np
import pytest

from repro.core.keybin1 import KeyBin1, threshold_cuts
from repro.data.correlated import correlated_clusters
from repro.errors import NotFittedError, ValidationError
from repro.metrics.external import purity


class TestThresholdCuts:
    def test_two_regions_one_cut(self):
        counts = np.zeros(32)
        counts[2:8] = 100
        counts[20:28] = 80
        cuts = threshold_cuts(counts, 0.1)
        assert cuts.size == 1
        assert 8 <= cuts[0] <= 19

    def test_single_region_no_cut(self):
        counts = np.zeros(16)
        counts[4:10] = 50
        assert threshold_cuts(counts, 0.1).size == 0

    def test_threshold_erases_sparse_cluster(self):
        """The failure mode KeyBin2 fixes: a small cluster below the
        threshold vanishes."""
        counts = np.zeros(64)
        counts[5:10] = 1000.0  # dominant cluster
        counts[40:45] = 30.0   # small cluster: 3% of peak
        with_low = threshold_cuts(counts, density_threshold=0.01)
        with_high = threshold_cuts(counts, density_threshold=0.05)
        assert with_low.size == 1
        assert with_high.size == 0  # small cluster fell below the threshold

    def test_empty_histogram(self):
        assert threshold_cuts(np.zeros(8)).size == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            threshold_cuts(np.ones(4), 0.0)
        with pytest.raises(ValidationError):
            threshold_cuts(np.ones(4), 1.5)


class TestKeyBin1:
    def test_clusters_separated_data(self, tiny_gaussians):
        x, y = tiny_gaussians
        kb = KeyBin1(depth=5).fit(x)
        assert kb.n_clusters_ >= 3
        assert purity(y, kb.labels_) > 0.9

    def test_fails_on_correlated_clusters(self):
        """The documented KeyBin1 limitation (paper §1) that motivates
        KeyBin2."""
        x, y = correlated_clusters(3000, seed=1)
        kb = KeyBin1(depth=6).fit(x)
        assert kb.n_clusters_ == 1  # cannot separate projection overlap

    def test_predict_matches_fit(self, tiny_gaussians):
        x, _ = tiny_gaussians
        kb = KeyBin1().fit(x)
        assert np.array_equal(kb.predict(x), kb.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KeyBin1().predict(np.zeros((2, 2)))

    def test_model_has_no_projection(self, tiny_gaussians):
        x, _ = tiny_gaussians
        kb = KeyBin1().fit(x)
        assert kb.model_.projection is None
        assert kb.model_.meta["algorithm"] == "keybin1"

    def test_invalid_depth(self):
        with pytest.raises(ValidationError):
            KeyBin1(depth=0)
