"""Tests for the histogram-space Calinski–Harabasz index."""

import numpy as np
import pytest

from repro.core.assess import (
    histogram_ch_index,
    interval_stats,
    marginal_percentile_bin,
)
from repro.core.binning import SpaceRange
from repro.core.partitioning import find_cuts
from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.errors import ValidationError
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices
from repro.metrics.dispersion import calinski_harabasz_points


class TestMarginalPercentileBin:
    def test_median_of_symmetric(self):
        counts = np.zeros(10)
        counts[4] = counts[5] = 50
        assert marginal_percentile_bin(counts, 50.0) in (4, 5)

    def test_concentrated(self):
        counts = np.zeros(10)
        counts[7] = 100
        assert marginal_percentile_bin(counts) == 7

    def test_empty_returns_middle(self):
        assert marginal_percentile_bin(np.zeros(10)) == 5


class TestIntervalStats:
    def test_modes_and_masses(self):
        counts = np.array([0, 10, 5, 0, 0, 2, 20, 3], dtype=float)
        modes, masses, within = interval_stats(counts, np.array([3]))
        assert modes.tolist() == [1, 6]
        assert masses.tolist() == [15.0, 25.0]
        assert within[0] > 0  # bin 2 contributes (2-1)^2 * 5

    def test_no_cuts_single_interval(self):
        counts = np.array([1.0, 2.0, 3.0])
        modes, masses, within = interval_stats(counts, np.empty(0, np.int64))
        assert modes.tolist() == [2]
        assert masses.tolist() == [6.0]

    def test_empty_interval_mode_midpoint(self):
        counts = np.array([5.0, 0.0, 0.0, 0.0])
        modes, masses, _ = interval_stats(counts, np.array([0]))
        assert masses[1] == 0.0
        assert 1 <= modes[1] <= 3


def _build_case(x, depth=6):
    space = SpaceRange.from_data(x, margin=0.05)
    bins = bin_indices(x, space.r_min, space.r_max, depth)
    counts = accumulate_histogram(bins, 1 << depth)
    cuts = [find_cuts(counts[j], n_points=x.shape[0]) for j in range(x.shape[1])]
    partition = PrimaryPartition(depth, cuts)
    iv = partition.intervals_for(bins)
    codes = partition.cell_codes(iv)
    table = GlobalClusterTable.from_points(codes)
    labels = table.lookup(codes)
    score = histogram_ch_index(counts, partition.cuts,
                               partition.decode_cells(table.codes))
    return counts, partition, table, labels, score


class TestHistogramCHIndex:
    def test_single_cluster_minus_inf(self):
        counts = np.ones((2, 8))
        cuts = [np.empty(0, np.int64)] * 2
        cells = np.zeros((1, 2), dtype=np.int64)
        assert histogram_ch_index(counts, cuts, cells) == float("-inf")

    def test_good_partition_scores_higher_than_bad(self, rng):
        # Two well-separated clusters in 1-D (embedded in 2-D).
        a = rng.normal(-10, 1, (500, 2))
        b = rng.normal(10, 1, (500, 2))
        x = np.concatenate([a, b])
        counts, partition, table, labels, good = _build_case(x)
        # Bad: arbitrary cut in the middle of one cluster.
        depth = partition.depth
        bad_cuts = [np.array([5]), np.array([5])]
        bad_partition = PrimaryPartition(depth, bad_cuts)
        space = SpaceRange.from_data(x, margin=0.05)
        bins = bin_indices(x, space.r_min, space.r_max, depth)
        iv = bad_partition.intervals_for(bins)
        codes = bad_partition.cell_codes(iv)
        bad_table = GlobalClusterTable.from_points(codes)
        bad = histogram_ch_index(counts, bad_partition.cuts,
                                 bad_partition.decode_cells(bad_table.codes))
        assert good > bad

    def test_ranking_agrees_with_point_space(self, rng):
        """The histogram-space index must rank partitions like the exact
        point-space CH (the property §3.3 claims)."""
        a = rng.normal(-8, 1, (400, 2))
        b = rng.normal(8, 1, (400, 2))
        c = rng.normal([0, 14], 1, (400, 2))
        x = np.concatenate([a, b, c])
        counts, partition, table, labels, hist_score = _build_case(x)
        point_score_good = calinski_harabasz_points(x, labels)
        # Random labels score terribly in point space and must also score
        # terribly (or be unscorable) in histogram space.
        rng2 = np.random.default_rng(1)
        rand_labels = rng2.integers(0, 3, x.shape[0])
        point_score_bad = calinski_harabasz_points(x, rand_labels)
        assert point_score_good > point_score_bad
        assert np.isfinite(hist_score) and hist_score > 0

    def test_two_cluster_guard_nonzero(self):
        """|Q| = 2 must not be hard-zeroed by the log factor (deviation
        note in the module docstring)."""
        counts = np.zeros((1, 16))
        counts[0, 2] = 100
        counts[0, 12] = 100
        cuts = [np.array([7])]
        cells = np.array([[0], [1]])
        score = histogram_ch_index(counts, cuts, cells)
        assert score > 0

    def test_paper_exact_two_cluster_zero(self):
        counts = np.zeros((1, 16))
        counts[0, 1:4] = [20, 100, 20]   # spread → nonzero within-dispersion
        counts[0, 11:14] = [20, 100, 20]
        score = histogram_ch_index(
            counts, [np.array([7])], np.array([[0], [1]]), paper_exact=True
        )
        assert score == 0.0

    def test_perfectly_tight_clusters_inf(self):
        counts = np.zeros((1, 8))
        counts[0, 1] = 50
        counts[0, 6] = 50
        score = histogram_ch_index(counts, [np.array([3])], np.array([[0], [1]]))
        assert score == float("inf")

    def test_validation(self):
        with pytest.raises(ValidationError):
            histogram_ch_index(np.zeros(4), [], np.zeros((1, 1), dtype=np.int64))
        with pytest.raises(ValidationError):
            histogram_ch_index(
                np.zeros((2, 4)), [np.empty(0)], np.zeros((2, 2), dtype=np.int64)
            )
        with pytest.raises(ValidationError):
            # cell interval index out of range
            histogram_ch_index(
                np.ones((1, 4)), [np.array([1])], np.array([[5], [0]])
            )
