"""Tests for primary partitions and the global cluster table."""

import numpy as np
import pytest

from repro.core.primary import GlobalClusterTable, PrimaryPartition
from repro.errors import ValidationError


class TestPrimaryPartition:
    def test_n_intervals(self):
        p = PrimaryPartition(4, [np.array([3, 7]), np.empty(0, np.int64)])
        assert p.n_intervals.tolist() == [3, 1]
        assert p.n_cells == 3

    def test_cuts_validated(self):
        with pytest.raises(ValidationError):
            PrimaryPartition(3, [np.array([7])])  # cut at last bin edge
        with pytest.raises(ValidationError):
            PrimaryPartition(3, [np.array([-1])])
        with pytest.raises(ValidationError):
            PrimaryPartition(3, [np.array([2, 2])])  # non-increasing

    def test_intervals_for_shape_check(self):
        p = PrimaryPartition(3, [np.array([3])])
        with pytest.raises(ValidationError):
            p.intervals_for(np.zeros((4, 2), dtype=np.int32))

    def test_cell_codes_decode_round_trip(self, rng):
        p = PrimaryPartition(
            5, [np.array([10, 20]), np.array([15]), np.empty(0, np.int64)]
        )
        iv = np.stack(
            [
                rng.integers(0, 3, 50),
                rng.integers(0, 2, 50),
                rng.integers(0, 1, 50),
            ],
            axis=1,
        )
        codes = p.cell_codes(iv)
        decoded = p.decode_cells(np.unique(codes))
        # Every decoded row must correspond to one of the original rows.
        orig = {tuple(r) for r in iv}
        for row in decoded:
            assert tuple(row) in orig

    def test_codes_injective(self, rng):
        p = PrimaryPartition(4, [np.array([5]), np.array([3, 9])])
        iv = np.stack([rng.integers(0, 2, 100), rng.integers(0, 3, 100)], axis=1)
        codes = p.cell_codes(iv)
        uniq_rows = np.unique(iv, axis=0).shape[0]
        assert np.unique(codes).size == uniq_rows


class TestGlobalClusterTable:
    def test_from_points(self):
        codes = np.array([5, 3, 5, 9, 3, 3])
        t = GlobalClusterTable.from_points(codes)
        assert t.codes.tolist() == [3, 5, 9]
        assert t.sizes.tolist() == [3, 2, 1]
        assert t.n_clusters == 3

    def test_lookup_dense_labels(self):
        t = GlobalClusterTable.from_points(np.array([10, 20, 10]))
        labels = t.lookup(np.array([10, 20, 30]))
        assert labels.tolist() == [0, 1, -1]

    def test_lookup_empty_table(self):
        t = GlobalClusterTable(np.empty(0, dtype=np.int64))
        assert t.lookup(np.array([1, 2])).tolist() == [-1, -1]

    def test_lookup_value_below_first_code(self):
        t = GlobalClusterTable(np.array([5, 9]))
        assert t.lookup(np.array([1])).tolist() == [-1]

    def test_merge_union_and_sizes(self):
        a = GlobalClusterTable.from_points(np.array([1, 1, 2]))
        b = GlobalClusterTable.from_points(np.array([2, 3]))
        merged = a.merge(b)
        assert merged.codes.tolist() == [1, 2, 3]
        assert merged.sizes.tolist() == [2, 2, 1]

    def test_merge_with_empty(self):
        a = GlobalClusterTable.from_points(np.array([4]))
        empty = GlobalClusterTable(np.empty(0, dtype=np.int64))
        assert a.merge(empty).codes.tolist() == [4]
        assert empty.merge(a).codes.tolist() == [4]

    def test_unsorted_codes_sorted(self):
        t = GlobalClusterTable(np.array([9, 3, 5]), np.array([1, 2, 3]))
        assert t.codes.tolist() == [3, 5, 9]
        assert t.sizes.tolist() == [2, 3, 1]

    def test_duplicate_codes_rejected(self):
        with pytest.raises(ValidationError):
            GlobalClusterTable(np.array([3, 3]))

    def test_sizes_alignment_checked(self):
        with pytest.raises(ValidationError):
            GlobalClusterTable(np.array([1, 2]), np.array([1]))
