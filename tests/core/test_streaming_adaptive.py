"""Adaptive-range streaming: bit-identity, exact rebins, OOR quarantine,
drifting-stream end-to-end behavior, and v2 checkpoint round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingKeyBin2
from repro.data.streams import (
    MeanShiftStream,
    RangeGrowthStream,
    RegimeChangeStream,
)
from repro.errors import ValidationError

DEPTHS = (4, 5, 6)


def _make(adaptive: bool, fused: bool, **kw) -> StreamingKeyBin2:
    kw.setdefault("n_projections", 4)
    kw.setdefault("candidate_depths", DEPTHS)
    kw.setdefault("seed", 0)
    return StreamingKeyBin2(fused=fused, adaptive=adaptive, **kw)


def _assert_states_equal(a: StreamingKeyBin2, b: StreamingKeyBin2) -> None:
    assert a.n_seen_ == b.n_seen_
    for sa, sb in zip(a._states, b._states):
        np.testing.assert_array_equal(sa.space.r_min, sb.space.r_min)
        np.testing.assert_array_equal(sa.space.r_max, sb.space.r_max)
        for d in sa.depths:
            np.testing.assert_array_equal(sa.hist[d], sb.hist[d])
        ka, ca = sa.keys.to_arrays()
        kb, cb = sb.keys.to_arrays()
        np.testing.assert_array_equal(ka, kb)
        np.testing.assert_array_equal(ca, cb)


def _assert_mass_invariants(skb: StreamingKeyBin2) -> None:
    """Every depth holds all mass; shallow depths are exact coarsenings."""
    deepest = skb.candidate_depths[-1]
    for st in skb._states:
        n_dims = st.space.n_dims
        for d in st.depths:
            assert int(st.hist[d].sum()) == skb.n_seen_ * n_dims
        for d in st.depths[:-1]:
            coarse = st.hist[deepest].reshape(n_dims, 1 << d, -1).sum(axis=2)
            np.testing.assert_array_equal(st.hist[d], coarse)
        _, counts = st.keys.to_arrays()
        assert int(counts.sum()) + st.keys.evicted_points == skb.n_seen_


class TestStationaryBitIdentity:
    """On an in-range stream, adaptive must be invisible — bit for bit."""

    @pytest.mark.parametrize("fused", [False, True])
    def test_adaptive_matches_fixed(self, small_gaussians, fused):
        x, _ = small_gaussians
        fixed = _make(False, fused)
        adaptive = _make(True, fused)
        for start in range(0, 1500, 500):
            fixed.partial_fit(x[start:start + 500])
            adaptive.partial_fit(x[start:start + 500])
        _assert_states_equal(fixed, adaptive)
        assert sum(st.rebin_count for st in adaptive._states) == 0
        assert all(np.all(st.levels == 0) for st in adaptive._states)
        labels_f = fixed.refresh().predict(x[1500:])
        labels_a = adaptive.refresh().predict(x[1500:])
        np.testing.assert_array_equal(labels_f, labels_a)

    def test_fused_matches_reference_while_adapting(self):
        stream = list(RangeGrowthStream(n_batches=8, batch_size=300,
                                        n_dims=8, growth=1.7, seed=5))
        ref = _make(True, fused=False)
        fus = _make(True, fused=True)
        for x, _ in stream:
            ref.partial_fit(x)
            fus.partial_fit(x)
        assert sum(st.rebin_count for st in ref._states) > 0
        _assert_states_equal(ref, fus)


class TestAdaptiveWidening:
    @pytest.mark.parametrize("fused", [False, True])
    def test_growth_stream_conserves_mass_exactly(self, fused):
        skb = _make(True, fused)
        for x, _ in RangeGrowthStream(n_batches=10, batch_size=250,
                                      n_dims=8, growth=1.8, seed=1):
            skb.partial_fit(x)
            _assert_mass_invariants(skb)
        assert sum(st.rebin_count for st in skb._states) > 0
        # Adaptive mode quarantines nothing permanently: after the final
        # widen-and-retry, every row landed on the grid.
        assert skb.n_seen_ == 2500

    def test_oor_ledger_counts_events(self):
        skb = _make(True, fused=True)
        for x, _ in RangeGrowthStream(n_batches=6, batch_size=200,
                                      n_dims=8, growth=2.0, seed=2):
            skb.partial_fit(x)
        oor = sum(int(st.oor_low.sum() + st.oor_high.sum())
                  for st in skb._states)
        assert oor > 0  # growth forced out-of-range events...
        assert sum(st.rebin_count for st in skb._states) > 0  # ...and rebins

    def test_mean_shift_widens_one_side_dominant(self):
        skb = _make(True, fused=True)
        for x, _ in MeanShiftStream(n_batches=12, batch_size=200,
                                    n_dims=6, shift=2.5, seed=3):
            skb.partial_fit(x)
        assert sum(st.rebin_count for st in skb._states) > 0
        _assert_mass_invariants(skb)

    def test_epoch_advances_with_rebins(self):
        skb = _make(True, fused=True)
        for x, _ in RangeGrowthStream(n_batches=6, batch_size=200,
                                      n_dims=8, growth=2.0, seed=4):
            skb.partial_fit(x)
        for st in skb._states:
            assert st.bin_epoch == st.rebin_count
            if st.rebin_count:
                assert np.any(st.levels > 0)
                # The live space is the chain grid at the current levels.
                from repro.core.adaptive import grid_bounds

                r_min, r_max = grid_bounds(
                    st.base_space.r_min, st.base_space.r_max, st.levels
                )
                np.testing.assert_array_equal(st.space.r_min, r_min)
                np.testing.assert_array_equal(st.space.r_max, r_max)

    def test_predict_after_widening_works(self):
        skb = _make(True, fused=True)
        batches = list(RangeGrowthStream(n_batches=8, batch_size=250,
                                         n_dims=8, growth=1.6, seed=6))
        for x, _ in batches:
            skb.partial_fit(x)
        labels = skb.refresh().predict(batches[-1][0])
        assert labels.shape == (250,)


class TestFixedModeClipTracking:
    """Satellite (a): clipped-row counts exist even with adaptive off."""

    @pytest.mark.parametrize("fused", [False, True])
    def test_fixed_mode_records_clipped_rows(self, fused):
        skb = _make(False, fused, feature_range=(-2.0, 2.0))
        rng = np.random.default_rng(0)
        skb.partial_fit(rng.normal(size=(500, 8)))          # in range
        skb.partial_fit(100.0 * rng.normal(size=(500, 8)))  # mostly clipped
        clipped = sum(int(st.oor_low.sum() + st.oor_high.sum())
                      for st in skb._states)
        assert clipped > 0
        assert all(st.rebin_count == 0 for st in skb._states)  # fixed grid

    def test_in_range_stream_records_zero(self, small_gaussians):
        x, _ = small_gaussians
        skb = _make(False, True)
        skb.partial_fit(x)
        skb.partial_fit(x)  # range was seeded by the first batch
        assert all(int(st.oor_low.sum() + st.oor_high.sum()) == 0
                   for st in skb._states)


class TestCheckpointV2:
    def test_adaptive_roundtrip_mid_widening_is_bit_identical(self, tmp_path):
        batches = [x for x, _ in RangeGrowthStream(
            n_batches=8, batch_size=200, n_dims=8, growth=1.8, seed=7)]
        straight = _make(True, True, drift_window=300)
        resumed = _make(True, True, drift_window=300)
        for x in batches[:4]:
            straight.partial_fit(x)
            resumed.partial_fit(x)
        path = tmp_path / "mid.kb2"
        resumed.save_state(path)
        resumed = StreamingKeyBin2.load_state(path)
        for x in batches[4:]:
            straight.partial_fit(x)
            resumed.partial_fit(x)
        _assert_states_equal(straight, resumed)
        for sa, sb in zip(straight._states, resumed._states):
            np.testing.assert_array_equal(sa.levels, sb.levels)
            np.testing.assert_array_equal(sa.need_lo, sb.need_lo)
            np.testing.assert_array_equal(sa.need_hi, sb.need_hi)
            assert sa.bin_epoch == sb.bin_epoch
            np.testing.assert_array_equal(sa.oor_low, sb.oor_low)
            np.testing.assert_array_equal(sa.drift.ref, sb.drift.ref)
            np.testing.assert_array_equal(sa.drift.cur, sb.drift.cur)
            assert sa.drift.swaps == sb.drift.swaps
        np.testing.assert_array_equal(
            straight.refresh().predict(batches[-1]),
            resumed.refresh().predict(batches[-1]),
        )

    def test_config_fields_survive(self, tmp_path, rng):
        skb = _make(True, True, drift_window=123, drift_threshold=0.4,
                    anticipate=1.5)
        skb.partial_fit(rng.normal(size=(100, 6)))
        path = tmp_path / "cfg.kb2"
        skb.save_state(path)
        back = StreamingKeyBin2.load_state(path)
        assert back.adaptive is True
        assert back.drift_window == 123
        assert back.drift_threshold == 0.4
        assert back.anticipate == 1.5

    def test_sketches_survive(self, tmp_path, rng):
        skb = _make(True, True)
        skb.partial_fit(rng.normal(size=(200, 6)))
        skb.partial_fit(10.0 * rng.normal(size=(200, 6)))
        path = tmp_path / "sk.kb2"
        skb.save_state(path)
        back = StreamingKeyBin2.load_state(path)
        for sa, sb in zip(skb._states, back._states):
            assert sa.sketches is not None and sb.sketches is not None
            for ska, skb_ in zip(sa.sketches, sb.sketches):
                assert ska.state_dict() == skb_.state_dict()


class TestValidationAndDefaults:
    def test_drift_window_requires_nonnegative(self):
        with pytest.raises(ValidationError):
            StreamingKeyBin2(n_projections=2, drift_window=-1, seed=0)

    def test_anticipate_requires_nonnegative(self):
        with pytest.raises(ValidationError):
            StreamingKeyBin2(n_projections=2, anticipate=-0.5, seed=0)

    def test_drift_detectors_empty_before_fit(self):
        skb = _make(True, True, drift_window=100)
        assert skb.drift_detectors == []

    def test_drift_detectors_none_when_disabled(self, rng):
        skb = _make(True, True)
        skb.partial_fit(rng.normal(size=(50, 4)))
        assert all(d is None for d in skb.drift_detectors)

    def test_regime_change_scored_by_detector(self):
        skb = _make(True, True, drift_window=400, drift_threshold=0.4)
        fired = []
        for x, _ in RegimeChangeStream(n_batches=10, batch_size=200,
                                       n_dims=8, change_at=4, seed=8):
            skb.partial_fit(x)
            fired.append(any(d is not None and d.drifted
                             for d in skb.drift_detectors))
        assert any(fired[4:])      # flagged after the change...
        assert not any(fired[:4])  # ...and silent before it
