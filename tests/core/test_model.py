"""Tests for KeyBin2Model (fitted state, predict, serialization)."""

import numpy as np
import pytest

from repro.core import KeyBin2, KeyBin2Model
from repro.errors import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def fitted(small_gaussians):
    x, y = small_gaussians
    kb = KeyBin2(n_projections=4, seed=3).fit(x)
    return kb, x, y


class TestModel:
    def test_predict_matches_fit_labels(self, fitted):
        kb, x, _ = fitted
        assert np.array_equal(kb.model_.predict(x), kb.labels_)

    def test_model_size_independent_of_points(self, fitted):
        """The fitted model must be histogram-scale, not data-scale."""
        kb, x, _ = fitted
        d = kb.model_.to_dict()
        n_numbers = sum(
            np.asarray(v).size
            for v in (d["r_min"], d["r_max"], d["codes"], d["kept_dims"])
        )
        n_numbers += sum(len(c) for c in d["cuts"])
        if d["projection"] is not None:
            n_numbers += np.asarray(d["projection"]).size
        assert n_numbers < x.shape[0]  # far smaller than the training set

    def test_dict_round_trip(self, fitted):
        kb, x, _ = fitted
        again = KeyBin2Model.from_dict(kb.model_.to_dict())
        assert np.array_equal(again.predict(x), kb.model_.predict(x))
        assert again.n_clusters == kb.model_.n_clusters
        assert again.score == kb.model_.score

    def test_dict_is_json_serializable(self, fitted):
        import json

        kb, _, _ = fitted
        text = json.dumps(kb.model_.to_dict())
        again = KeyBin2Model.from_dict(json.loads(text))
        assert again.depth == kb.model_.depth

    def test_predict_unseen_region_is_noise(self, fitted):
        kb, x, _ = fitted
        far = np.full((3, x.shape[1]), 1e6)
        labels = kb.model_.predict(far)
        # A far point either clips into an existing boundary cell or is a
        # novel cell (−1); it must never crash or invent labels.
        assert np.all(labels < kb.model_.n_clusters)

    def test_wrong_feature_count_rejected(self, fitted):
        kb, x, _ = fitted
        with pytest.raises(ValidationError):
            kb.model_.predict(np.zeros((2, x.shape[1] + 1)))

    def test_nan_rejected(self, fitted):
        kb, x, _ = fitted
        bad = x[:2].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            kb.model_.predict(bad)

    def test_transform_shape(self, fitted):
        kb, x, _ = fitted
        projected = kb.model_.transform(x[:10])
        assert projected.shape == (10, kb.model_.n_projected_dims)


class TestModelFileRoundTrip:
    def test_save_load(self, fitted, tmp_path):
        kb, x, _ = fitted
        path = tmp_path / "model.json"
        kb.model_.save(path)
        again = KeyBin2Model.load(path)
        assert np.array_equal(again.predict(x), kb.model_.predict(x))

    def test_file_is_small(self, fitted, tmp_path):
        """A model file must stay in the KB range — broadcastable."""
        kb, x, _ = fitted
        path = tmp_path / "model.json"
        kb.model_.save(path)
        assert path.stat().st_size < 64 * 1024

    def test_save_is_atomic_no_temp_residue(self, fitted, tmp_path):
        """save() must leave exactly the target file, fully written."""
        kb, x, _ = fitted
        path = tmp_path / "model.json"
        kb.model_.save(path)
        kb.model_.save(path)  # overwrite goes through os.replace too
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]
        # The file is complete valid JSON (no torn write possible).
        import json

        json.loads(path.read_text())

    @pytest.mark.parametrize("score", [float("-inf"), float("inf"),
                                       float("nan")])
    def test_nonfinite_score_roundtrips_as_valid_json(self, fitted,
                                                      tmp_path, score):
        """A CH score is legitimately ±inf for degenerate partitions
        (single cluster, zero within-dispersion), so the model must
        still save — encoded as a string token, never as the bare
        ``Infinity``/``NaN`` literals JSON forbids."""
        import dataclasses
        import json
        import math

        model = dataclasses.replace(fitted[0].model_, score=score)
        path = tmp_path / "degenerate.json"
        model.save(path)
        # Strict JSON: parsing with constants forbidden must succeed.
        json.loads(path.read_text(),
                   parse_constant=lambda tok: pytest.fail(
                       f"bare {tok} token in model JSON"))
        back = KeyBin2Model.load(path)
        assert math.isnan(back.score) if math.isnan(score) \
            else back.score == score

    def test_save_rejects_inf_in_meta(self, fitted, tmp_path):
        kb, _, _ = fitted
        model = KeyBin2Model.from_dict(kb.model_.to_dict())
        model.meta["oops"] = float("inf")
        with pytest.raises(ValidationError):
            model.save(tmp_path / "bad.json")

    def test_failed_save_preserves_previous_file(self, fitted, tmp_path):
        """A hot-reloading server must never observe a clobbered model."""
        kb, x, _ = fitted
        path = tmp_path / "model.json"
        kb.model_.save(path)
        before = path.read_bytes()
        bad = KeyBin2Model.from_dict(kb.model_.to_dict())
        bad.meta["oops"] = float("inf")  # meta stays strictly finite
        with pytest.raises(ValidationError):
            bad.save(path)
        assert path.read_bytes() == before


class TestFingerprint:
    def test_stable_across_round_trip(self, fitted):
        kb, _, _ = fitted
        again = KeyBin2Model.from_dict(kb.model_.to_dict())
        assert again.fingerprint() == kb.model_.fingerprint()

    def test_ignores_meta(self, fitted):
        kb, _, _ = fitted
        tagged = KeyBin2Model.from_dict(kb.model_.to_dict())
        tagged.meta["note"] = "bookkeeping only"
        assert tagged.fingerprint() == kb.model_.fingerprint()

    def test_differs_for_different_models(self, fitted, small_gaussians):
        kb, x, _ = fitted
        other = KeyBin2(n_projections=4, seed=99).fit(x)
        assert other.model_.fingerprint() != kb.model_.fingerprint()
