"""Tests for the discrete-optimization cut finder."""

import numpy as np
import pytest

from repro.core.partitioning import CutDiagnostics, find_cuts
from repro.errors import ValidationError


def bimodal_counts(n_bins=64, gap_center=32, spread=4, mass=1000, rng=None):
    """Two clean modes separated at gap_center."""
    rng = rng or np.random.default_rng(0)
    left = rng.normal(gap_center - 16, spread, mass).astype(int)
    right = rng.normal(gap_center + 16, spread, mass).astype(int)
    counts = np.bincount(
        np.clip(np.concatenate([left, right]), 0, n_bins - 1), minlength=n_bins
    )
    return counts.astype(float)


class TestFindCuts:
    def test_bimodal_single_cut_near_gap(self):
        counts = bimodal_counts()
        cuts = find_cuts(counts, n_points=2000)
        assert cuts.size == 1
        assert abs(int(cuts[0]) - 32) <= 6

    def test_unimodal_no_cut(self, rng):
        counts = np.bincount(
            np.clip(rng.normal(32, 5, 2000).astype(int), 0, 63), minlength=64
        ).astype(float)
        cuts = find_cuts(counts, n_points=2000)
        assert cuts.size == 0

    def test_uniform_no_cut(self):
        counts = np.full(64, 50.0)
        cuts = find_cuts(counts, n_points=3200)
        assert cuts.size == 0

    def test_empty_histogram_no_cut(self):
        assert find_cuts(np.zeros(32), n_points=1).size == 0

    def test_three_modes_two_cuts(self, rng):
        parts = [rng.normal(c, 3, 800) for c in (16, 48, 80)]
        counts = np.bincount(
            np.clip(np.concatenate(parts).astype(int), 0, 95), minlength=96
        ).astype(float)
        cuts = find_cuts(counts, n_points=2400)
        assert cuts.size == 2

    def test_disjoint_support_always_cut(self):
        counts = np.zeros(64)
        counts[4:10] = 100.0
        counts[50:56] = 100.0
        cuts = find_cuts(counts, n_points=1200)
        assert cuts.size >= 1
        assert np.any((cuts > 9) & (cuts < 50))

    def test_prominence_filters_shallow_valley(self, rng):
        """A barely-dented unimodal histogram must not be cut at high
        min_prominence."""
        base = np.bincount(
            np.clip(rng.normal(32, 8, 5000).astype(int), 0, 63), minlength=64
        ).astype(float)
        base[32] *= 0.93  # a 7% dent
        strict = find_cuts(base, n_points=5000, min_prominence=0.5)
        assert strict.size == 0

    def test_lower_prominence_more_cuts(self, rng):
        counts = bimodal_counts(rng=rng) + bimodal_counts(
            gap_center=32, spread=8, rng=rng
        )
        loose = find_cuts(counts, n_points=4000, min_prominence=0.01)
        strict = find_cuts(counts, n_points=4000, min_prominence=0.9)
        assert loose.size >= strict.size

    def test_cuts_strictly_increasing_and_in_range(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            counts = np.abs(r.normal(0, 50, 64)) + r.integers(0, 100, 64)
            cuts = find_cuts(counts, n_points=int(counts.sum()))
            if cuts.size:
                assert np.all(np.diff(cuts) > 0)
                assert cuts.min() >= 0
                assert cuts.max() < 63

    def test_diagnostics_returned(self):
        counts = bimodal_counts()
        cuts, diag = find_cuts(counts, n_points=2000, return_diagnostics=True)
        assert isinstance(diag, CutDiagnostics)
        assert diag.smoothed.shape == counts.shape
        assert diag.slopes.shape == counts.shape

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            find_cuts(np.array([]), n_points=1)
        with pytest.raises(ValidationError):
            find_cuts(np.array([-1.0, 2.0]), n_points=1)
        with pytest.raises(ValidationError):
            find_cuts(np.ones(8), min_prominence=2.0)

    def test_explicit_window_respected(self):
        counts = bimodal_counts()
        wide = find_cuts(counts, window=31)
        # A window covering half the histogram erases both modes.
        assert wide.size <= 1

    def test_single_bin_histogram(self):
        assert find_cuts(np.array([5.0]), n_points=5).size == 0
