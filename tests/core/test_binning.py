"""Tests for SpaceRange and key formatting."""

import numpy as np
import pytest

from repro.core.binning import SpaceRange, format_key
from repro.errors import ValidationError


class TestSpaceRange:
    def test_from_data_covers_data(self, rng):
        x = rng.random((50, 3)) * 10 - 5
        sr = SpaceRange.from_data(x, margin=0.05)
        assert np.all(sr.contains(x))

    def test_margin_widens(self, rng):
        x = rng.random((50, 2))
        tight = SpaceRange.from_data(x, margin=0.0)
        wide = SpaceRange.from_data(x, margin=0.2)
        assert np.all(wide.r_min <= tight.r_min)
        assert np.all(wide.r_max >= tight.r_max)
        assert np.all(wide.span > tight.span)

    def test_degenerate_dimension_gets_width(self):
        x = np.array([[1.0, 5.0], [2.0, 5.0]])
        sr = SpaceRange.from_data(x)
        assert sr.span[1] > 0

    def test_merge_is_union(self):
        a = SpaceRange(np.array([0.0]), np.array([1.0]))
        b = SpaceRange(np.array([-1.0]), np.array([0.5]))
        merged = a.merge(b)
        assert merged.r_min[0] == -1.0
        assert merged.r_max[0] == 1.0

    def test_merge_commutative(self):
        a = SpaceRange(np.array([0.0, 2.0]), np.array([1.0, 3.0]))
        b = SpaceRange(np.array([-1.0, 2.5]), np.array([0.5, 4.0]))
        ab, ba = a.merge(b), b.merge(a)
        assert np.array_equal(ab.r_min, ba.r_min)
        assert np.array_equal(ab.r_max, ba.r_max)

    def test_merge_dim_mismatch(self):
        a = SpaceRange(np.zeros(2), np.ones(2))
        b = SpaceRange(np.zeros(3), np.ones(3))
        with pytest.raises(ValidationError):
            a.merge(b)

    def test_expand(self):
        sr = SpaceRange(np.array([0.0]), np.array([10.0]))
        wide = sr.expand(0.5)
        assert wide.r_min[0] == -5.0
        assert wide.r_max[0] == 15.0

    def test_array_round_trip(self):
        sr = SpaceRange(np.array([0.0, -2.0]), np.array([1.0, 7.0]))
        again = SpaceRange.from_array(sr.to_array())
        assert np.array_equal(sr.r_min, again.r_min)
        assert np.array_equal(sr.r_max, again.r_max)

    def test_invalid_bounds(self):
        with pytest.raises(ValidationError):
            SpaceRange(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValidationError):
            SpaceRange(np.array([np.nan]), np.array([1.0]))

    def test_contains_boundary(self):
        sr = SpaceRange(np.array([0.0]), np.array([1.0]))
        assert sr.contains(np.array([[0.0], [1.0]])).all()
        assert not sr.contains(np.array([[1.01]]))[0]

    def test_immutable(self):
        sr = SpaceRange(np.zeros(1), np.ones(1))
        with pytest.raises(Exception):
            sr.r_min = np.array([5.0])


class TestFormatKey:
    def test_paper_example(self):
        # Paper: bin 35 / 64 / 06 → key "356406" (2-digit labels: depth 7
        # would need 3 digits, so the example corresponds to ≤ 99 bins).
        key = format_key(np.array([35, 64, 6]), depth=6)
        # depth 6 → max label 63 → width 2; 64 overflows a real depth-6
        # space but formatting is positional, not validating.
        assert key == "356406"

    def test_depth6_two_digit(self):
        assert format_key(np.array([35, 6]), depth=6) == "3506"

    def test_single_dim(self):
        assert format_key(np.array([3]), depth=3) == "3"

    def test_zero_padding_width(self):
        # depth 4 → max label 15 → width 2
        assert format_key(np.array([1, 15]), depth=4) == "0115"
