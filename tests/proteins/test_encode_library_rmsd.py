"""Tests for encoding, the model library, and RMSD utilities."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.proteins.encode import N_CLASSES, encode_frames, one_hot_encode
from repro.proteins.model_library import (
    N_TRAJECTORIES,
    RESIDUES_RANGE,
    STEPS_RANGE,
    library_summary,
    model_library,
)
from repro.proteins.rmsd import (
    angular_rmsd,
    rmsd_time_series,
    select_representatives,
    temporal_smooth,
)
from repro.proteins.trajectory import TrajectorySimulator


class TestEncode:
    def test_shape(self, rng):
        angles = rng.uniform(-180, 180, (20, 8, 3))
        feats = encode_frames(angles)
        assert feats.shape == (20, 8)
        assert feats.dtype == np.float64

    def test_values_are_class_codes(self, rng):
        angles = rng.uniform(-180, 180, (10, 4, 3))
        feats = encode_frames(angles)
        assert feats.min() >= 0
        assert feats.max() < N_CLASSES

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ValidationError):
            encode_frames(rng.random((10, 8)))
        with pytest.raises(ValidationError):
            encode_frames(rng.random((10, 8, 2)))

    def test_one_hot_shape_and_sums(self, rng):
        codes = rng.integers(0, N_CLASSES, (15, 6)).astype(float)
        oh = one_hot_encode(codes)
        assert oh.shape == (15, 6 * N_CLASSES)
        assert np.all(oh.sum(axis=1) == 6)

    def test_one_hot_positions(self):
        codes = np.array([[2, 0]])
        oh = one_hot_encode(codes)
        assert oh[0, 2] == 1.0
        assert oh[0, N_CLASSES + 0] == 1.0

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValidationError):
            one_hot_encode(np.array([[99]]))


class TestModelLibrary:
    def test_31_trajectories(self):
        specs = model_library()
        assert len(specs) == N_TRAJECTORIES

    def test_extremes_pinned_to_table3(self):
        specs = model_library()
        residues = [s.n_residues for s in specs]
        frames = [s.n_frames for s in specs]
        assert min(residues) == RESIDUES_RANGE[0]
        assert max(residues) == RESIDUES_RANGE[1]
        assert min(frames) == STEPS_RANGE[0]
        assert max(frames) == STEPS_RANGE[1]

    def test_moments_near_table3(self):
        stats = library_summary(model_library())
        assert abs(stats["n_residues"]["mean"] - 193.06) < 30
        assert abs(stats["simulation_time_ps"]["mean"] - 9779.03) < 1000

    def test_first_is_1a70_with_10k_frames(self):
        specs = model_library()
        assert specs[0].name == "1a70"
        assert specs[0].n_frames == 10_000

    def test_scale_shrinks_frames(self):
        full = model_library()
        small = model_library(scale=0.1)
        assert small[5].n_frames < full[5].n_frames
        assert small[5].n_residues == full[5].n_residues

    def test_deterministic(self):
        a = model_library()
        b = model_library()
        assert a == b

    def test_spec_simulates(self):
        spec = model_library(scale=0.02)[3]
        traj = spec.simulate()
        assert traj.n_frames == spec.n_frames
        assert traj.n_residues == spec.n_residues
        assert traj.name == spec.name

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            model_library(scale=0.0)


class TestRMSD:
    def test_zero_for_identical(self, rng):
        frames = rng.uniform(-180, 180, (5, 12))
        assert angular_rmsd(frames, frames[2])[2] == pytest.approx(0.0)

    def test_wrapping(self):
        a = np.array([[179.0]])
        assert angular_rmsd(a, np.array([-179.0]))[0] == pytest.approx(2.0)

    def test_3d_frames_accepted(self, rng):
        angles = rng.uniform(-180, 180, (7, 4, 3))
        d = angular_rmsd(angles, angles[0])
        assert d.shape == (7,)
        assert d[0] == pytest.approx(0.0)

    def test_time_series_shape(self, rng):
        frames = rng.uniform(-180, 180, (20, 6))
        refs = frames[[3, 10]]
        ts = rmsd_time_series(frames, refs)
        assert ts.shape == (2, 20)
        assert ts[0, 3] == pytest.approx(0.0)
        assert ts[1, 10] == pytest.approx(0.0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            angular_rmsd(rng.random((5, 4)), rng.random(3))

    def test_temporal_smooth_reduces_noise(self, rng):
        base = np.zeros((200, 10))
        noisy = base + rng.normal(0, 10, (200, 10))
        smooth = temporal_smooth(noisy, 9)
        assert smooth.std() < noisy.std() / 2

    def test_select_representatives_distinct_phases(self):
        traj = TrajectorySimulator(32, 1500, n_phases=4, seed=5).simulate()
        reps = select_representatives(traj.angles, 8, seed=5)
        stable_reps = reps[~traj.in_transition[reps]]
        covered = set(traj.phase_ids[stable_reps].tolist())
        assert len(covered) >= 3  # nearly all phases get a representative

    def test_select_count_and_uniqueness(self, rng):
        frames = rng.uniform(-180, 180, (100, 8))
        reps = select_representatives(frames, 10, seed=0)
        assert reps.shape == (10,)
        assert np.unique(reps).size == 10

    def test_stochastic_mode(self, rng):
        frames = rng.uniform(-180, 180, (50, 4))
        reps = select_representatives(frames, 5, power=2.0, seed=1)
        assert np.unique(reps).size == 5

    def test_invalid_n(self, rng):
        with pytest.raises(ValidationError):
            select_representatives(rng.random((5, 2)), 6)
