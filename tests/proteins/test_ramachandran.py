"""Tests for the Ramachandran classifier."""

import numpy as np
import pytest

from repro.proteins.ramachandran import (
    REGIONS,
    SecondaryStructure,
    classify_torsions,
    region_center,
    wrap_angle,
)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(90.0) == 90.0
        assert wrap_angle(-90.0) == -90.0

    def test_wraps_over_180(self):
        assert wrap_angle(190.0) == pytest.approx(-170.0)
        assert wrap_angle(-190.0) == pytest.approx(170.0)

    def test_boundary(self):
        assert wrap_angle(180.0) == pytest.approx(180.0)

    def test_multiple_turns(self):
        assert wrap_angle(360.0 + 45.0) == pytest.approx(45.0)


class TestClassify:
    @pytest.mark.parametrize("cls", [
        SecondaryStructure.ALPHA_HELIX,
        SecondaryStructure.BETA_STRAND,
        SecondaryStructure.PII_HELIX,
        SecondaryStructure.GAMMA_PRIME_TURN,
        SecondaryStructure.GAMMA_TURN,
        SecondaryStructure.OTHER,
    ])
    def test_region_centers_classify_to_their_class(self, cls):
        phi, psi, omega = region_center(cls)
        got = classify_torsions(np.array(phi), np.array(psi), np.array(omega))
        assert got == int(cls)

    def test_cis_peptide_overrides(self):
        phi, psi, _ = region_center(SecondaryStructure.ALPHA_HELIX)
        got = classify_torsions(np.array(phi), np.array(psi), np.array(0.0))
        assert got == int(SecondaryStructure.CIS_PEPTIDE)

    def test_trans_omega_not_cis(self):
        got = classify_torsions(np.array(60.0), np.array(30.0), np.array(180.0))
        assert got == int(SecondaryStructure.OTHER)

    def test_vectorized_shapes(self, rng):
        phi = rng.uniform(-180, 180, (10, 5))
        psi = rng.uniform(-180, 180, (10, 5))
        omega = np.full((10, 5), 180.0)
        out = classify_torsions(phi, psi, omega)
        assert out.shape == (10, 5)
        assert out.dtype == np.int8

    def test_all_classes_reachable(self, rng):
        phi = rng.uniform(-180, 180, 50_000)
        psi = rng.uniform(-180, 180, 50_000)
        omega = rng.choice([0.0, 180.0], 50_000, p=[0.1, 0.9])
        out = classify_torsions(phi, psi, omega)
        assert set(np.unique(out)) == set(int(c) for c in SecondaryStructure)

    def test_noise_robustness_at_centers(self, rng):
        """±8° jitter around any region centre must keep the class almost
        always (the property the trajectory simulator relies on)."""
        for cls in (
            SecondaryStructure.ALPHA_HELIX,
            SecondaryStructure.BETA_STRAND,
            SecondaryStructure.GAMMA_TURN,
            SecondaryStructure.OTHER,
        ):
            phi, psi, omega = region_center(cls)
            n = 2000
            got = classify_torsions(
                phi + rng.normal(0, 8, n),
                psi + rng.normal(0, 8, n),
                omega + rng.normal(0, 8, n),
            )
            assert np.mean(got == int(cls)) > 0.9

    def test_regions_disjoint(self):
        """No (φ, ψ) cell may satisfy two region rectangles at once after
        the priority ordering — sample a fine grid and check stability."""
        phis = np.linspace(-179, 179, 180)
        psis = np.linspace(-179, 179, 180)
        grid_phi, grid_psi = np.meshgrid(phis, psis)
        out1 = classify_torsions(grid_phi, grid_psi, np.full_like(grid_phi, 180.0))
        out2 = classify_torsions(grid_phi, grid_psi, np.full_like(grid_phi, 180.0))
        assert np.array_equal(out1, out2)

    def test_wrapped_input_equivalent(self):
        a = classify_torsions(np.array(-65.0), np.array(-40.0), np.array(180.0))
        b = classify_torsions(np.array(-65.0 + 360), np.array(-40.0 - 360),
                              np.array(180.0 + 720))
        assert a == b
