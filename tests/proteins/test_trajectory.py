"""Tests for the synthetic trajectory simulator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import TrajectorySimulator


class TestSimulator:
    @pytest.fixture(scope="class")
    def traj(self):
        return TrajectorySimulator(
            n_residues=32, n_frames=1000, n_phases=3, seed=0
        ).simulate()

    def test_shapes(self, traj):
        assert traj.angles.shape == (1000, 32, 3)
        assert traj.phase_ids.shape == (1000,)
        assert traj.in_transition.shape == (1000,)
        assert traj.phase_targets.shape == (3, 32)

    def test_angles_wrapped(self, traj):
        assert traj.angles.min() > -180.0 - 1e-9
        assert traj.angles.max() <= 180.0 + 1e-9

    def test_all_phases_visited(self, traj):
        assert set(np.unique(traj.phase_ids)) == {0, 1, 2}

    def test_transition_fraction_close(self):
        traj = TrajectorySimulator(
            n_residues=16, n_frames=2000, n_phases=4,
            transition_fraction=0.2, seed=1,
        ).simulate()
        assert abs(traj.in_transition.mean() - 0.2) < 0.05

    def test_reproducible(self):
        a = TrajectorySimulator(16, 300, seed=9).simulate()
        b = TrajectorySimulator(16, 300, seed=9).simulate()
        assert np.array_equal(a.angles, b.angles)
        assert np.array_equal(a.phase_ids, b.phase_ids)

    def test_stable_frames_match_targets(self, traj):
        """Within a metastable dwell, the encoded secondary structure must
        agree with the phase's target for almost all residues."""
        codes = encode_frames(traj.angles).astype(int)
        stable = ~traj.in_transition
        for p in range(traj.n_phases):
            mask = stable & (traj.phase_ids == p)
            agreement = (codes[mask] == traj.phase_targets[p]).mean()
            assert agreement > 0.9

    def test_consecutive_phases_differ(self, traj):
        for p in range(1, traj.n_phases):
            frac_diff = (traj.phase_targets[p] != traj.phase_targets[p - 1]).mean()
            assert frac_diff > 0.1

    def test_transition_noise_larger(self, traj):
        """Frame-to-frame variation must be larger inside transitions."""
        diffs = np.abs(np.diff(traj.angles, axis=0)).mean(axis=(1, 2))
        trans = traj.in_transition[1:]
        if trans.any() and (~trans).any():
            assert diffs[trans].mean() > diffs[~trans].mean()

    def test_revisits_when_segments_exceed_phases(self):
        traj = TrajectorySimulator(
            n_residues=8, n_frames=1200, n_phases=2, n_segments=5, seed=3
        ).simulate()
        # Phase sequence must contain a revisit (some phase appears in
        # two non-adjacent dwells).
        stable_ids = traj.phase_ids[~traj.in_transition]
        changes = stable_ids[np.concatenate([[True], np.diff(stable_ids) != 0])]
        assert len(changes) >= 3

    def test_short_trajectory_ok(self):
        traj = TrajectorySimulator(n_residues=4, n_frames=50, n_phases=2,
                                   seed=0).simulate()
        assert traj.n_frames == 50

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            TrajectorySimulator(0, 100)
        with pytest.raises(ValidationError):
            TrajectorySimulator(10, 1)
        with pytest.raises(ValidationError):
            TrajectorySimulator(10, 100, transition_fraction=1.0)
        with pytest.raises(ValidationError):
            TrajectorySimulator(10, 100, residue_flip_fraction=1.5)
