"""Property-based tests (hypothesis) for core data structures and kernels."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.binning import SpaceRange
from repro.core.histogram import HistogramSet
from repro.core.partitioning import find_cuts
from repro.core.smoothing import local_slopes, moving_average
from repro.kernels.keys import bin_indices, pack_keys, prefix_bins, unpack_keys

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


finite_matrix = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 40), st.integers(1, 5)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestBinningProperties:
    @COMMON
    @given(finite_matrix, st.integers(1, 8))
    def test_bins_in_range(self, x, depth):
        sr = SpaceRange.from_data(x, margin=0.01)
        bins = bin_indices(x, sr.r_min, sr.r_max, depth)
        assert bins.min() >= 0
        assert bins.max() < (1 << depth)

    @COMMON
    @given(finite_matrix, st.integers(2, 8), st.integers(1, 7))
    def test_hierarchy_prefix_property(self, x, deep, shallow):
        if shallow >= deep:
            shallow = deep - 1
        sr = SpaceRange.from_data(x, margin=0.01)
        deep_bins = bin_indices(x, sr.r_min, sr.r_max, deep)
        assert np.array_equal(
            prefix_bins(deep_bins, deep, shallow),
            bin_indices(x, sr.r_min, sr.r_max, shallow),
        )

    @COMMON
    @given(finite_matrix)
    def test_order_preserved_per_dimension(self, x):
        """Binning is monotone: sorting by value sorts bin indices."""
        sr = SpaceRange.from_data(x, margin=0.01)
        bins = bin_indices(x, sr.r_min, sr.r_max, 6)
        for j in range(x.shape[1]):
            order = np.argsort(x[:, j], kind="stable")
            assert np.all(np.diff(bins[order, j]) >= 0)


class TestKeyPackingProperties:
    @COMMON
    @given(
        hnp.arrays(
            dtype=np.int32,
            shape=st.tuples(st.integers(1, 30), st.integers(1, 6)),
            elements=st.integers(0, 255),
        ),
        st.integers(1, 8),
    )
    def test_pack_unpack_roundtrip(self, bins, depth):
        bins = bins % (1 << depth)
        if depth * bins.shape[1] > 63:
            return
        keys = pack_keys(bins, depth)
        assert np.array_equal(unpack_keys(keys, depth, bins.shape[1]), bins)

    @COMMON
    @given(
        hnp.arrays(
            dtype=np.int32,
            shape=st.tuples(st.integers(2, 30), st.just(3)),
            elements=st.integers(0, 15),
        )
    )
    def test_pack_injective(self, bins):
        keys = pack_keys(bins, 4)
        uniq_rows = np.unique(bins, axis=0).shape[0]
        assert np.unique(keys).size == uniq_rows


class TestHistogramSetProperties:
    @COMMON
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 60), st.just(2)),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.integers(1, 5),
    )
    def test_any_split_merges_to_whole(self, x, split_at):
        sr = SpaceRange.from_data(x, margin=0.05)
        k = min(split_at, x.shape[0] - 1)
        a = HistogramSet.from_points(x[:k], sr, [3])
        b = HistogramSet.from_points(x[k:], sr, [3])
        whole = HistogramSet.from_points(x, sr, [3])
        assert (a + b) == whole

    @COMMON
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 50), st.just(3)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_buffer_roundtrip(self, x):
        sr = SpaceRange.from_data(x, margin=0.05)
        h = HistogramSet.from_points(x, sr, [2, 4])
        assert HistogramSet.from_buffer(h.to_buffer(), 3, [2, 4]) == h


class TestSmoothingProperties:
    @COMMON
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(3, 100),
            elements=st.floats(0, 1e4, allow_nan=False),
        ),
        st.integers(1, 15),
    )
    def test_moving_average_bounded_by_extremes(self, y, window):
        sm = moving_average(y, window)
        assert sm.min() >= y.min() - 1e-9
        assert sm.max() <= y.max() + 1e-9

    @COMMON
    @given(
        st.floats(-10, 10, allow_nan=False),
        st.floats(-5, 5, allow_nan=False),
        st.integers(3, 9),
    )
    def test_slopes_exact_on_lines(self, intercept, slope, window):
        y = intercept + slope * np.arange(40, dtype=float)
        slopes = local_slopes(y, window)
        h = max(1, window // 2)
        assert np.allclose(slopes[h:-h], slope, atol=1e-8)


class TestFindCutsProperties:
    @COMMON
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(4, 128),
            elements=st.floats(0, 1e5, allow_nan=False),
        )
    )
    def test_cuts_always_valid(self, counts):
        cuts = find_cuts(counts, n_points=max(int(counts.sum()), 1))
        if cuts.size:
            assert np.all(np.diff(cuts) > 0)
            assert cuts.min() >= 0
            assert cuts.max() < counts.size - 1

    @COMMON
    @given(st.integers(0, 2**32 - 1))
    def test_separated_blocks_get_cut(self, seed):
        rng = np.random.default_rng(seed)
        counts = np.zeros(64)
        a = rng.integers(2, 12)
        b = rng.integers(40, 56)
        counts[a : a + 6] = rng.integers(50, 200, 6)
        counts[b : b + 6] = rng.integers(50, 200, 6)
        cuts = find_cuts(counts, n_points=int(counts.sum()))
        assert any(a + 5 <= c < b for c in cuts)
