"""Property-based tests for metrics, union-find and ring collectives."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.pdsdbscan import DisjointSet
from repro.comm import ReduceOp, ring_allreduce, run_spmd
from repro.metrics.external import adjusted_rand_index, normalized_mutual_info
from repro.metrics.pairs import pair_confusion

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

label_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(2, 60), elements=st.integers(0, 5)
)


class TestPairMetricProperties:
    @COMMON
    @given(label_arrays)
    def test_self_comparison_perfect(self, y):
        s = pair_confusion(y, y)
        assert s.fp == 0 and s.fn == 0

    @COMMON
    @given(label_arrays, label_arrays)
    def test_counts_partition_pairs(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:n], y_pred[:n]
        s = pair_confusion(y_true, y_pred)
        assert s.tp + s.fp + s.fn + s.tn == n * (n - 1) // 2
        assert min(s.tp, s.fp, s.fn, s.tn) >= 0

    @COMMON
    @given(label_arrays, label_arrays, st.integers(1, 5))
    def test_pred_relabeling_invariant(self, y_true, y_pred, shift):
        n = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:n], y_pred[:n]
        a = pair_confusion(y_true, y_pred)
        b = pair_confusion(y_true, (y_pred + shift) % 7)
        assert (a.tp, a.fp, a.fn, a.tn) == (b.tp, b.fp, b.fn, b.tn)

    @COMMON
    @given(label_arrays, label_arrays)
    def test_metric_bounds(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:n], y_pred[:n]
        s = pair_confusion(y_true, y_pred)
        assert 0.0 <= s.precision <= 1.0
        assert 0.0 <= s.recall <= 1.0
        assert 0.0 <= s.f1 <= 1.0
        assert 0.0 <= normalized_mutual_info(y_true, y_pred) <= 1.0
        assert -1.0 <= adjusted_rand_index(y_true, y_pred) <= 1.0


class TestDisjointSetProperties:
    @COMMON
    @given(
        st.integers(2, 40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
    )
    def test_equivalence_closure(self, n, unions):
        ds = DisjointSet(n)
        edges = [(a % n, b % n) for a, b in unions]
        for a, b in edges:
            ds.union(a, b)
        # Reference: transitive closure via adjacency BFS.
        adj = {i: set() for i in range(n)}
        for a, b in edges:
            adj[a].add(b)
            adj[b].add(a)

        def component(start):
            seen = {start}
            stack = [start]
            while stack:
                cur = stack.pop()
                for nxt in adj[cur]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return frozenset(seen)

        roots = ds.roots()
        for i in range(n):
            for j in range(n):
                same_ref = j in component(i)
                assert (roots[i] == roots[j]) == same_ref


class TestRingProperties:
    @COMMON
    @given(
        st.integers(1, 6),
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 20),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
    )
    def test_ring_allreduce_equals_sum(self, size, base):
        def prog(comm):
            buf = base * (comm.rank + 1)
            return ring_allreduce(comm, buf)

        results = run_spmd(prog, size, executor="thread", timeout=30)
        expected = base * sum(range(1, size + 1))
        for r in results:
            assert np.allclose(r, expected)
