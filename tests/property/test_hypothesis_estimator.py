"""Property-based tests at the estimator level."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import KeyBin2
from repro.data.gaussians import gaussian_mixture

COMMON = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEstimatorInvariances:
    @COMMON
    @given(st.integers(0, 10_000), st.integers(2, 64))
    def test_row_permutation_equivariance(self, seed, perm_seed):
        """Shuffling the rows of X must shuffle the labels identically:
        nothing in KeyBin2 depends on data order (histograms commute)."""
        x, _ = gaussian_mixture(300, 8, n_clusters=3, seed=seed)
        kb = KeyBin2(seed=7, n_projections=2).fit(x)
        perm = np.random.default_rng(perm_seed).permutation(x.shape[0])
        kb2 = KeyBin2(seed=7, n_projections=2).fit(x[perm])
        assert np.array_equal(kb2.labels_, kb.labels_[perm])

    @COMMON
    @given(st.integers(0, 10_000))
    def test_labels_dense_and_bounded(self, seed):
        x, _ = gaussian_mixture(300, 6, n_clusters=3, seed=seed)
        kb = KeyBin2(seed=1, n_projections=2).fit(x)
        labels = kb.labels_
        assert labels.min() >= -1
        assert labels.max() < kb.n_clusters_
        # Every cluster id below n_clusters_ is actually used at fit time.
        used = np.unique(labels[labels >= 0])
        assert used.size == kb.n_clusters_

    @COMMON
    @given(st.integers(0, 10_000), st.floats(0.5, 100.0))
    def test_global_scaling_invariance_of_structure(self, seed, scale):
        """Uniformly scaling the data must not change the cluster count
        dramatically (binning is range-relative)."""
        x, _ = gaussian_mixture(400, 8, n_clusters=3, seed=seed)
        a = KeyBin2(seed=2, n_projections=2).fit(x)
        b = KeyBin2(seed=2, n_projections=2).fit(x * scale)
        assert np.array_equal(a.labels_, b.labels_)

    @COMMON
    @given(st.integers(0, 10_000))
    def test_translation_invariance(self, seed):
        """Adding a constant vector shifts the range with the data, so the
        clustering is unchanged."""
        x, _ = gaussian_mixture(400, 8, n_clusters=3, seed=seed)
        shift = np.random.default_rng(seed).normal(0, 50, 8)
        a = KeyBin2(seed=3, n_projections=2).fit(x)
        b = KeyBin2(seed=3, n_projections=2).fit(x + shift)
        assert a.n_clusters_ == b.n_clusters_

    @COMMON
    @given(st.integers(0, 10_000))
    def test_predict_is_pure(self, seed):
        """predict() must not mutate the model: repeated calls agree."""
        x, _ = gaussian_mixture(300, 6, n_clusters=3, seed=seed)
        kb = KeyBin2(seed=4, n_projections=2).fit(x)
        first = kb.predict(x)
        for _ in range(3):
            assert np.array_equal(kb.predict(x), first)
