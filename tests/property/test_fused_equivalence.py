"""Property-based equivalence: fused kernel path vs reference kernels.

The fused engine's contract is *bit-identity* with the reference chain
(``bin_indices`` → ``prefix_bins`` → ``accumulate_histogram`` → key
counting) for every backend, depth combination, and chunking — including
chunk sizes larger than the batch and empty batches.

Scope of the guarantee: bit-identity holds **given identical projected
coordinates**. The ``matrix=None`` (raw-features) cases below prove it
unconditionally — no GEMM runs, so every float entering the binning
recipe is shared with the reference path by construction. For projected
states, the batched GEMM may round a dot product 1 ulp differently than
the reference's per-state GEMM on some BLAS kernel shapes, which can
move a point across a bin boundary only if it lies within an ulp of one
— a measure-zero event for points in generic position, exercised here
with batches of ≥ 2 points (an M = 1 stream is the one *systematic*
knife edge: its range midpoint IS the point).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.streaming import StreamingKeyBin2
from repro.kernels.backend import available_backends
from repro.kernels.fused import project_bin_count
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, prefix_bins
from repro.kernels.project import project_points

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = [name for name, ok in available_backends().items() if ok]


def _reference_state(x, matrix, r_min, r_max, depths):
    projected = x if matrix is None else project_points(x, matrix)
    deepest = max(depths)
    deep = bin_indices(projected, r_min, r_max, deepest)
    hist = {}
    for d in depths:
        b = deep if d == deepest else prefix_bins(deep, deepest, d)
        out = np.zeros((projected.shape[1], 1 << d), dtype=np.int64)
        accumulate_histogram(b, 1 << d, out=out)
        hist[d] = out
    rows, counts = np.unique(deep.astype(np.uint8), axis=0, return_counts=True)
    return hist, rows, counts.astype(np.int64)


def _assert_matches_reference(res, x, matrix, r_min, r_max, depths, width):
    m = x.shape[0]
    if m == 0:
        assert res.key_rows.shape[0] == 0
        assert all(res.hist[d].sum() == 0 for d in depths)
        return
    hist, rows, counts = _reference_state(x, matrix, r_min, r_max, depths)
    for d in depths:
        assert np.array_equal(res.hist[d], hist[d])
    assert np.array_equal(res.key_rows, rows)
    assert np.array_equal(res.key_counts, counts)
    # Histogram mass equals points in every depth (conservation).
    for d in depths:
        assert res.hist[d].sum() == m * width


@st.composite
def raw_cases(draw):
    """Cases binning raw features: no GEMM, unconditional bit-identity."""
    m = draw(st.integers(0, 120))  # includes empty and single-point batches
    width = draw(st.integers(1, 10))  # > 8 exercises the wide-key fallback
    depths = tuple(
        sorted(draw(st.sets(st.integers(1, 8), min_size=1, max_size=3)))
    )
    chunk = draw(st.sampled_from([1, 7, 64, 1000, None]))
    seed = draw(st.integers(0, 2**31 - 1))
    return m, width, depths, chunk, seed


@st.composite
def projected_cases(draw):
    """Cases running the batched GEMM, with points in generic position."""
    m = draw(st.integers(2, 120))
    n_features = draw(st.integers(1, 12))
    n_dims = draw(st.integers(1, 10))
    depths = tuple(
        sorted(draw(st.sets(st.integers(1, 8), min_size=1, max_size=3)))
    )
    chunk = draw(st.sampled_from([1, 7, 64, 1000, None]))
    seed = draw(st.integers(0, 2**31 - 1))
    return m, n_features, n_dims, depths, chunk, seed


class TestProjectBinCountEquivalence:
    @COMMON
    @given(raw_cases(), st.sampled_from(BACKENDS))
    def test_raw_features_bit_identical(self, case, backend):
        m, width, depths, chunk, seed = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, width)) * rng.uniform(0.5, 100)
        if m:
            r_min = x.min(axis=0) - 0.1
            r_max = x.max(axis=0) + 0.1
        else:
            r_min = np.full(width, -1.0)
            r_max = np.full(width, 1.0)
        res = project_bin_count(
            x, None, r_min, r_max, depths, backend=backend, chunk_size=chunk
        )
        _assert_matches_reference(res, x, None, r_min, r_max, depths, width)

    @COMMON
    @given(projected_cases(), st.sampled_from(BACKENDS))
    def test_projected_matches_reference(self, case, backend):
        m, n_features, n_dims, depths, chunk, seed = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n_features)) * rng.uniform(0.5, 100)
        matrix = rng.standard_normal((n_features, n_dims))
        projected = x @ matrix
        r_min = projected.min(axis=0) - 0.1
        r_max = projected.max(axis=0) + 0.1
        res = project_bin_count(
            x, matrix, r_min, r_max, depths, backend=backend, chunk_size=chunk
        )
        _assert_matches_reference(res, x, matrix, r_min, r_max, depths, n_dims)


class TestStreamingEquivalence:
    @COMMON
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 3),
        st.sampled_from([2, 13, 500]),
        st.sampled_from(BACKENDS),
    )
    def test_partial_fit_stream_matches_reference(
        self, seed, n_batches, batch_size, backend
    ):
        rng = np.random.default_rng(seed)
        kw = dict(
            n_projections=3, candidate_depths=(3, 5), seed=seed % 1000
        )
        ref = StreamingKeyBin2(fused=False, **kw)
        fus = StreamingKeyBin2(fused=True, backend=backend, **kw)
        for _ in range(n_batches):
            x = rng.standard_normal((batch_size, 8)) * 3
            ref.partial_fit(x)
            fus.partial_fit(x)
        assert ref.n_seen_ == fus.n_seen_
        for sr, sf in zip(ref._states, fus._states):
            for d in sr.depths:
                assert np.array_equal(sr.hist[d], sf.hist[d])
                assert np.array_equal(sr.hist_delta[d], sf.hist_delta[d])
            kr, cr = sr.keys.to_arrays()
            kf, cf = sf.keys.to_arrays()
            assert np.array_equal(kr, kf)
            assert np.array_equal(cr, cf)

    @COMMON
    @given(st.integers(0, 2**31 - 1), st.sampled_from(BACKENDS))
    def test_single_point_stream_matches_reference(self, seed, backend):
        # M = 1 streams take the unconditional (projection-free) guarantee:
        # with a projection, a single point's derived range centers on the
        # point itself — a systematic bin-boundary knife edge where GEMM
        # ulp differences are visible (see module docstring).
        rng = np.random.default_rng(seed)
        kw = dict(
            n_projections=2, candidate_depths=(2, 4), projection="none",
            seed=seed % 1000,
        )
        ref = StreamingKeyBin2(fused=False, **kw)
        fus = StreamingKeyBin2(fused=True, backend=backend, **kw)
        for _ in range(4):
            x = rng.standard_normal((1, 5))
            ref.partial_fit(x)
            fus.partial_fit(x)
        for sr, sf in zip(ref._states, fus._states):
            for d in sr.depths:
                assert np.array_equal(sr.hist[d], sf.hist[d])
            kr, cr = sr.keys.to_arrays()
            kf, cf = sf.keys.to_arrays()
            assert np.array_equal(kr, kf) and np.array_equal(cr, cf)

    @COMMON
    @given(st.integers(0, 2**31 - 1), st.sampled_from(BACKENDS))
    def test_refresh_after_fused_stream_matches_reference(self, seed, backend):
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((3, 6)) * 6
        x = np.repeat(centers, 60, axis=0) + 0.1 * rng.standard_normal((180, 6))
        kw = dict(n_projections=2, candidate_depths=(3, 4), seed=7)
        ref = StreamingKeyBin2(fused=False, **kw).partial_fit(x)
        fus = StreamingKeyBin2(fused=True, backend=backend, **kw).partial_fit(x)
        ref.refresh()
        fus.refresh()
        assert np.array_equal(ref.predict(x), fus.predict(x))
