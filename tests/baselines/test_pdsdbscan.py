"""Tests for PDSDBSCAN and the disjoint set."""

import numpy as np
import pytest

from repro.baselines.dbscan import DBSCAN
from repro.baselines.pdsdbscan import DisjointSet, PDSDBSCAN
from repro.data.gaussians import gaussian_mixture
from repro.errors import ValidationError
from repro.metrics.external import adjusted_rand_index


class TestDisjointSet:
    def test_initially_singletons(self):
        ds = DisjointSet(5)
        assert len({ds.find(i) for i in range(5)}) == 5

    def test_union_merges(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        ds.union(2, 3)
        assert ds.find(0) == ds.find(1)
        assert ds.find(2) == ds.find(3)
        assert ds.find(0) != ds.find(2)

    def test_union_idempotent(self):
        ds = DisjointSet(3)
        r1 = ds.union(0, 1)
        r2 = ds.union(0, 1)
        assert r1 == r2

    def test_transitive_closure(self):
        ds = DisjointSet(6)
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(4, 5)
        assert ds.find(0) == ds.find(2)
        assert ds.find(3) != ds.find(0)

    def test_roots_vector(self):
        ds = DisjointSet(4)
        ds.union(0, 3)
        roots = ds.roots()
        assert roots[0] == roots[3]
        assert len(np.unique(roots)) == 3

    def test_chain_path_compression(self):
        n = 100
        ds = DisjointSet(n)
        for i in range(n - 1):
            ds.union(i, i + 1)
        assert len(np.unique(ds.roots())) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            DisjointSet(-1)


class TestPDSDBSCAN:
    @pytest.fixture(scope="class")
    def blobs(self):
        return gaussian_mixture(
            n_points=900, n_dims=2, n_clusters=3, seed=13, separation=10.0
        )

    def test_matches_serial_dbscan(self, blobs):
        x, y = blobs
        serial = DBSCAN(eps=0.8, min_points=5).fit(x)
        shards = [x[i::3] for i in range(3)]
        parallel = PDSDBSCAN(eps=0.8, min_points=5).fit(shards)
        ys = np.concatenate([y[i::3] for i in range(3)])
        ari_serial = adjusted_rand_index(y, serial.labels_)
        ari_parallel = adjusted_rand_index(ys, parallel.concatenated_labels())
        assert ari_serial > 0.95
        assert ari_parallel > 0.9

    def test_cross_shard_cluster_merged(self):
        """A cluster split across shards must get one global label."""
        rng = np.random.default_rng(0)
        blob = rng.normal(0, 0.3, (300, 2))
        shards = [blob[:150], blob[150:]]
        p = PDSDBSCAN(eps=0.5, min_points=5).fit(shards)
        labels = p.concatenated_labels()
        assert p.n_clusters_ == 1
        assert np.all(labels == labels[0])

    def test_labels_consistent_across_ranks(self, blobs):
        x, y = blobs
        shards = [x[i::3] for i in range(3)]
        p = PDSDBSCAN(eps=0.8, min_points=5).fit(shards)
        # Points of the same true cluster on different shards share labels.
        ys = [y[i::3] for i in range(3)]
        for true_c in range(3):
            labels_for_c = set()
            for shard_labels, shard_y in zip(p.labels_, ys):
                mask = shard_y == true_c
                got = shard_labels[mask]
                labels_for_c.update(got[got >= 0].tolist())
            assert len(labels_for_c) == 1

    def test_noise_stays_noise(self, rng):
        blob = rng.normal(0, 0.2, (200, 2))
        outlier = np.array([[99.0, 99.0]])
        shards = [blob, outlier]
        p = PDSDBSCAN(eps=0.5, min_points=5).fit(shards)
        assert p.labels_[1][0] == -1

    def test_single_shard(self, blobs):
        x, y = blobs
        p = PDSDBSCAN(eps=0.8, min_points=5).fit([x])
        assert adjusted_rand_index(y, p.labels_[0]) > 0.95

    def test_invalid_eps(self):
        with pytest.raises(ValidationError):
            PDSDBSCAN(eps=0.0)
