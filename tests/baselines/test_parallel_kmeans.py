"""Tests for distributed k-means."""

import numpy as np
import pytest

from repro.baselines.kmeans import KMeans
from repro.baselines.parallel_kmeans import ParallelKMeans, parallel_kmeans_spmd
from repro.comm.serial import SerialComm
from repro.data.gaussians import gaussian_mixture
from repro.errors import ValidationError
from repro.metrics.external import adjusted_rand_index


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(n_points=1600, n_dims=8, n_clusters=4, seed=21)


class TestParallelKMeans:
    def test_accuracy_on_shards(self, data):
        """A single kmeans++-seeded run can land in a local optimum (it is
        one init, seeded from rank 0's shard only), but the best of a few
        seeds must nail the separated mixture."""
        x, y = data
        shards = [x[i::4] for i in range(4)]
        ys = np.concatenate([y[i::4] for i in range(4)])
        best = max(
            adjusted_rand_index(
                ys,
                ParallelKMeans(4, seed=s, init="kmeans++")
                .fit(shards)
                .concatenated_labels(),
            )
            for s in range(3)
        )
        assert best > 0.95

    def test_single_rank_equals_sequential_kmeans(self, data):
        """With one rank and identical seeding, parallel k-means IS
        sequential k-means."""
        x, y = data
        comm = SerialComm()
        labels, centers, inertia, n_iter = parallel_kmeans_spmd(
            comm, x, 4, seed=7, init="kmeans++"
        )
        km = KMeans(4, n_init=1, seed=7).fit(x)
        assert adjusted_rand_index(km.labels_, labels) > 0.99

    def test_sharding_invariance(self, data):
        """The converged inertia must not depend on how data is sharded
        (same global data, same seeding rank 0 holds the same prefix)."""
        x, _ = data
        shards_a = [x[:400], x[400:800], x[800:]]
        shards_b = [x[:400], x[400:1200], x[1200:]]
        a = ParallelKMeans(4, seed=0, init="first").fit(shards_a)
        b = ParallelKMeans(4, seed=0, init="first").fit(shards_b)
        assert a.inertia_ == pytest.approx(b.inertia_, rel=1e-6)

    def test_first_init_weaker_or_equal(self, data):
        """Liao-style first-k seeding must never beat k-means++ on average
        (the degradation the paper's tables show)."""
        x, y = data
        shards = [x[i::2] for i in range(2)]
        ys = np.concatenate([y[i::2] for i in range(2)])
        ari_first = []
        ari_pp = []
        for s in range(5):
            xf, yf = gaussian_mixture(
                n_points=800, n_dims=16, n_clusters=4, separation=3.0, seed=s
            )
            sh = [xf[::2], xf[1::2]]
            yy = np.concatenate([yf[::2], yf[1::2]])
            ari_first.append(adjusted_rand_index(
                yy, ParallelKMeans(4, seed=s, init="first").fit(sh).concatenated_labels()
            ))
            ari_pp.append(adjusted_rand_index(
                yy, ParallelKMeans(4, seed=s, init="kmeans++").fit(sh).concatenated_labels()
            ))
        assert np.mean(ari_first) <= np.mean(ari_pp) + 0.05

    def test_traffic_scales_with_dims(self):
        """Per-iteration communication is O(k·N) — the scaling weakness
        vs KeyBin2."""
        traffics = {}
        for d in (8, 64):
            x, _ = gaussian_mixture(n_points=400, n_dims=d, n_clusters=2, seed=0)
            shards = [x[::2], x[1::2]]
            pk = ParallelKMeans(2, seed=0, max_iter=5, tol=0.0).fit(shards)
            traffics[d] = pk.traffic_[1]["bytes_sent"]
        assert traffics[64] > traffics[8] * 4

    def test_process_executor(self, data):
        x, y = data
        shards = [x[::2], x[1::2]]
        pk = ParallelKMeans(4, seed=0, executor="process").fit(shards)
        assert pk.cluster_centers_.shape == (4, 8)

    def test_invalid_init(self):
        comm = SerialComm()
        with pytest.raises(ValidationError):
            parallel_kmeans_spmd(comm, np.zeros((10, 2)), 2, init="random")

    def test_too_few_seed_points(self):
        comm = SerialComm()
        with pytest.raises(ValidationError):
            parallel_kmeans_spmd(comm, np.zeros((2, 2)), 5)

    def test_empty_shards_rejected(self):
        with pytest.raises(ValidationError):
            ParallelKMeans(2).fit([])
