"""Tests for k-means++."""

import numpy as np
import pytest

from repro.baselines.kmeans import KMeans, kmeans_plus_plus_init, lloyd_iteration
from repro.errors import NotFittedError, ValidationError
from repro.metrics.external import adjusted_rand_index


class TestInit:
    def test_k_centers_selected(self, rng):
        x = rng.random((50, 3))
        centers = kmeans_plus_plus_init(x, 5, rng)
        assert centers.shape == (5, 3)

    def test_centers_are_data_points(self, rng):
        x = rng.random((30, 2))
        centers = kmeans_plus_plus_init(x, 3, rng)
        for c in centers:
            assert np.any(np.all(np.isclose(x, c), axis=1))

    def test_spread_seeding_prefers_far_points(self, rng):
        """With two tight far-apart blobs, the 2 seeds must land one per
        blob essentially always."""
        a = rng.normal(0, 0.01, (100, 2))
        b = rng.normal(100, 0.01, (100, 2))
        x = np.concatenate([a, b])
        hits = 0
        for s in range(20):
            r = np.random.default_rng(s)
            centers = kmeans_plus_plus_init(x, 2, r)
            sides = centers[:, 0] > 50
            hits += sides[0] != sides[1]
        assert hits >= 19

    def test_k_exceeds_points(self, rng):
        with pytest.raises(ValidationError):
            kmeans_plus_plus_init(rng.random((3, 2)), 4, rng)

    def test_duplicate_points_handled(self, rng):
        x = np.ones((10, 2))
        centers = kmeans_plus_plus_init(x, 3, rng)
        assert centers.shape == (3, 2)


class TestLloydIteration:
    def test_sums_and_counts(self):
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        centers = np.array([[0.5], [10.5]])
        labels, sums, counts, inertia = lloyd_iteration(x, centers)
        assert labels.tolist() == [0, 0, 1, 1]
        assert sums.ravel().tolist() == [1.0, 21.0]
        assert counts.tolist() == [2, 2]
        assert inertia == pytest.approx(4 * 0.25)

    def test_inertia_decreases_over_iterations(self, rng):
        x = rng.random((200, 3))
        centers = x[:4].copy()
        prev = np.inf
        for _ in range(5):
            labels, sums, counts, inertia = lloyd_iteration(x, centers)
            assert inertia <= prev + 1e-9
            prev = inertia
            nz = counts > 0
            centers[nz] = sums[nz] / counts[nz, None]


class TestKMeans:
    def test_recovers_separated_clusters(self, tiny_gaussians):
        x, y = tiny_gaussians
        km = KMeans(3, seed=0).fit(x)
        assert adjusted_rand_index(y, km.labels_) > 0.95

    def test_inertia_positive_and_finite(self, tiny_gaussians):
        x, _ = tiny_gaussians
        km = KMeans(3, seed=0).fit(x)
        assert np.isfinite(km.inertia_) and km.inertia_ > 0

    def test_more_inits_never_worse(self, rng):
        x = rng.random((300, 4))
        one = KMeans(5, n_init=1, seed=42).fit(x)
        many = KMeans(5, n_init=8, seed=42).fit(x)
        assert many.inertia_ <= one.inertia_ + 1e-9

    def test_predict_consistent(self, tiny_gaussians):
        x, _ = tiny_gaussians
        km = KMeans(3, seed=1).fit(x)
        assert np.array_equal(km.predict(x), km.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_k_one(self, rng):
        x = rng.random((50, 2))
        km = KMeans(1, seed=0).fit(x)
        assert np.all(km.labels_ == 0)
        assert np.allclose(km.cluster_centers_[0], x.mean(axis=0))

    def test_k_equals_n_points(self):
        x = np.arange(6, dtype=float).reshape(3, 2) * 10
        km = KMeans(3, seed=0).fit(x)
        assert np.unique(km.labels_).size == 3
        assert km.inertia_ == pytest.approx(0.0, abs=1e-9)

    def test_reproducible(self, tiny_gaussians):
        x, _ = tiny_gaussians
        a = KMeans(3, seed=9).fit(x).labels_
        b = KMeans(3, seed=9).fit(x).labels_
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, n_init=0)

    def test_nan_rejected(self):
        x = np.ones((10, 2))
        x[0, 0] = np.nan
        with pytest.raises(ValidationError):
            KMeans(2).fit(x)
