"""Tests for X-means (BIC-driven k selection)."""

import numpy as np
import pytest

from repro.baselines.xmeans import XMeans, bic_score
from repro.data.gaussians import gaussian_mixture
from repro.errors import ValidationError
from repro.metrics.external import adjusted_rand_index


class TestBicScore:
    def test_true_k_beats_k1_on_separated_blobs(self, tiny_gaussians):
        from repro.baselines.kmeans import KMeans

        x, _ = tiny_gaussians
        km1 = KMeans(1, seed=0).fit(x)
        km3 = KMeans(3, seed=0).fit(x)
        b1 = bic_score(x, km1.labels_, km1.cluster_centers_)
        b3 = bic_score(x, km3.labels_, km3.cluster_centers_)
        assert b3 > b1

    def test_overfit_penalized(self, rng):
        """On a single blob, k = 4 must not beat k = 1."""
        from repro.baselines.kmeans import KMeans

        x = rng.normal(0, 1, (400, 3))
        km1 = KMeans(1, seed=0).fit(x)
        km4 = KMeans(4, seed=0).fit(x)
        b1 = bic_score(x, km1.labels_, km1.cluster_centers_)
        b4 = bic_score(x, km4.labels_, km4.cluster_centers_)
        assert b1 > b4

    def test_degenerate_m_le_k(self):
        x = np.zeros((2, 2))
        assert bic_score(x, np.array([0, 1]), np.zeros((2, 2))) == -np.inf


class TestXMeans:
    def test_finds_true_k(self, small_gaussians):
        x, y = small_gaussians
        xm = XMeans(k_min=1, k_max=16, seed=0).fit(x)
        assert 3 <= xm.n_clusters_ <= 6
        assert adjusted_rand_index(y, xm.labels_) > 0.9

    def test_single_blob_stays_one(self, rng):
        x = rng.normal(0, 1, (500, 4))
        xm = XMeans(k_min=1, k_max=8, seed=0).fit(x)
        assert xm.n_clusters_ <= 2

    def test_k_max_respected(self, small_gaussians):
        x, _ = small_gaussians
        xm = XMeans(k_min=1, k_max=2, seed=0).fit(x)
        assert xm.n_clusters_ <= 2

    def test_k_min_respected(self, small_gaussians):
        x, _ = small_gaussians
        xm = XMeans(k_min=3, k_max=16, seed=0).fit(x)
        assert xm.n_clusters_ >= 3

    def test_fit_predict(self, tiny_gaussians):
        x, _ = tiny_gaussians
        xm = XMeans(seed=0)
        labels = xm.fit_predict(x)
        assert labels.shape == (x.shape[0],)

    def test_invalid_range(self):
        with pytest.raises(ValidationError):
            XMeans(k_min=5, k_max=3)
        with pytest.raises(ValidationError):
            XMeans(k_min=0)
