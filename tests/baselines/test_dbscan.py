"""Tests for grid-indexed DBSCAN."""

import numpy as np
import pytest

from repro.baselines.dbscan import DBSCAN, NOISE, GridIndex
from repro.data.shapes import moons, ring_clusters
from repro.errors import ValidationError
from repro.metrics.external import adjusted_rand_index


class TestGridIndex:
    def test_neighbors_include_self(self, rng):
        x = rng.random((50, 2))
        idx = GridIndex(x, eps=0.2)
        for i in (0, 10, 49):
            assert i in idx.neighbors(i)

    def test_neighbors_match_brute_force(self, rng):
        x = rng.random((100, 2))
        eps = 0.15
        idx = GridIndex(x, eps)
        for i in range(0, 100, 17):
            fast = set(idx.neighbors(i).tolist())
            d2 = np.sum((x - x[i]) ** 2, axis=1)
            brute = set(np.flatnonzero(d2 <= eps * eps).tolist())
            assert fast == brute

    def test_high_dim_falls_back_to_brute(self, rng):
        x = rng.random((20, 12))
        idx = GridIndex(x, eps=0.5)
        assert idx.brute
        got = set(idx.neighbors(0).tolist())
        d2 = np.sum((x - x[0]) ** 2, axis=1)
        assert got == set(np.flatnonzero(d2 <= 0.25).tolist())

    def test_invalid_eps(self, rng):
        with pytest.raises(ValidationError):
            GridIndex(rng.random((5, 2)), eps=0.0)


class TestDBSCAN:
    def test_gaussian_blobs(self, tiny_gaussians):
        x, y = tiny_gaussians
        db = DBSCAN(eps=0.9, min_points=5).fit(x)
        assert db.n_clusters_ == 3
        assert adjusted_rand_index(y, db.labels_) > 0.9

    def test_nonconvex_moons(self):
        x, y = moons(1200, seed=0)
        db = DBSCAN(eps=0.12, min_points=5).fit(x)
        assert db.n_clusters_ == 2
        assert adjusted_rand_index(y, db.labels_) > 0.95

    def test_nonconvex_rings(self):
        x, y = ring_clusters(1200, seed=0)
        db = DBSCAN(eps=1.2, min_points=5).fit(x)
        assert adjusted_rand_index(y, db.labels_) > 0.95

    def test_outliers_marked_noise(self, rng):
        blob = rng.normal(0, 0.3, (200, 2))
        outliers = np.array([[50.0, 50.0], [-60.0, 40.0]])
        x = np.concatenate([blob, outliers])
        db = DBSCAN(eps=0.5, min_points=5).fit(x)
        assert db.labels_[-1] == NOISE
        assert db.labels_[-2] == NOISE

    def test_all_noise_when_sparse(self, rng):
        x = rng.random((50, 2)) * 1000
        db = DBSCAN(eps=0.1, min_points=3).fit(x)
        assert db.n_clusters_ == 0
        assert np.all(db.labels_ == NOISE)

    def test_single_dense_cluster(self, rng):
        x = rng.normal(0, 0.1, (100, 2))
        db = DBSCAN(eps=0.5, min_points=5).fit(x)
        assert db.n_clusters_ == 1
        assert np.all(db.labels_ == 0)

    def test_core_mask(self, rng):
        x = rng.normal(0, 0.1, (100, 2))
        db = DBSCAN(eps=0.5, min_points=5).fit(x)
        assert db.core_sample_mask_.all()

    def test_labels_deterministic(self, tiny_gaussians):
        x, _ = tiny_gaussians
        a = DBSCAN(eps=0.9, min_points=5).fit(x).labels_
        b = DBSCAN(eps=0.9, min_points=5).fit(x).labels_
        assert np.array_equal(a, b)

    def test_max_points_guard(self, rng):
        db = DBSCAN(eps=0.5, min_points=3, max_points=10)
        with pytest.raises(ValidationError, match="refusing"):
            db.fit(rng.random((11, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            DBSCAN(eps=-1.0)
        with pytest.raises(ValidationError):
            DBSCAN(eps=1.0, min_points=0)

    def test_border_points_adopted(self):
        """A point within eps of a core point but itself non-core joins the
        cluster instead of being noise."""
        core_blob = np.zeros((10, 2))
        border = np.array([[0.9, 0.0]])
        x = np.concatenate([core_blob, border])
        db = DBSCAN(eps=1.0, min_points=5).fit(x)
        assert db.labels_[-1] == db.labels_[0]
