"""Tests for point-space CH and run statistics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.metrics.dispersion import calinski_harabasz_points
from repro.metrics.stats import RunAggregate, mean_ci


class TestPointCH:
    def test_separated_beats_random(self, rng):
        a = rng.normal(-10, 1, (200, 2))
        b = rng.normal(10, 1, (200, 2))
        x = np.concatenate([a, b])
        good = np.repeat([0, 1], 200)
        bad = rng.integers(0, 2, 400)
        assert calinski_harabasz_points(x, good) > calinski_harabasz_points(x, bad)

    def test_single_cluster_minus_inf(self, rng):
        x = rng.random((50, 2))
        assert calinski_harabasz_points(x, np.zeros(50)) == float("-inf")

    def test_noise_excluded(self, rng):
        x = rng.random((50, 2))
        labels = np.repeat([0, 1], 25)
        with_noise = labels.copy()
        with_noise[0] = -1
        v1 = calinski_harabasz_points(x, labels)
        v2 = calinski_harabasz_points(x, with_noise)
        assert np.isfinite(v2)
        assert v1 != v2  # the excluded point changes the statistic

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValidationError):
            calinski_harabasz_points(rng.random((5, 2)), np.zeros(4))


class TestMeanCI:
    def test_known_values(self):
        mean, half = mean_ci([1.0, 2.0, 3.0], confidence=0.95)
        assert mean == pytest.approx(2.0)
        # t(0.975, df=2) = 4.3027; sem = 1/sqrt(3)
        assert half == pytest.approx(4.3027 / np.sqrt(3), rel=1e-3)

    def test_single_value_zero_halfwidth(self):
        mean, half = mean_ci([5.0])
        assert mean == 5.0 and half == 0.0

    def test_constant_sample_zero_halfwidth(self):
        mean, half = mean_ci([2.0, 2.0, 2.0])
        assert half == 0.0

    def test_wider_confidence_wider_interval(self):
        _, h95 = mean_ci([1.0, 2.0, 3.0, 4.0], 0.95)
        _, h99 = mean_ci([1.0, 2.0, 3.0, 4.0], 0.99)
        assert h99 > h95

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_ci([])

    def test_invalid_confidence(self):
        with pytest.raises(ValidationError):
            mean_ci([1.0], confidence=1.0)


class TestRunAggregate:
    def test_accumulates(self):
        agg = RunAggregate()
        agg.add(f1=0.9, time=1.0)
        agg.add(f1=0.8, time=2.0)
        assert agg.n_runs("f1") == 2
        mean, _ = agg.ci("f1")
        assert mean == pytest.approx(0.85)

    def test_formatted(self):
        agg = RunAggregate()
        agg.add(x=1.0)
        agg.add(x=1.0)
        assert agg.formatted("x") == "1.000 ± 0.000"

    def test_unknown_metric(self):
        with pytest.raises(ValidationError):
            RunAggregate().ci("nope")

    def test_names_sorted(self):
        agg = RunAggregate()
        agg.add(z=1, a=2)
        assert agg.names() == ["a", "z"]

    def test_summary(self):
        agg = RunAggregate()
        agg.add(a=1.0)
        assert set(agg.summary()) == {"a"}
