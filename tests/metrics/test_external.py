"""Tests for purity, NMI, ARI."""

import numpy as np
import pytest

from repro.metrics.external import (
    adjusted_rand_index,
    normalized_mutual_info,
    purity,
)


class TestPurity:
    def test_perfect(self):
        y = np.array([0, 0, 1, 1])
        assert purity(y, y) == 1.0

    def test_permutation_invariant(self):
        y = np.array([0, 0, 1, 1])
        assert purity(y, 1 - y) == 1.0

    def test_single_cluster_prediction(self):
        y_true = np.array([0, 0, 0, 1])
        assert purity(y_true, np.zeros(4, dtype=int)) == 0.75

    def test_monotone_in_errors(self, rng):
        y = rng.integers(0, 3, 120)
        perfect = purity(y, y)
        noisy = y.copy()
        noisy[:30] = (noisy[:30] + 1) % 3
        assert purity(y, noisy) < perfect


class TestNMI:
    def test_perfect_is_one(self, rng):
        y = rng.integers(0, 4, 100)
        assert normalized_mutual_info(y, y) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        y_true = rng.integers(0, 2, 5000)
        y_pred = rng.integers(0, 2, 5000)
        assert normalized_mutual_info(y_true, y_pred) < 0.05

    def test_symmetric(self, rng):
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 4, 100)
        assert normalized_mutual_info(a, b) == pytest.approx(
            normalized_mutual_info(b, a)
        )

    def test_bounded(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            a = r.integers(0, 5, 60)
            b = r.integers(-1, 5, 60)
            v = normalized_mutual_info(a, b)
            assert 0.0 <= v <= 1.0

    def test_refinement_high(self):
        """Splitting each true cluster in two keeps NMI well above chance."""
        y_true = np.repeat([0, 1], 100)
        y_pred = np.concatenate(
            [np.repeat(0, 50), np.repeat(1, 50), np.repeat(2, 50), np.repeat(3, 50)]
        )
        assert normalized_mutual_info(y_true, y_pred) > 0.5


class TestARI:
    def test_perfect_is_one(self, rng):
        y = rng.integers(0, 4, 100)
        assert adjusted_rand_index(y, y) == pytest.approx(1.0)

    def test_random_near_zero(self, rng):
        y_true = rng.integers(0, 3, 3000)
        y_pred = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(y_true, y_pred)) < 0.05

    def test_single_cluster_trivial(self):
        y_true = np.repeat([0, 1], 50)
        y_pred = np.zeros(100, dtype=int)
        assert adjusted_rand_index(y_true, y_pred) == pytest.approx(0.0, abs=1e-9)

    def test_permutation_invariant(self, rng):
        y_true = rng.integers(0, 3, 90)
        y_pred = rng.integers(0, 3, 90)
        assert adjusted_rand_index(y_true, y_pred) == pytest.approx(
            adjusted_rand_index(y_true, (y_pred + 1) % 3)
        )
