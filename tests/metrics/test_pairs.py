"""Tests for pair-counting precision/recall/F1."""

import itertools

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.metrics.pairs import PairScores, pair_confusion, pair_precision_recall_f1


def brute_force_pairs(y_true, y_pred):
    """O(M²) reference implementation."""
    tp = fp = fn = tn = 0
    m = len(y_true)
    for i, j in itertools.combinations(range(m), 2):
        same_t = y_true[i] == y_true[j]
        same_p = y_pred[i] == y_pred[j]
        if same_p and same_t:
            tp += 1
        elif same_p and not same_t:
            fp += 1
        elif not same_p and same_t:
            fn += 1
        else:
            tn += 1
    return tp, fp, fn, tn


class TestPairConfusion:
    def test_perfect_clustering(self):
        y = np.array([0, 0, 1, 1, 2])
        s = pair_confusion(y, y)
        assert s.fp == 0 and s.fn == 0
        assert s.precision == 1.0 and s.recall == 1.0 and s.f1 == 1.0

    def test_matches_brute_force(self, rng):
        y_true = rng.integers(0, 4, 60)
        y_pred = rng.integers(0, 5, 60)
        s = pair_confusion(y_true, y_pred)
        tp, fp, fn, tn = brute_force_pairs(y_true, y_pred)
        assert (s.tp, s.fp, s.fn, s.tn) == (tp, fp, fn, tn)

    def test_label_permutation_invariant(self, rng):
        y_true = rng.integers(0, 3, 80)
        y_pred = rng.integers(0, 3, 80)
        permuted = (y_pred + 1) % 3
        a = pair_confusion(y_true, y_pred)
        b = pair_confusion(y_true, permuted)
        assert (a.tp, a.fp, a.fn, a.tn) == (b.tp, b.fp, b.fn, b.tn)

    def test_everything_one_cluster(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.zeros(4, dtype=int)
        s = pair_confusion(y_true, y_pred)
        assert s.recall == 1.0  # no same-cluster pair missed
        assert s.precision == pytest.approx(2 / 6)

    def test_all_singletons_prediction(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.arange(4)
        s = pair_confusion(y_true, y_pred)
        assert s.tp == 0
        assert s.precision == 1.0  # vacuous: no positive pairs claimed
        assert s.recall == 0.0

    def test_noise_treated_as_singletons(self):
        y_true = np.array([0, 0, 0, 1, 1])
        y_pred = np.array([0, 0, -1, 1, 1])
        s = pair_confusion(y_true, y_pred)
        brute = brute_force_pairs(y_true, np.array([0, 0, 99, 1, 1]))
        assert (s.tp, s.fp, s.fn, s.tn) == brute

    def test_multiple_noise_points_distinct(self):
        """Two −1 points must NOT count as a same-cluster pair."""
        y_true = np.array([0, 0])
        y_pred = np.array([-1, -1])
        s = pair_confusion(y_true, y_pred)
        assert s.tp == 0 and s.fn == 1

    def test_totals_sum_to_all_pairs(self, rng):
        y_true = rng.integers(0, 3, 50)
        y_pred = rng.integers(-1, 3, 50)
        s = pair_confusion(y_true, y_pred)
        assert s.tp + s.fp + s.fn + s.tn == 50 * 49 // 2

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            pair_confusion(np.zeros(3), np.zeros(4))

    def test_negative_truth_rejected(self):
        with pytest.raises(ValidationError):
            pair_confusion(np.array([-1, 0]), np.array([0, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            pair_confusion(np.array([]), np.array([]))


class TestScores:
    def test_f1_harmonic_mean(self):
        s = PairScores(tp=30, fp=10, fn=30, tn=30)
        p, r = 30 / 40, 30 / 60
        assert s.f1 == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_no_tp(self):
        s = PairScores(tp=0, fp=0, fn=10, tn=0)
        assert s.f1 == 0.0

    def test_rand_index(self):
        s = PairScores(tp=2, fp=1, fn=1, tn=6)
        assert s.rand_index == pytest.approx(0.8)

    def test_convenience_tuple(self, rng):
        y_true = rng.integers(0, 3, 40)
        y_pred = rng.integers(0, 3, 40)
        p, r, f = pair_precision_recall_f1(y_true, y_pred)
        s = pair_confusion(y_true, y_pred)
        assert (p, r, f) == (s.precision, s.recall, s.f1)
