"""Straggler tolerance: slow ≠ dead.

The invariant: a rank that is merely *slow* — below the hard failure
deadline — must never be declared failed, so a straggler run ends
bit-identical to a fault-free one (zero recoveries, zero frames lost).
A rank that is genuinely dead must still be detected at the hard
deadline, pings or no pings.

The unit tests drive :class:`MailboxComm` directly to pin the mechanism:
a suspicion timeout turns a stalled receive into PING probes; a PONG from
the awaited peer (possible only while that peer is itself blocked in a
receive) extends the hard deadline, which is exactly what stops *cascade*
false positives — B waiting on a live A that is itself stuck behind a
slow C.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.comm.faults import FaultPlan, SlowRank
from repro.comm.mailbox import MailboxComm
from repro.errors import CommError, RankFailedError
from tests.faults.test_chaos_recovery import _run, _split, _trajs


def _mailbox_pair(n, timeout, suspicion):
    inboxes = [queue.SimpleQueue() for _ in range(n)]
    return [
        MailboxComm(r, n, inboxes, timeout=timeout,
                    suspicion_timeout=suspicion)
        for r in range(n)
    ]


class TestSuspicionMechanism:
    def test_bad_suspicion_timeout_rejected(self):
        with pytest.raises(CommError):
            MailboxComm(0, 1, [queue.SimpleQueue()], suspicion_timeout=0.0)

    def test_slow_sender_below_hard_deadline_is_waited_out(self):
        """Message arriving after the suspicion deadline but before the
        hard one is received normally, and the episode is counted."""
        comms = _mailbox_pair(2, timeout=5.0, suspicion=0.05)
        out = {}

        def slow_sender():
            time.sleep(0.3)
            comms[1].send("late", dest=0, tag=7)

        t = threading.Thread(target=slow_sender)
        t.start()
        out["msg"] = comms[0].recv(source=1, tag=7)
        t.join()
        assert out["msg"] == "late"
        assert comms[0].straggler_waits >= 1
        assert comms[0].straggler_wait_s > 0.0

    def test_dead_peer_still_fails_at_hard_deadline(self):
        """A peer that never sends and never answers pings is declared
        failed (unconfirmed) at the hard deadline — suspicion must not
        weaken dead-rank detection."""
        comms = _mailbox_pair(2, timeout=0.4, suspicion=0.05)
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as info:
            comms[0].recv(source=1, tag=7)
        elapsed = time.monotonic() - t0
        assert info.value.confirmed is False
        assert info.value.rank == 1
        # No pongs -> no extensions: failure lands near the hard deadline.
        assert elapsed < 2.0

    def test_pong_from_blocked_peer_prevents_cascade_false_positive(self):
        """rank0 waits on rank1 (hard deadline 0.5 s); rank1 is alive but
        blocked waiting on rank2, which wakes only after 1.2 s. Without
        PING/PONG rank0 would evict the perfectly healthy rank1; with it,
        rank1 answers probes from inside its own receive and rank0's hard
        deadline keeps extending until the chain resolves."""
        inboxes = [queue.SimpleQueue() for _ in range(3)]
        c0 = MailboxComm(0, 3, inboxes, timeout=0.5, suspicion_timeout=0.1)
        c1 = MailboxComm(1, 3, inboxes, timeout=5.0, suspicion_timeout=0.1)
        c2 = MailboxComm(2, 3, inboxes, timeout=5.0)
        out = {}
        errors = []

        def rank1():
            try:
                got = c1.recv(source=2, tag=1)  # blocked -> answers pings
                c1.send(got + 1, dest=0, tag=2)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def rank2():
            time.sleep(1.2)  # well past rank0's unextended hard deadline
            c2.send(10, dest=1, tag=1)

        threads = [threading.Thread(target=rank1),
                   threading.Thread(target=rank2)]
        for t in threads:
            t.start()
        out["v"] = c0.recv(source=1, tag=2)
        for t in threads:
            t.join()
        assert not errors
        assert out["v"] == 11
        assert c0.straggler_waits >= 1

    def test_shrink_preserves_suspicion_and_straggler_accounting(self):
        comms = _mailbox_pair(3, timeout=5.0, suspicion=0.25)
        comms[0]._straggler["waits"] = 2
        child = comms[0].shrink([0, 2])
        assert child._suspicion_timeout == 0.25
        assert child.straggler_waits == 2  # shared, cumulative
        child._straggler["waits"] += 1
        assert comms[0].straggler_waits == 3


class TestStragglerExactness:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_slow_rank_below_hard_deadline_never_evicted(self, executor):
        """`slow:1:0.2` with a hard deadline of 10 s: the run must finish
        with zero recoveries and labels bit-identical to fault-free."""
        trajs = _trajs(3)
        plan = FaultPlan([SlowRank(1, seconds=0.2)])
        results = _run(trajs, recover=True, faults=plan, timeout=10.0,
                       suspicion_timeout=0.05, executor=executor)
        survivors, failed = _split(results)
        assert not failed
        reference = _run(trajs, timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 0
            assert res.frames_lost == 0
            assert res.n_clusters == ref.n_clusters
            np.testing.assert_array_equal(res.labels, ref.labels)

    def test_suspicion_disabled_matches_prior_behavior(self):
        """Default (no suspicion) is the exact PR-4 protocol: fault-free
        runs are unchanged by the feature existing."""
        trajs = _trajs(2)
        plain = _run(trajs, timeout=30.0)
        probed = _run(trajs, timeout=30.0, suspicion_timeout=0.5)
        for a, b in zip(plain, probed):
            np.testing.assert_array_equal(a.labels, b.labels)
