"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.comm import run_spmd
from repro.comm.faults import (
    DelayMessage,
    DropMessage,
    FaultInjector,
    FaultPlan,
    KillRank,
    SlowRank,
    maybe_inject,
)
from repro.errors import InjectedFault, ValidationError


class TestFaultPlanParse:
    def test_kill(self):
        plan = FaultPlan.parse("kill:1@2")
        assert plan.faults == [KillRank(1, 2)]
        assert plan.killed_ranks() == [1]

    def test_drop(self):
        plan = FaultPlan.parse("drop:0>2@3")
        assert plan.faults == [DropMessage(0, 2, 3)]

    def test_delay(self):
        plan = FaultPlan.parse("delay:2>0@1:0.5")
        assert plan.faults == [DelayMessage(2, 0, 1, 0.5)]

    def test_slow(self):
        plan = FaultPlan.parse("slow:1:0.01")
        assert plan.faults == [SlowRank(1, 0.01)]

    def test_combined_with_whitespace(self):
        plan = FaultPlan.parse(" kill:1@2 , slow:0:0.005 ")
        assert plan.killed_ranks() == [1]
        assert SlowRank(0, 0.005) in plan.faults

    @pytest.mark.parametrize("bad", [
        "kill:1", "drop:0>2", "explode:3@1", "kill:x@2", "delay:1>2@0:abc",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            FaultPlan.parse(bad)

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").faults == []


class TestFaultValidation:
    def test_kill_mode_checked(self):
        with pytest.raises(ValidationError):
            KillRank(0, 0, mode="vaporize")

    def test_nth_is_one_based(self):
        with pytest.raises(ValidationError):
            DropMessage(0, 1, nth=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            DelayMessage(0, 1, 1, seconds=-1.0)

    def test_jitter_range(self):
        with pytest.raises(ValidationError):
            FaultPlan([], jitter=1.5)

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(["kill rank 3"])


class TestFaultInjector:
    def test_drop_fires_on_exact_message(self):
        inj = FaultInjector(FaultPlan([DropMessage(0, 1, nth=2)]), rank=0)
        assert inj.on_send(1, tag=0) is True       # 1st message delivered
        assert inj.on_send(1, tag=0) is False      # 2nd dropped
        assert inj.on_send(1, tag=0) is True       # 3rd delivered
        assert inj.dropped == [(1, 2)]

    def test_counters_are_per_destination(self):
        inj = FaultInjector(FaultPlan([DropMessage(0, 2, nth=1)]), rank=0)
        assert inj.on_send(1, tag=0) is True       # dest 1 unaffected
        assert inj.on_send(2, tag=0) is False
        assert inj.dropped == [(2, 1)]

    def test_delay_recorded(self):
        inj = FaultInjector(
            FaultPlan([DelayMessage(0, 1, nth=1, seconds=0.0)]), rank=0
        )
        assert inj.on_send(1, tag=0) is True
        assert inj.delayed == [(1, 1)]

    def test_kill_fires_at_exact_event(self):
        inj = FaultInjector(FaultPlan([KillRank(3, at=1)]), rank=3)
        inj.on_event("consolidation")              # round 0: survives
        with pytest.raises(InjectedFault, match="round 1"):
            inj.on_event("consolidation")

    def test_kill_only_matches_named_event(self):
        inj = FaultInjector(FaultPlan([KillRank(0, at=0, event="refresh")]),
                            rank=0)
        inj.on_event("consolidation")              # different event: no fire
        with pytest.raises(InjectedFault):
            inj.on_event("refresh")

    def test_other_ranks_unaffected(self):
        inj = FaultInjector(FaultPlan([KillRank(1, at=0)]), rank=0)
        inj.on_event("consolidation")              # rank 0 survives rank-1 kill


class TestMaybeInject:
    def test_noop_without_injector(self):
        class Bare:
            pass

        maybe_inject(Bare())                       # must not raise

    def test_serial_executor_installs_injector(self):
        def prog(comm):
            maybe_inject(comm)
            return "survived"

        with pytest.raises(InjectedFault):
            run_spmd(prog, 1, executor="serial", faults="kill:0@0")

    def test_spec_string_accepted_by_run_spmd(self):
        def prog(comm):
            maybe_inject(comm)
            return comm.rank

        out = run_spmd(prog, 2, executor="thread", timeout=20,
                       faults="kill:5@0")          # kills a rank that isn't there
        assert out == [0, 1]
