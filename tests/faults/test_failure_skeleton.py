"""Failure-skeleton semantics the recovery layer is built on.

Pins the promises the executors and the mailbox make when a rank dies:
every survivor observes the death (no hang), timeouts convert to
:class:`~repro.errors.RankFailedError`, the caller gets the *first*
failing rank's traceback chained from the original exception, and a rank
SIGKILLed mid-collective still tears the run down promptly.
"""

import os
import signal
import time

import pytest

from repro.comm import run_spmd
from repro.errors import RankFailedError


def _raise_on_rank0(comm):
    if comm.rank == 0:
        raise ValueError("rank 0 exploded")
    # Peers block on a message rank 0 will never send; only the failure
    # sentinel fan-out can release them before the (long) recv timeout.
    try:
        comm.recv(0, tag=5)
    except RankFailedError as exc:
        return ("failed-peer", exc.rank, exc.confirmed)
    return "unreachable"


def _timeout_prog(comm):
    if comm.rank == 1:
        return "idle"          # never sends, but stays alive
    try:
        comm.recv(1, tag=9)
    except RankFailedError as exc:
        return ("timeout", exc.rank, exc.confirmed)
    return "unreachable"


def _divzero_on_rank2(comm):
    if comm.rank == 2:
        return 1 // 0
    return comm.allreduce(1.0)


def _sigkill_rank1(comm):
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return comm.allreduce(1.0)


class TestFailureFanOut:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_every_survivor_sees_the_death(self, executor):
        """Peers blocked with a 60 s recv timeout wake within seconds."""
        t0 = time.monotonic()
        results = run_spmd(_raise_on_rank0, 4, executor=executor, timeout=60,
                           return_exceptions=True)
        elapsed = time.monotonic() - t0
        assert elapsed < 30, f"fan-out took {elapsed:.1f}s — peers hung"
        assert isinstance(results[0], BaseException)
        for rank in (1, 2, 3):
            kind, failed_rank, confirmed = results[rank]
            assert kind == "failed-peer"
            assert failed_rank == 0
            assert confirmed is True

    def test_recv_timeout_becomes_rank_failed_error(self):
        results = run_spmd(_timeout_prog, 2, executor="thread", timeout=0.5)
        kind, rank, confirmed = results[0]
        assert kind == "timeout"
        assert rank == 1
        assert confirmed is False   # inferred from silence, not a sentinel


class TestFirstFailureTraceback:
    def test_thread_chains_original_exception(self):
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(_divzero_on_rank2, 4, executor="thread", timeout=20)
        exc = excinfo.value
        assert exc.rank == 2
        assert isinstance(exc.__cause__, ZeroDivisionError)
        assert "ZeroDivisionError" in str(exc)       # traceback text included

    def test_process_reports_first_failing_rank(self):
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(_divzero_on_rank2, 4, executor="process", timeout=60)
        exc = excinfo.value
        assert exc.rank == 2
        assert "ZeroDivisionError" in str(exc)

    def test_return_exceptions_keeps_survivor_results(self):
        results = run_spmd(_divzero_on_rank2, 3, executor="thread", timeout=20,
                           return_exceptions=True)
        assert isinstance(results[2], ZeroDivisionError)
        # Survivors still failed (the collective lost a participant) but
        # their exceptions land in their slots instead of aborting the call.
        for rank in (0, 1):
            assert isinstance(results[rank], RankFailedError)


class TestSigkillTeardown:
    def test_sigkilled_rank_mid_collective_tears_down(self):
        """A SIGKILL leaves no sentinel; the parent must fan out on the
        dead rank's behalf so survivors abort long before their timeout."""
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(_sigkill_rank1, 3, executor="process", timeout=60)
        elapsed = time.monotonic() - t0
        assert elapsed < 30, f"teardown took {elapsed:.1f}s"
        assert excinfo.value.rank == 1
        assert "exited with code" in str(excinfo.value)

    def test_sigkill_with_return_exceptions(self):
        results = run_spmd(_sigkill_rank1, 3, executor="process", timeout=60,
                           return_exceptions=True)
        assert isinstance(results[1], RankFailedError)
        for rank in (0, 2):
            assert isinstance(results[rank], RankFailedError)
