"""Chaos tests: rank-failure recovery must be *exact*, not approximate.

The invariant under test: after any planned kill, the survivors' final
model state equals — label for label — the state of a fault-free
distributed run over only the surviving ranks' trajectories. Mass neither
leaks nor duplicates: the lost rank's already-merged frames vanish with
the discarded global view, and the recovery counters account for exactly
the frames the plan implies.
"""

import numpy as np
import pytest

from repro.comm.faults import DropMessage, FaultPlan, KillRank, SlowRank
from repro.errors import RankFailedError
from repro.insitu.distributed import run_distributed_insitu
from repro.proteins.trajectory import TrajectorySimulator

N_RESIDUES = 24
N_FRAMES = 160
CHUNK = 40            # 4 chunks per rank
EVERY = 2             # -> consolidations after chunks 2 and 4
KEYBIN = {"feature_range": (0.0, 6.0), "candidate_depths": (5, 6)}


def _trajs(n, n_frames=N_FRAMES, base_seed=50):
    proto = TrajectorySimulator(N_RESIDUES, n_frames, 4, seed=base_seed)
    targets = proto.simulate().phase_targets
    return [
        TrajectorySimulator(
            N_RESIDUES, n_frames, 4, phase_targets=targets, seed=base_seed + 1 + i
        ).simulate(name=f"traj{i}")
        for i in range(n)
    ]


def _run(trajs, **kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("consolidate_every", EVERY)
    kw.setdefault("seed", 0)
    return run_distributed_insitu(trajs, **kw, **KEYBIN)


def _split(results):
    survivors = {i: r for i, r in enumerate(results)
                 if not isinstance(r, BaseException)}
    failed = {i: r for i, r in enumerate(results)
              if isinstance(r, BaseException)}
    return survivors, failed


class TestKillRecoveryExactness:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_survivor_state_equals_pooled_survivor_run(self, victim, executor):
        """Kill each rank in turn at the 2nd consolidation; survivors must
        match a fault-free run over only their trajectories, exactly."""
        trajs = _trajs(3)
        plan = FaultPlan([KillRank(victim, at=1)])
        results = _run(trajs, recover=True, faults=plan, timeout=15.0,
                       executor=executor)
        survivors, failed = _split(results)
        assert set(failed) == {victim}
        assert set(survivors) == {0, 1, 2} - {victim}

        reference = _run([t for i, t in enumerate(trajs) if i != victim],
                         timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 1
            assert res.lost_ranks == (victim,)
            # The victim merged exactly one round before dying: CHUNK*EVERY.
            assert res.frames_lost == CHUNK * EVERY
            assert res.n_clusters == ref.n_clusters
            np.testing.assert_array_equal(res.labels, ref.labels)

    def test_kill_before_first_merge_loses_nothing(self):
        """A rank killed before any consolidation never merged mass, so
        the survivors lose zero frames."""
        trajs = _trajs(3)
        results = _run(trajs, recover=True, faults=FaultPlan([KillRank(2, at=0)]),
                       timeout=15.0)
        survivors, failed = _split(results)
        assert set(failed) == {2}
        reference = _run(trajs[:2], timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 1
            assert res.frames_lost == 0
            np.testing.assert_array_equal(res.labels, ref.labels)

    @pytest.mark.parametrize("every", [1, 2])
    def test_exactness_is_cadence_invariant(self, every):
        trajs = _trajs(3)
        results = _run(trajs, consolidate_every=every, recover=True,
                       faults=FaultPlan([KillRank(1, at=1)]), timeout=15.0)
        survivors, failed = _split(results)
        assert set(failed) == {1}
        reference = _run([trajs[0], trajs[2]], consolidate_every=every,
                         timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.frames_lost == CHUNK * every
            np.testing.assert_array_equal(res.labels, ref.labels)

    def test_silent_death_recovers_via_timeout_path(self):
        """mode='exit' leaves no sentinel: survivors must converge through
        the unconfirmed-suspect path (process executor only)."""
        trajs = _trajs(3)
        plan = FaultPlan([KillRank(2, at=1, mode="exit")])
        results = _run(trajs, recover=True, faults=plan, timeout=6.0,
                       executor="process")
        survivors, failed = _split(results)
        assert set(failed) == {2}
        reference = _run(trajs[:2], timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 1
            assert res.frames_lost == CHUNK * EVERY
            np.testing.assert_array_equal(res.labels, ref.labels)


class TestMultiKill:
    def test_cascaded_kills_counted_exactly(self):
        """Two kills at different rounds: recoveries and frames_lost must
        match the plan exactly, and the final state the two survivors."""
        trajs = _trajs(4, n_frames=240)          # 6 chunks -> 3 consolidations
        plan = FaultPlan([KillRank(1, at=1), KillRank(2, at=2)])
        results = _run(trajs, recover=True, faults=plan, timeout=15.0)
        survivors, failed = _split(results)
        assert set(failed) == {1, 2}
        reference = _run([trajs[0], trajs[3]], timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 2
            assert res.lost_ranks == (1, 2)
            # rank 1 died holding 1 merged round (80 frames), rank 2 holding
            # 2 merged rounds (160 frames).
            assert res.frames_lost == 80 + 160
            np.testing.assert_array_equal(res.labels, ref.labels)


class TestNonFatalFaults:
    def test_dropped_message_recovers_with_zero_loss(self):
        """A dropped consolidation message looks like a dead peer, but the
        agreement round discovers everyone alive: the run completes with a
        full survivor set and exactly the fault-free result."""
        trajs = _trajs(3)
        # 2nd message rank 1 sends rank 0: its hist-delta contribution to
        # the first consolidation (the 1st was the chunk-count allreduce).
        plan = FaultPlan([DropMessage(1, 0, nth=2)])
        results = _run(trajs, recover=True, faults=plan, timeout=2.0)
        survivors, failed = _split(results)
        assert not failed
        reference = _run(trajs, timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 1
            assert res.frames_lost == 0
            assert res.lost_ranks == ()
            np.testing.assert_array_equal(res.labels, ref.labels)

    def test_slow_rank_triggers_no_recovery(self):
        trajs = _trajs(3)
        plan = FaultPlan([SlowRank(1, seconds=0.002)])
        results = _run(trajs, recover=True, faults=plan, timeout=30.0)
        survivors, failed = _split(results)
        assert not failed
        reference = _run(trajs, timeout=30.0)
        for ref, (rank, res) in zip(reference, sorted(survivors.items())):
            assert res.recoveries == 0
            assert res.frames_lost == 0
            np.testing.assert_array_equal(res.labels, ref.labels)


class TestFailFast:
    def test_without_recover_every_rank_fails_fast(self):
        """recover=False keeps the old contract: the whole run aborts with
        RankFailedError, promptly, on every executor."""
        trajs = _trajs(3)
        plan = FaultPlan([KillRank(1, at=1)])
        with pytest.raises(RankFailedError) as excinfo:
            _run(trajs, recover=False, faults=plan, timeout=15.0)
        assert excinfo.value.rank == 1
        assert "InjectedFault" in str(excinfo.value)

    def test_recovery_budget_exhaustion_fails(self):
        """max_recoveries=0 turns the first failure into an abort even with
        recover=True — survivors re-raise instead of shrinking."""
        trajs = _trajs(3)
        plan = FaultPlan([KillRank(1, at=1)])
        results = _run(trajs, recover=True, max_recoveries=0, faults=plan,
                       timeout=15.0)
        survivors, failed = _split(results)
        assert not survivors
        assert set(failed) == {0, 1, 2}
