"""Tests for the end-to-end in-situ pipeline."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.insitu.pipeline import InSituPipeline
from repro.proteins.trajectory import TrajectorySimulator


@pytest.fixture(scope="module")
def traj():
    return TrajectorySimulator(
        n_residues=48, n_frames=1500, n_phases=4, seed=2
    ).simulate()


@pytest.fixture(scope="module")
def result(traj):
    return InSituPipeline(seed=2).run(traj)


class TestPipeline:
    def test_labels_cover_all_frames(self, traj, result):
        assert result.labels.shape == (traj.n_frames,)
        # The final assignment must label nearly every frame (clipping and
        # tiny evictions may leave a few −1).
        assert np.mean(result.labels >= 0) > 0.95

    def test_online_clusters_track_phases(self, result):
        assert result.phase_nmi is not None
        assert result.phase_nmi > 0.4

    def test_offline_segments_found(self, result, traj):
        assert len(result.segments) >= traj.n_phases - 1
        assert result.segment_nmi is None or result.segment_nmi > 0.4

    def test_segments_disjoint_and_ordered(self, result):
        segs = result.segments
        for a, b in zip(segs, segs[1:]):
            assert a.stop <= b.start

    def test_fingerprints_per_frame(self, traj, result):
        assert len(result.fingerprints) == traj.n_frames

    def test_timings_recorded(self, result):
        assert set(result.timings) == {"encode", "cluster", "fingerprint",
                                       "validate"}
        assert all(v >= 0 for v in result.timings.values())

    def test_clustering_time_linear_scale(self):
        """The in-situ clustering cost per frame must stay roughly flat as
        the trajectory grows (the Figure-3 property)."""
        import time

        times = {}
        for n_frames in (400, 1600):
            traj = TrajectorySimulator(32, n_frames, n_phases=3, seed=7).simulate()
            pipe = InSituPipeline(seed=7)
            res = pipe.run(traj)
            times[n_frames] = res.timings["cluster"] / n_frames
        assert times[1600] < times[400] * 5

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            InSituPipeline(chunk_size=0)
        with pytest.raises(ValidationError):
            InSituPipeline(refresh_every=0)

    def test_deterministic(self, traj):
        a = InSituPipeline(seed=3).run(traj)
        b = InSituPipeline(seed=3).run(traj)
        assert np.array_equal(a.labels, b.labels)
        assert [(s.start, s.stop, s.label) for s in a.segments] == [
            (s.start, s.stop, s.label) for s in b.segments
        ]
