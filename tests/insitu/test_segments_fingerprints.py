"""Tests for segment extraction and cluster fingerprints."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.insitu.fingerprint import (
    fingerprint_change_points,
    fingerprint_similarity,
    window_fingerprints,
)
from repro.insitu.segments import Segment, extract_segments, segment_frame_labels


class TestExtractSegments:
    def test_single_clean_run(self):
        stable = np.ones(100, dtype=bool)
        labels = np.zeros(100, dtype=int)
        segs = extract_segments(stable, labels, min_length=10)
        assert len(segs) == 1
        assert (segs[0].start, segs[0].stop, segs[0].label) == (0, 100, 0)

    def test_two_runs_split_by_label_change(self):
        stable = np.ones(100, dtype=bool)
        labels = np.concatenate([np.zeros(50, int), np.ones(50, int)])
        segs = extract_segments(stable, labels, min_length=10)
        assert [(s.start, s.stop, s.label) for s in segs] == [
            (0, 50, 0), (50, 100, 1)
        ]

    def test_short_run_dropped(self):
        stable = np.ones(30, dtype=bool)
        labels = np.zeros(30, int)
        labels[10:15] = 1  # 5-frame flicker
        segs = extract_segments(stable, labels, min_length=8)
        assert all(s.label == 0 for s in segs)

    def test_bridging_small_gaps(self):
        stable = np.ones(60, dtype=bool)
        stable[30:33] = False  # 3-frame unstable blip
        labels = np.zeros(60, int)
        segs = extract_segments(stable, labels, min_length=10, bridge=5)
        assert len(segs) == 1
        assert segs[0].length == 60

    def test_gap_beyond_bridge_splits(self):
        stable = np.ones(80, dtype=bool)
        stable[35:50] = False
        labels = np.zeros(80, int)
        segs = extract_segments(stable, labels, min_length=10, bridge=5)
        assert len(segs) == 2

    def test_no_stable_frames(self):
        segs = extract_segments(np.zeros(50, bool), np.zeros(50, int))
        assert segs == []

    def test_invalid(self):
        with pytest.raises(ValidationError):
            extract_segments(np.ones(5, bool), np.zeros(4, int))
        with pytest.raises(ValidationError):
            extract_segments(np.ones(5, bool), np.zeros(5, int), min_length=0)


class TestSegmentFrameLabels:
    def test_roundtrip(self):
        segs = [Segment(0, 10, 3), Segment(20, 30, 5)]
        labels = segment_frame_labels(segs, 35)
        assert labels[5] == 3
        assert labels[25] == 5
        assert labels[15] == -1
        assert labels[34] == -1

    def test_out_of_range_segment(self):
        with pytest.raises(ValidationError):
            segment_frame_labels([Segment(0, 50, 1)], 40)


class TestFingerprints:
    def test_stable_labels_stable_fingerprint(self):
        labels = np.zeros(100, dtype=int)
        prints = window_fingerprints(labels, window=10)
        assert all(fp == frozenset({0}) for fp in prints[10:])

    def test_noise_excluded(self):
        labels = np.full(50, -1, dtype=int)
        prints = window_fingerprints(labels, window=10)
        assert all(fp == frozenset() for fp in prints)

    def test_min_support_filters_rare(self):
        labels = np.zeros(40, dtype=int)
        labels[20] = 7  # appears once
        prints = window_fingerprints(labels, window=10, min_support=2)
        assert all(7 not in fp for fp in prints)

    def test_transition_changes_fingerprint(self):
        labels = np.concatenate([np.zeros(50, int), np.full(50, 5, int)])
        prints = window_fingerprints(labels, window=10)
        assert prints[20] == frozenset({0})
        assert prints[90] == frozenset({5})

    def test_similarity_bounds(self):
        assert fingerprint_similarity(frozenset(), frozenset()) == 1.0
        assert fingerprint_similarity(frozenset({1}), frozenset({2})) == 0.0
        assert fingerprint_similarity(frozenset({1, 2}), frozenset({2, 3})) == pytest.approx(1 / 3)

    def test_change_points_detect_switch(self):
        labels = np.concatenate([np.zeros(100, int), np.full(100, 5, int)])
        prints = window_fingerprints(labels, window=20)
        changes = fingerprint_change_points(prints)
        assert changes.size >= 1
        assert 95 <= changes[0] <= 125

    def test_change_points_min_spacing(self):
        labels = np.concatenate(
            [np.zeros(60, int), np.full(60, 1, int), np.full(60, 2, int)]
        )
        prints = window_fingerprints(labels, window=10)
        changes = fingerprint_change_points(prints, threshold=0.5, min_spacing=40)
        assert np.all(np.diff(changes) >= 40)

    def test_no_change_no_points(self):
        prints = window_fingerprints(np.zeros(80, int), window=10)
        assert fingerprint_change_points(prints).size == 0

    def test_invalid(self):
        with pytest.raises(ValidationError):
            window_fingerprints(np.zeros(5, int), window=0)
        with pytest.raises(ValidationError):
            fingerprint_change_points([], threshold=2.0)
