"""Checkpoint/restore: exact round trips, corruption detection, resume."""

import struct

import numpy as np
import pytest

from repro.core.streaming import KeyCounter, StreamingKeyBin2
from repro.errors import CheckpointError
from repro.insitu.checkpoint import CheckpointManager, common_checkpoint_round
from repro.insitu.distributed import run_distributed_insitu
from repro.proteins.trajectory import TrajectorySimulator

PARAMS = {"feature_range": (0.0, 1.0), "candidate_depths": (4, 5)}


def _fitted(rng, n=120, seed=7):
    skb = StreamingKeyBin2(seed=seed, **PARAMS)
    skb.partial_fit(rng.random((n, 3)))
    return skb


class TestStateRoundTrip:
    def test_restored_run_is_bit_identical(self, rng, tmp_path):
        """Continue-from-checkpoint must equal the uninterrupted run."""
        data = rng.random((200, 3))
        probe = rng.random((50, 3))

        straight = StreamingKeyBin2(seed=3, **PARAMS)
        straight.partial_fit(data[:120])
        straight.partial_fit(data[120:])
        straight.refresh()

        interrupted = StreamingKeyBin2(seed=3, **PARAMS)
        interrupted.partial_fit(data[:120])
        path = tmp_path / "mid.kb2"
        interrupted.save_state(path, meta={"chunks_done": 3})
        restored = StreamingKeyBin2.load_state(path)
        restored.partial_fit(data[120:])
        restored.refresh()

        assert restored.restored_meta_["chunks_done"] == 3
        assert restored.n_clusters_ == straight.n_clusters_
        np.testing.assert_array_equal(
            restored.predict(probe), straight.predict(probe)
        )

    def test_counters_and_ledger_survive(self, rng, tmp_path):
        skb = _fitted(rng)
        path = tmp_path / "c.kb2"
        skb.save_state(path)
        back = StreamingKeyBin2.load_state(path)
        assert back.n_seen_ == skb.n_seen_
        assert back.n_seen_delta_ == skb.n_seen_delta_
        assert back.n_own_ == skb.n_own_
        for a, b in zip(skb._states, back._states):
            for d in a.depths:
                np.testing.assert_array_equal(a.hist[d], b.hist[d])
                np.testing.assert_array_equal(a.hist_delta[d], b.hist_delta[d])
                np.testing.assert_array_equal(a.hist_local[d], b.hist_local[d])

    def test_key_counter_state_dict_round_trip(self, rng):
        rows = rng.integers(0, 5, (80, 3)).astype(np.uint8)
        kc = KeyCounter(capacity=20)
        kc.update(rows)
        back = KeyCounter.from_state_dict(kc.state_dict())
        ka, ca = kc.to_arrays()
        kb, cb = back.to_arrays()
        np.testing.assert_array_equal(ka, kb)
        np.testing.assert_array_equal(ca, cb)
        assert back.evicted_keys == kc.evicted_keys
        assert back.evicted_points == kc.evicted_points


class TestCorruptionDetection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            StreamingKeyBin2.load_state(tmp_path / "nope.kb2")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.kb2"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="not a streaming checkpoint"):
            StreamingKeyBin2.load_state(path)

    def test_flipped_payload_byte(self, rng, tmp_path):
        path = tmp_path / "c.kb2"
        _fitted(rng).save_state(path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            StreamingKeyBin2.load_state(path)

    def test_truncation(self, rng, tmp_path):
        path = tmp_path / "c.kb2"
        _fitted(rng).save_state(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            StreamingKeyBin2.load_state(path)

    def test_future_version_refused(self, rng, tmp_path):
        path = tmp_path / "c.kb2"
        _fitted(rng).save_state(path)
        raw = bytearray(path.read_bytes())
        off = len(StreamingKeyBin2._CKPT_MAGIC)
        struct.pack_into("<I", raw, off, StreamingKeyBin2._CKPT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checkpoint version"):
            StreamingKeyBin2.load_state(path)

    def test_interrupted_save_leaves_previous_intact(self, rng, tmp_path,
                                                     monkeypatch):
        """A crash mid-save (simulated at the rename) must not damage the
        existing checkpoint, and must not leave tmp litter behind."""
        import os

        path = tmp_path / "c.kb2"
        first = _fitted(rng, seed=1)
        first.save_state(path, meta={"gen": 1})

        real_replace = os.replace

        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk gone"):
            _fitted(rng, seed=2).save_state(path, meta={"gen": 2})
        monkeypatch.setattr(os, "replace", real_replace)

        back = StreamingKeyBin2.load_state(path)
        assert back.restored_meta_ == {"gen": 1}
        assert list(tmp_path.iterdir()) == [path]


class TestCheckpointManager:
    def test_keep_must_allow_fallback(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, rank=0, keep=1)

    def test_rounds_and_pruning(self, rng, tmp_path):
        mgr = CheckpointManager(tmp_path, rank=0, keep=2)
        skb = _fitted(rng)
        for r in (1, 2, 3, 4):
            mgr.save(skb, r)
        assert mgr.rounds() == [4, 3]
        assert not mgr.path_for(1).exists()

    def test_save_meta_carries_round_and_rank(self, rng, tmp_path):
        mgr = CheckpointManager(tmp_path, rank=5, keep=2)
        mgr.save(_fitted(rng), 7, meta={"chunks_done": 14})
        skb = mgr.load(7)
        assert skb.restored_meta_ == {"round": 7, "rank": 5, "chunks_done": 14}

    def test_load_latest_skips_corrupt_newest(self, rng, tmp_path):
        mgr = CheckpointManager(tmp_path, rank=0, keep=3)
        skb = _fitted(rng)
        mgr.save(skb, 1)
        mgr.save(skb, 2)
        newest = mgr.path_for(2)
        newest.write_bytes(newest.read_bytes()[:40])
        loaded, round_idx = mgr.load_latest()
        assert round_idx == 1
        assert loaded.n_seen_ == skb.n_seen_

    def test_load_latest_empty_dir(self, tmp_path):
        assert CheckpointManager(tmp_path, rank=0).load_latest() is None


class TestCommonRound:
    def test_newest_round_on_every_rank(self, rng, tmp_path):
        skb = _fitted(rng)
        for rank in range(3):
            mgr = CheckpointManager(tmp_path, rank)
            mgr.save(skb, 1)
            mgr.save(skb, 2)
        CheckpointManager(tmp_path, 0).save(skb, 3)  # rank 0 raced ahead
        assert common_checkpoint_round(tmp_path, 3) == 2

    def test_no_common_round(self, rng, tmp_path):
        skb = _fitted(rng)
        CheckpointManager(tmp_path, 0).save(skb, 1)
        CheckpointManager(tmp_path, 1).save(skb, 2)
        assert common_checkpoint_round(tmp_path, 2) is None

    def test_empty_directory(self, tmp_path):
        assert common_checkpoint_round(tmp_path, 2) is None


class TestDistributedResume:
    N_RESIDUES, N_FRAMES, CHUNK, EVERY = 24, 160, 40, 2
    KEYBIN = {"feature_range": (0.0, 6.0), "candidate_depths": (5, 6)}

    def _trajs(self, n=2):
        proto = TrajectorySimulator(self.N_RESIDUES, self.N_FRAMES, 4, seed=50)
        targets = proto.simulate().phase_targets
        return [
            TrajectorySimulator(
                self.N_RESIDUES, self.N_FRAMES, 4, phase_targets=targets,
                seed=51 + i,
            ).simulate(name=f"traj{i}")
            for i in range(n)
        ]

    def _run(self, trajs, **kw):
        return run_distributed_insitu(
            trajs, chunk_size=self.CHUNK, consolidate_every=self.EVERY,
            seed=0, timeout=30.0, **kw, **self.KEYBIN,
        )

    def test_restart_resumes_from_common_round(self, tmp_path):
        trajs = self._trajs()
        first = self._run(trajs, checkpoint_dir=tmp_path, checkpoint_keep=4)
        assert all(r.resumed_round is None for r in first)
        # Rank 1 lost its newest checkpoint: the restart must agree on the
        # older common barrier and replay the chunks it covers.
        newest = max(CheckpointManager(tmp_path, 1, keep=4).rounds())
        CheckpointManager(tmp_path, 1, keep=4).path_for(newest).unlink()
        second = self._run(trajs, checkpoint_dir=tmp_path, checkpoint_keep=4)
        assert all(r.resumed_round == newest - 1 for r in second)
        for a, b in zip(first, second):
            assert b.n_clusters == a.n_clusters
            np.testing.assert_array_equal(b.labels, a.labels)

    def test_completed_run_resumes_to_noop(self, tmp_path):
        trajs = self._trajs()
        first = self._run(trajs, checkpoint_dir=tmp_path)
        second = self._run(trajs, checkpoint_dir=tmp_path)
        assert all(r.resumed_round == self.N_FRAMES // self.CHUNK // self.EVERY
                   for r in second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(b.labels, a.labels)
