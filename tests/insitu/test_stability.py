"""Tests for eq. 3 probabilities, HDR centres, and eq. 4 decisions."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.insitu.stability import (
    hdr_center,
    label_probabilities,
    stability_decisions,
    stability_scores,
)


class TestLabelProbabilities:
    def test_rows_sum_to_one(self, rng):
        d = rng.uniform(1, 10, (4, 50))
        p = label_probabilities(d)
        assert np.allclose(p.sum(axis=0), 1.0)

    def test_closest_label_highest(self):
        d = np.array([[1.0], [10.0], [10.0]])
        p = label_probabilities(d)
        assert np.argmax(p[:, 0]) == 0

    def test_zero_distance_dominates(self):
        d = np.array([[0.0], [5.0]])
        p = label_probabilities(d)
        assert p[0, 0] > 0.999

    def test_equal_distances_equal_probs(self):
        d = np.full((3, 2), 4.0)
        p = label_probabilities(d)
        assert np.allclose(p, 1 / 3)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            label_probabilities(np.zeros(4))
        with pytest.raises(ValidationError):
            label_probabilities(np.array([[-1.0]]))


class TestHDRCenter:
    def test_uniform_sample_center(self, rng):
        samples = np.linspace(0, 1, 101)
        c = hdr_center(samples, 1.0)
        assert c == pytest.approx(0.5)

    def test_tight_mode_found(self, rng):
        # 70% of mass at ~0.8, 30% spread out.
        samples = np.concatenate(
            [rng.normal(0.8, 0.01, 700), rng.uniform(0, 1, 300)]
        )
        assert abs(hdr_center(samples, 0.7) - 0.8) < 0.05

    def test_single_sample(self):
        assert hdr_center(np.array([0.3])) == pytest.approx(0.3)

    def test_bimodal_picks_denser(self, rng):
        samples = np.concatenate(
            [rng.normal(0.2, 0.005, 600), rng.normal(0.9, 0.05, 400)]
        )
        assert abs(hdr_center(samples, 0.5) - 0.2) < 0.05

    def test_invalid(self):
        with pytest.raises(ValidationError):
            hdr_center(np.array([]))
        with pytest.raises(ValidationError):
            hdr_center(np.array([1.0]), mass=0.0)


class TestStabilityScores:
    def test_shape(self, rng):
        p = label_probabilities(rng.uniform(1, 5, (3, 40)))
        s = stability_scores(p, window=10)
        assert s.shape == (3, 40)

    def test_constant_probabilities_give_constant_scores(self):
        p = np.tile(np.array([[0.7], [0.3]]), (1, 30))
        s = stability_scores(p, window=10)
        assert np.allclose(s[0], 0.7)
        assert np.allclose(s[1], 0.3)

    def test_window_lags_changes(self):
        """A step change in probability shows up gradually (over ~window)."""
        p0 = np.concatenate([np.full(50, 0.9), np.full(50, 0.1)])
        p = np.stack([p0, 1 - p0])
        s = stability_scores(p, window=20)
        # right after the switch the score still reflects the past
        assert s[0, 52] > 0.5
        # long after the switch it has converged
        assert s[0, 95] < 0.2

    def test_invalid(self):
        with pytest.raises(ValidationError):
            stability_scores(np.zeros(4), window=2)
        with pytest.raises(ValidationError):
            stability_scores(np.zeros((2, 4)), window=0)


class TestStabilityDecisions:
    def test_clear_winner_stable(self):
        s = np.array([[0.9, 0.9], [0.1, 0.1]])
        stable, winners = stability_decisions(s, threshold=0.1)
        assert stable.all()
        assert winners.tolist() == [0, 0]

    def test_tie_not_stable(self):
        s = np.array([[0.5, 0.52], [0.5, 0.49]])
        stable, winners = stability_decisions(s, threshold=0.1)
        assert not stable.any()

    def test_winner_reported_even_when_unstable(self):
        s = np.array([[0.51], [0.49]])
        stable, winners = stability_decisions(s, threshold=0.5)
        assert not stable[0]
        assert winners[0] == 0

    def test_needs_two_labels(self):
        with pytest.raises(ValidationError):
            stability_decisions(np.zeros((1, 5)))
