"""Distributed adaptive binning: epoch-coordinated grid agreement.

Extends the delta-merge consolidation suite to ``adaptive=True``: all
ranks must leave every consolidation on the *same* chain grid, mass must
be conserved through every coordinated rebin, and the final state must be
bit-identical to a serial pooled run — independent of the consolidation
cadence and of which rank saw the widest data (the epoch-coordination
protocol of DESIGN.md §3.9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.spmd import run_spmd
from repro.core.streaming import StreamingKeyBin2
from repro.data.streams import RangeGrowthStream
from repro.insitu.distributed import consolidate_streaming_state

DEPTHS = (4, 5, 6)
N_RANKS = 3


def _rank_batches(rank: int, growth: float, n_batches: int = 6,
                  batch_size: int = 120, n_dims: int = 6):
    """Per-rank streams with *different* growth — ranks disagree on how
    wide the world is until consolidation reconciles them."""
    return [x for x, _ in RangeGrowthStream(
        n_batches=n_batches, batch_size=batch_size, n_dims=n_dims,
        growth=growth, seed=100 + rank)]


def _make_skb(**kw) -> StreamingKeyBin2:
    kw.setdefault("n_projections", 3)
    kw.setdefault("candidate_depths", DEPTHS)
    kw.setdefault("seed", 0)
    kw.setdefault("fused", True)
    # Distributed adaptive binning needs every rank on the same *base*
    # grid — chain levels are only comparable relative to a shared
    # level-0 span, so the base must come from config, not from each
    # rank's (different) first batch.
    kw.setdefault("feature_range", (-4.0, 4.0))
    return StreamingKeyBin2(adaptive=True, **kw)


def _grid_snapshot(skb):
    return [
        (st.levels.copy(), st.space.r_min.copy(), st.space.r_max.copy(),
         st.bin_epoch)
        for st in skb._states
    ]


def _state_snapshot(skb):
    out = []
    for st in skb._states:
        keys, counts = st.keys.to_arrays()
        out.append((
            {d: st.hist[d].copy() for d in st.depths},
            keys.copy(), counts.copy(),
        ))
    return skb.n_seen_, out


def _consolidating_program(comm, growths, every):
    batches = _rank_batches(comm.rank, growths[comm.rank])
    skb = _make_skb()
    grids, masses = [], []
    for i, x in enumerate(batches):
        skb.partial_fit(x)
        if (i + 1) % every == 0 or i + 1 == len(batches):
            consolidate_streaming_state(comm, skb)
            grids.append(_grid_snapshot(skb))
            masses.append([
                (int(st.hist[d].sum()), st.space.n_dims)
                for st in skb._states for d in st.depths
            ])
    return grids, masses, _state_snapshot(skb)


def _serial_pooled(growths):
    """One estimator fed every rank's data round-robin per batch index —
    the merge order consolidation reproduces."""
    all_batches = [_rank_batches(r, growths[r]) for r in range(len(growths))]
    skb = _make_skb()
    for i in range(len(all_batches[0])):
        for r in range(len(growths)):
            skb.partial_fit(all_batches[r][i])
    return skb


GROWTHS = [1.2, 1.6, 2.1]  # rank 2 drives the widening


class TestGridAgreement:
    @pytest.mark.parametrize("every", [1, 2, 100])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_all_ranks_agree_after_every_merge(self, executor, every):
        per_rank = run_spmd(_consolidating_program, N_RANKS,
                            executor=executor, args=(GROWTHS, every),
                            timeout=120.0)
        reference_grids = per_rank[0][0]
        for grids, _, _ in per_rank[1:]:
            assert len(grids) == len(reference_grids)
            for mine, theirs in zip(grids, reference_grids):
                for (lv_a, lo_a, hi_a, ep_a), (lv_b, lo_b, hi_b, ep_b) in zip(
                    mine, theirs
                ):
                    np.testing.assert_array_equal(lv_a, lv_b)
                    # Bit-equal bounds: every rank computed them from the
                    # same base with the same float expression.
                    np.testing.assert_array_equal(lo_a, lo_b)
                    np.testing.assert_array_equal(hi_a, hi_b)

    def test_widest_rank_drives_everyone(self):
        per_rank = run_spmd(_consolidating_program, N_RANKS,
                            executor="thread", args=(GROWTHS, 2),
                            timeout=120.0)
        final_grids = per_rank[0][0][-1]
        assert any(np.any(levels > 0) for levels, _, _, _ in final_grids)

    @pytest.mark.parametrize("every", [1, 2])
    def test_mass_conserved_through_coordinated_rebins(self, every):
        per_rank = run_spmd(_consolidating_program, N_RANKS,
                            executor="thread", args=(GROWTHS, every),
                            timeout=120.0)
        batch_rows = 120
        n_batches = 6
        for _, masses, (seen, _) in per_rank:
            assert seen == N_RANKS * n_batches * batch_rows
            for round_idx, per_state in enumerate(masses):
                expected_seen = N_RANKS * min(
                    (round_idx + 1) * every, n_batches) * batch_rows
                for hist_mass, n_dims in per_state:
                    assert hist_mass == expected_seen * n_dims


def _divergent_base_program(comm):
    """Each rank seeds its base grid from its own data — incomparable
    chains, which consolidation must refuse loudly on every rank."""
    rng = np.random.default_rng(comm.rank)
    # No feature_range: rank r's base spans roughly ±(r+1)·sigma.
    skb = _make_skb(feature_range=None)
    skb.partial_fit((comm.rank + 1.0) * rng.normal(size=(200, 6)))
    try:
        consolidate_streaming_state(comm, skb)
    except Exception as exc:  # noqa: BLE001 — recording, not handling
        return type(exc).__name__, str(exc)
    return None


class TestDivergentBases:
    def test_mismatched_bases_raise_on_every_rank(self):
        from repro.errors import ValidationError  # noqa: F401

        per_rank = run_spmd(_divergent_base_program, N_RANKS,
                            executor="thread", timeout=60.0)
        for result in per_rank:
            assert result is not None, "divergent bases went undetected"
            name, message = result
            assert name == "ValidationError"
            assert "base grid" in message
            assert "feature_range" in message


class TestCadenceInvariance:
    def test_final_state_matches_serial_pooled_bitwise(self):
        """Whatever the cadence, the final merged state must equal the
        serial pooled estimator bit for bit: grids, histograms, keys."""
        serial_seen, serial_states = _state_snapshot(_serial_pooled(GROWTHS))
        for every in (1, 2, 100):
            per_rank = run_spmd(_consolidating_program, N_RANKS,
                                executor="thread", args=(GROWTHS, every),
                                timeout=120.0)
            for _, _, (seen, states) in per_rank:
                assert seen == serial_seen
                for (h_a, k_a, c_a), (h_b, k_b, c_b) in zip(
                    states, serial_states
                ):
                    for d in DEPTHS:
                        np.testing.assert_array_equal(h_a[d], h_b[d])
                    np.testing.assert_array_equal(k_a, k_b)
                    np.testing.assert_array_equal(c_a, c_b)

    def test_mixed_cadences_converge(self):
        """Rank-local histories differ (different data), but one final
        merge after different intermediate cadences lands on one grid."""
        out_1 = run_spmd(_consolidating_program, N_RANKS, executor="thread",
                         args=(GROWTHS, 1), timeout=120.0)
        out_100 = run_spmd(_consolidating_program, N_RANKS, executor="thread",
                           args=(GROWTHS, 100), timeout=120.0)
        final_1 = out_1[0][0][-1]
        final_100 = out_100[0][0][-1]
        for (lv_a, lo_a, hi_a, _), (lv_b, lo_b, hi_b, _) in zip(
            final_1, final_100
        ):
            np.testing.assert_array_equal(lv_a, lv_b)
            np.testing.assert_array_equal(lo_a, lo_b)
            np.testing.assert_array_equal(hi_a, hi_b)


def _checkpoint_program(comm, growths, tmpdir):
    """Checkpoint mid-stream after a rebin, restore, keep consolidating —
    the restored run must finish exactly like the uninterrupted one."""
    batches = _rank_batches(comm.rank, growths[comm.rank])
    skb = _make_skb()
    for x in batches[:3]:
        skb.partial_fit(x)
    consolidate_streaming_state(comm, skb)
    path = f"{tmpdir}/rank{comm.rank}.kb2"
    skb.save_state(path)
    skb = StreamingKeyBin2.load_state(path)
    for x in batches[3:]:
        skb.partial_fit(x)
    consolidate_streaming_state(comm, skb)
    return _grid_snapshot(skb), _state_snapshot(skb)


def _straight_program(comm, growths):
    batches = _rank_batches(comm.rank, growths[comm.rank])
    skb = _make_skb()
    for x in batches[:3]:
        skb.partial_fit(x)
    consolidate_streaming_state(comm, skb)
    for x in batches[3:]:
        skb.partial_fit(x)
    consolidate_streaming_state(comm, skb)
    return _grid_snapshot(skb), _state_snapshot(skb)


class TestCheckpointRestore:
    def test_restored_ranks_rejoin_the_grid_exactly(self, tmp_path):
        ckpt = run_spmd(_checkpoint_program, N_RANKS, executor="thread",
                        args=(GROWTHS, str(tmp_path)), timeout=120.0)
        straight = run_spmd(_straight_program, N_RANKS, executor="thread",
                            args=(GROWTHS,), timeout=120.0)
        for (g_a, (seen_a, st_a)), (g_b, (seen_b, st_b)) in zip(
            ckpt, straight
        ):
            assert seen_a == seen_b
            for (lv_a, lo_a, hi_a, _), (lv_b, lo_b, hi_b, _) in zip(g_a, g_b):
                np.testing.assert_array_equal(lv_a, lv_b)
                np.testing.assert_array_equal(lo_a, lo_b)
                np.testing.assert_array_equal(hi_a, hi_b)
            for (h_a, k_a, c_a), (h_b, k_b, c_b) in zip(st_a, st_b):
                for d in DEPTHS:
                    np.testing.assert_array_equal(h_a[d], h_b[d])
                np.testing.assert_array_equal(k_a, k_b)
                np.testing.assert_array_equal(c_a, c_b)


class TestWireFormat:
    """The default registry is process-global, so under the thread
    executor ONE shared registry (installed from the test body, keyed by
    the per-rank ``rank`` label) is the only race-free way to observe
    per-rank byte accounting."""

    @staticmethod
    def _grid_bytes_by_rank(reg):
        per_rank = {}
        for family in reg.collect():
            if family["name"] == "insitu_consolidation_bytes_total":
                for sample in family["samples"]:
                    if sample["labels"].get("kind") == "grid":
                        rank = sample["labels"]["rank"]
                        per_rank[rank] = per_rank.get(rank, 0) + sample["value"]
        return per_rank

    def test_non_adaptive_sends_no_grid_bytes(self):
        """Fixed-range estimators must not pay for (or change) the wire
        format: no "grid" byte series when adaptive is off."""
        from repro.obs import MetricsRegistry, set_default_registry

        def program(comm):
            rng = np.random.default_rng(comm.rank)
            skb = StreamingKeyBin2(n_projections=3,
                                   candidate_depths=DEPTHS,
                                   fused=True, seed=0)
            skb.partial_fit(rng.normal(size=(200, 6)))
            consolidate_streaming_state(comm, skb)

        reg = MetricsRegistry()
        prev = set_default_registry(reg)
        try:
            run_spmd(program, 2, executor="thread", timeout=60.0)
        finally:
            set_default_registry(prev)
        assert self._grid_bytes_by_rank(reg) == {}

    def test_adaptive_records_grid_bytes_when_widening(self):
        from repro.obs import MetricsRegistry, set_default_registry

        def program(comm, growths):
            batches = _rank_batches(comm.rank, growths[comm.rank],
                                    n_batches=4)
            skb = _make_skb()
            for x in batches:
                skb.partial_fit(x)
            consolidate_streaming_state(comm, skb)

        reg = MetricsRegistry()
        prev = set_default_registry(reg)
        try:
            run_spmd(program, 2, executor="thread",
                     args=([1.4, 2.0],), timeout=60.0)
        finally:
            set_default_registry(prev)
        per_rank = self._grid_bytes_by_rank(reg)
        assert set(per_rank) == {"0", "1"}
        assert all(total > 0 for total in per_rank.values())
