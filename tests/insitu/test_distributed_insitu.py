"""Tests for the distributed in-situ driver (§5.1)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.insitu.distributed import run_distributed_insitu
from repro.metrics.external import normalized_mutual_info
from repro.proteins.trajectory import TrajectorySimulator


def _shared_library_trajectories(n, n_residues=40, n_frames=900, n_phases=4,
                                 base_seed=50):
    """Trajectories exploring the same conformational library with
    independent dynamics."""
    proto = TrajectorySimulator(n_residues, n_frames, n_phases, seed=base_seed)
    targets = proto.simulate().phase_targets
    return [
        TrajectorySimulator(
            n_residues, n_frames, n_phases, phase_targets=targets,
            seed=base_seed + 1 + i,
        ).simulate(name=f"traj{i}")
        for i in range(n)
    ]


class TestDistributedInSitu:
    @pytest.fixture(scope="class")
    def results_and_trajs(self):
        trajs = _shared_library_trajectories(3)
        results = run_distributed_insitu(trajs, seed=0, executor="thread")
        return results, trajs

    def test_one_result_per_rank(self, results_and_trajs):
        results, trajs = results_and_trajs
        assert len(results) == 3
        for res, traj in zip(results, trajs):
            assert res.labels.shape == (traj.n_frames,)

    def test_global_model_identical(self, results_and_trajs):
        results, _ = results_and_trajs
        assert len({r.n_clusters for r in results}) == 1

    def test_each_rank_tracks_its_phases(self, results_and_trajs):
        results, trajs = results_and_trajs
        for res in results:
            assert res.phase_nmi > 0.4

    def test_cross_trajectory_conformation_recognition(self, results_and_trajs):
        """The §5 point: the same conformation visited by different
        trajectories must land in consistent global clusters. We check it
        by computing NMI between phase ids and labels *pooled across
        ranks* — high only if phase→cluster mapping is consistent
        globally, not merely within each trajectory."""
        results, trajs = results_and_trajs
        pooled_phases = np.concatenate([t.phase_ids for t in trajs])
        pooled_labels = np.concatenate([r.labels for r in results])
        assert normalized_mutual_info(pooled_phases, pooled_labels) > 0.4

    def test_traffic_is_histogram_scale(self, results_and_trajs):
        results, trajs = results_and_trajs
        raw_bytes = trajs[0].angles.nbytes
        for res in results[1:]:
            assert res.traffic["bytes_sent"] < raw_bytes / 2

    def test_unequal_trajectory_lengths(self):
        trajs = _shared_library_trajectories(2, n_frames=600)
        longer = TrajectorySimulator(
            40, 1100, 4, phase_targets=trajs[0].phase_targets, seed=99
        ).simulate()
        results = run_distributed_insitu(
            [trajs[0], longer], seed=0, executor="thread"
        )
        assert results[0].labels.shape == (600,)
        assert results[1].labels.shape == (1100,)
        assert results[0].n_clusters == results[1].n_clusters

    def test_single_rank_works(self):
        trajs = _shared_library_trajectories(1)
        results = run_distributed_insitu(trajs, seed=0, executor="thread")
        assert results[0].n_clusters >= 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            run_distributed_insitu([])


class TestSharedPhaseLibrary:
    def test_same_targets_different_dynamics(self):
        trajs = _shared_library_trajectories(2)
        assert np.array_equal(trajs[0].phase_targets, trajs[1].phase_targets)
        assert not np.array_equal(trajs[0].angles, trajs[1].angles)

    def test_target_shape_validated(self):
        with pytest.raises(ValidationError):
            TrajectorySimulator(
                10, 100, 3, phase_targets=np.zeros((2, 10), dtype=np.int8)
            )
