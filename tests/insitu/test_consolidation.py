"""Consolidation-correctness tests for the delta-merge protocol.

These pin the invariants the distributed layer promises (and that the
pre-delta merge violated after the first round): mass conservation at
every consolidation, idempotent re-merges, label invariance to the
consolidation cadence, exact agreement with a serial pooled run, and
O(histogram) wire traffic per round.
"""

import numpy as np
import pytest

from repro.comm.spmd import run_spmd
from repro.core.streaming import StreamingKeyBin2
from repro.errors import RankFailedError, ValidationError
from repro.insitu.distributed import (
    consolidate_streaming_state,
    distributed_insitu_spmd,
    run_distributed_insitu,
)
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import Trajectory, TrajectorySimulator

N_RESIDUES = 30
N_FRAMES = 240
CHUNK = 40           # 6 chunks per rank
EVERY = 2            # -> 3 consolidation rounds
KEYBIN_PARAMS = {"feature_range": (0.0, 6.0), "candidate_depths": (5, 6, 7, 8)}


def _shared_library_trajectories(n, n_frames=N_FRAMES, base_seed=50):
    proto = TrajectorySimulator(N_RESIDUES, n_frames, 4, seed=base_seed)
    targets = proto.simulate().phase_targets
    return [
        TrajectorySimulator(
            N_RESIDUES, n_frames, 4, phase_targets=targets, seed=base_seed + 1 + i
        ).simulate(name=f"traj{i}")
        for i in range(n)
    ]


def _serial_pooled(trajs, seed=0):
    """Single StreamingKeyBin2 fed every rank's frames (the ground truth the
    distributed merge must reproduce exactly)."""
    skb = StreamingKeyBin2(seed=seed, **KEYBIN_PARAMS)
    for t in trajs:
        skb.partial_fit(encode_frames(t.angles))
    skb.refresh()
    return skb


def _mass_program(comm, feature_blocks, chunk, every):
    """SPMD program recording (points seen, per-state masses) after every
    consolidation round."""
    feats = feature_blocks[comm.rank]
    skb = StreamingKeyBin2(seed=0, **KEYBIN_PARAMS)
    records = []
    n_chunks = -(-feats.shape[0] // chunk)
    for ci in range(n_chunks):
        skb.partial_fit(feats[ci * chunk : (ci + 1) * chunk])
        if (ci + 1) % every == 0 or ci + 1 == n_chunks:
            consolidate_streaming_state(comm, skb)
            masses = [
                (int(st.hist[d].sum()), st.hist[d].shape[0], int(sum(
                    st.keys.to_arrays()[1]
                )))
                for st in skb._states
                for d in st.depths
            ]
            records.append((skb.n_seen_, masses))
    return records


def _key_dict(counter):
    keys, counts = counter.to_arrays()
    return {bytes(k): int(c) for k, c in zip(keys, counts)}


def _double_merge_program(comm, feature_blocks):
    """Merge twice with no data in between; the second merge must change
    nothing (idempotence — exactly what re-reducing merged totals broke)."""
    skb = StreamingKeyBin2(seed=0, **KEYBIN_PARAMS)
    skb.partial_fit(feature_blocks[comm.rank])
    consolidate_streaming_state(comm, skb)
    before = (
        skb.n_seen_,
        [st.hist[d].copy() for st in skb._states for d in st.depths],
        [_key_dict(st.keys) for st in skb._states],
    )
    consolidate_streaming_state(comm, skb)
    after = (
        skb.n_seen_,
        [st.hist[d].copy() for st in skb._states for d in st.depths],
        [_key_dict(st.keys) for st in skb._states],
    )
    return before, after


def _zero_frame_program(comm, trajs):
    return distributed_insitu_spmd(comm, trajs[comm.rank], chunk_size=CHUNK)


class TestMassConservation:
    def test_mass_conserved_every_round(self):
        """After every merge, histogram mass must equal points-seen × dims
        and the key-counter mass must equal points-seen — at k ≥ 3 rounds
        on R = 3 ranks (the regime the pre-delta merge corrupted)."""
        trajs = _shared_library_trajectories(3)
        blocks = [encode_frames(t.angles) for t in trajs]
        per_rank = run_spmd(
            _mass_program, 3, executor="thread", args=(blocks, CHUNK, EVERY)
        )
        n_rounds = len(per_rank[0])
        assert n_rounds >= 3
        for records in per_rank:
            for round_idx, (seen, masses) in enumerate(records):
                expected_seen = 3 * min((round_idx + 1) * EVERY * CHUNK, N_FRAMES)
                assert seen == expected_seen
                for hist_mass, n_dims, key_mass in masses:
                    assert hist_mass == seen * n_dims
                    assert key_mass == seen

    def test_remerge_without_new_data_is_noop(self):
        trajs = _shared_library_trajectories(2)
        blocks = [encode_frames(t.angles) for t in trajs]
        per_rank = run_spmd(_double_merge_program, 2, executor="thread",
                            args=(blocks,))
        for before, after in per_rank:
            assert before[0] == after[0]
            for h_before, h_after in zip(before[1], after[1]):
                assert np.array_equal(h_before, h_after)
            assert before[2] == after[2]


class TestCadenceInvariance:
    @pytest.fixture(scope="class")
    def trajs(self):
        return _shared_library_trajectories(3)

    @pytest.fixture(scope="class")
    def serial(self, trajs):
        return _serial_pooled(trajs)

    @pytest.mark.parametrize("every", [1, 2, 100])
    def test_labels_match_serial_pooled(self, trajs, serial, every):
        """R = 3 ranks, up to 6 consolidation rounds: labels and cluster
        count must match the single-rank pooled run exactly, whatever the
        cadence (100 ⇒ one final merge only)."""
        results = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=every, seed=0
        )
        assert all(r.n_clusters == serial.n_clusters_ for r in results)
        for traj, res in zip(trajs, results):
            expected = serial.predict(encode_frames(traj.angles))
            assert np.array_equal(res.labels, expected)

    def test_ring_reduction_matches_linear(self, trajs, serial):
        results = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=EVERY, seed=0,
            reduce_algo="ring",
        )
        assert all(r.n_clusters == serial.n_clusters_ for r in results)
        for traj, res in zip(trajs, results):
            expected = serial.predict(encode_frames(traj.angles))
            assert np.array_equal(res.labels, expected)

    def test_bad_reduce_algo_rejected(self, trajs):
        with pytest.raises((ValidationError, RankFailedError)):
            run_distributed_insitu(
                trajs[:2], chunk_size=CHUNK, seed=0, reduce_algo="butterfly"
            )


class TestTrafficBound:
    def test_bytes_scale_with_histograms_times_rounds(self):
        """Per-rank traffic must stay O(histogram buffer × rounds) — deltas
        on the wire, never the raw frames and never a growing merged table."""
        trajs = _shared_library_trajectories(3)
        # Histogram wire size, measured on an identically configured model.
        probe = StreamingKeyBin2(seed=0, **KEYBIN_PARAMS)
        probe.partial_fit(encode_frames(trajs[0].angles)[:CHUNK])
        hist_nbytes = sum(
            st.hist[d].nbytes for st in probe._states for d in st.depths
        )
        n_rounds = -(-N_FRAMES // CHUNK)  # consolidate_every=1
        results = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=1, seed=0
        )
        # Linear collectives make the root fan out size-1 copies, so the
        # per-rank constant is bounded by the rank count; key deltas and
        # control messages ride in the same O(histogram) envelope.
        bound = 2 * len(trajs) * hist_nbytes * n_rounds
        for res in results:
            assert res.traffic["bytes_sent"] < bound

    def test_ring_keeps_nonroot_traffic_flat(self):
        """The ring path bounds every rank's histogram traffic at O(2·len)
        per round, so the busiest rank sends no more than under the linear
        root-fan-out reduction."""
        trajs = _shared_library_trajectories(3)
        linear = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=EVERY, seed=0
        )
        ring = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=EVERY, seed=0,
            reduce_algo="ring",
        )
        assert (
            max(r.traffic["bytes_sent"] for r in ring)
            <= max(r.traffic["bytes_sent"] for r in linear)
        )


class TestZeroFrameFailFast:
    def _empty_trajectory(self):
        return Trajectory(
            angles=np.empty((0, N_RESIDUES, 3)),
            phase_ids=np.empty(0, dtype=np.int64),
            in_transition=np.zeros(0, dtype=bool),
            phase_targets=np.zeros((4, N_RESIDUES), dtype=np.int8),
            name="empty",
        )

    def test_front_end_rejects_empty_trajectory_upfront(self):
        trajs = _shared_library_trajectories(2)
        with pytest.raises(ValidationError, match="no frames"):
            run_distributed_insitu([trajs[0], self._empty_trajectory()])

    def test_spmd_zero_frame_raises_on_all_ranks(self):
        """Every rank must raise immediately — peers must not sit in the
        allreduce until the deadlock timeout."""
        trajs = [self._empty_trajectory()] + _shared_library_trajectories(2)
        with pytest.raises(RankFailedError, match="no frames"):
            run_spmd(
                _zero_frame_program, 3, executor="thread", args=(trajs,),
                timeout=60.0,
            )


class TestMultiRoundExecutors:
    """The CI multi-round configuration: small chunks, consolidate_every=1,
    on both in-process executors."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_multi_round_matches_serial(self, executor):
        trajs = _shared_library_trajectories(2)
        serial = _serial_pooled(trajs)
        results = run_distributed_insitu(
            trajs, chunk_size=CHUNK, consolidate_every=1, seed=0,
            executor=executor,
        )
        assert all(r.n_clusters == serial.n_clusters_ for r in results)
        for traj, res in zip(trajs, results):
            expected = serial.predict(encode_frames(traj.angles))
            assert np.array_equal(res.labels, expected)
