"""Telemetry accounting for the distributed in-situ path.

Pins the ISSUE's acceptance criterion: over a multi-round run,
``insitu_consolidation_bytes_total{kind="hist"}`` sums to exactly
(histogram bytes × rounds) per rank — the O(histogram × rounds) wire
bound ``tests/insitu/test_consolidation.py`` pins at the communicator
level, now visible as a first-class metric series.
"""

import pytest

from repro.core.streaming import StreamingKeyBin2
from repro.insitu.distributed import run_distributed_insitu
from repro.obs import MetricsRegistry, ensure_core_series, set_default_registry
from repro.proteins.encode import encode_frames
from repro.proteins.trajectory import TrajectorySimulator

N_RESIDUES = 24
N_FRAMES = 160
CHUNK = 40            # 4 chunks per rank
EVERY = 2             # -> consolidation rounds at chunks 2 and 4
N_ROUNDS = 2
KEYBIN_PARAMS = {"feature_range": (0.0, 6.0), "candidate_depths": (5, 6, 7, 8)}


def _trajectories(n, base_seed=50):
    proto = TrajectorySimulator(N_RESIDUES, N_FRAMES, 4, seed=base_seed)
    targets = proto.simulate().phase_targets
    return [
        TrajectorySimulator(
            N_RESIDUES, N_FRAMES, 4, phase_targets=targets,
            seed=base_seed + 1 + i,
        ).simulate(name=f"traj{i}")
        for i in range(n)
    ]


def _hist_nbytes(seed=0):
    """Flat histogram-delta bytes of an identically configured model."""
    probe = StreamingKeyBin2(seed=seed, **KEYBIN_PARAMS)
    probe.partial_fit(encode_frames(_trajectories(1)[0].angles)[:CHUNK])
    return sum(st.hist[d].nbytes for st in probe._states for d in st.depths)


@pytest.fixture()
def obs_run():
    """Run 3 ranks against a fresh default registry; yield the registry."""
    reg = ensure_core_series(MetricsRegistry())
    previous = set_default_registry(reg)
    try:
        results = run_distributed_insitu(
            _trajectories(3), chunk_size=CHUNK, consolidate_every=EVERY,
            seed=0, **KEYBIN_PARAMS,
        )
    finally:
        set_default_registry(previous)
    return reg, results


def _samples(reg, name):
    return reg.get(name).snapshot()["samples"]


def test_round_counts_per_rank(obs_run):
    reg, results = obs_run
    rounds = {
        s["labels"]["rank"]: s["value"]
        for s in _samples(reg, "insitu_consolidation_rounds_total")
        if s["value"]
    }
    assert rounds == {"0": N_ROUNDS, "1": N_ROUNDS, "2": N_ROUNDS}


def test_hist_delta_bytes_sum_to_histogram_times_rounds(obs_run):
    reg, results = obs_run
    hist_nbytes = _hist_nbytes()
    per_rank = {
        s["labels"]["rank"]: s["value"]
        for s in _samples(reg, "insitu_consolidation_bytes_total")
        if s["labels"]["kind"] == "hist" and s["value"]
    }
    assert set(per_rank) == {"0", "1", "2"}
    for rank, total in per_rank.items():
        # Exact: the flat delta buffer is the full histogram every round.
        assert total == hist_nbytes * N_ROUNDS
        # And within the paper's O(2·K·N_rp·B) ring bound per round.
        assert total <= 2 * hist_nbytes * N_ROUNDS


def test_seen_and_keys_bytes_recorded(obs_run):
    reg, results = obs_run
    by_kind = {}
    for s in _samples(reg, "insitu_consolidation_bytes_total"):
        by_kind[s["labels"]["kind"]] = (
            by_kind.get(s["labels"]["kind"], 0) + s["value"]
        )
    # 8 bytes (one int64) per rank per round.
    assert by_kind["seen"] == 8 * 3 * N_ROUNDS
    assert by_kind["keys"] > 0


def test_cells_folded_and_evictions_counted(obs_run):
    reg, results = obs_run
    folded = sum(
        s["value"]
        for s in _samples(reg, "insitu_consolidation_cells_folded_total")
    )
    assert folded > 0  # each rank folds its two peers' deltas
    evicted = sum(
        s["value"]
        for s in _samples(reg, "insitu_consolidation_evictions_total")
    )
    assert evicted >= 0


def test_phase_spans_attributed_per_rank(obs_run):
    reg, results = obs_run
    phases = {
        s["labels"]["phase"]
        for s in _samples(reg, "phase_calls_total")
        if s["value"]
    }
    for rank in range(3):
        assert f"insitu/rank{rank}/partial_fit/project" in phases
        assert f"insitu/rank{rank}/consolidate/hist_allreduce" in phases
        assert f"insitu/rank{rank}/refresh" in phases
        assert f"insitu/rank{rank}/label_frames" in phases


def test_stream_counters(obs_run):
    reg, results = obs_run
    assert reg.get("stream_points_total").value == 3 * N_FRAMES
    assert reg.get("stream_refreshes_total").value == 3  # one per rank


def test_kernel_launches_counted():
    import numpy as np

    from repro.kernels.engine import KernelEngine

    reg = MetricsRegistry()
    previous = set_default_registry(reg)
    try:
        engine = KernelEngine(block_size=10)

        def double(block):
            return block * 2

        def block_sum(block):
            return block.sum()

        engine.map(double, np.ones((25, 3)))
        engine.reduce(block_sum, np.ones((25, 3)),
                      combine=lambda a, b: a + b)
    finally:
        set_default_registry(previous)
    samples = _samples(reg, "kernel_launches_total")
    assert {s["labels"]["kernel"]: s["value"] for s in samples} == {
        "double": 3.0,      # 25 rows / block_size 10 -> 3 blocks each
        "block_sum": 3.0,
    }
    assert engine.launches == 6  # legacy attribute still counts


def test_ring_algo_labeled(obs_run):
    """A ring-reduce run records under algo="ring" without disturbing

    the linear run's series (labels keep topologies separate)."""
    reg = ensure_core_series(MetricsRegistry())
    previous = set_default_registry(reg)
    try:
        run_distributed_insitu(
            _trajectories(2), chunk_size=CHUNK, consolidate_every=EVERY,
            seed=0, reduce_algo="ring", **KEYBIN_PARAMS,
        )
    finally:
        set_default_registry(previous)
    algos = {
        s["labels"]["algo"]
        for s in _samples(reg, "insitu_consolidation_rounds_total")
        if s["value"]
    }
    assert algos == {"ring"}
