"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.gaussians import gaussian_mixture


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_gaussians():
    """A well-separated 4-cluster dataset shared across tests (read-only)."""
    x, y = gaussian_mixture(n_points=2000, n_dims=16, n_clusters=4, seed=42)
    x.setflags(write=False)
    y.setflags(write=False)
    return x, y


@pytest.fixture(scope="session")
def tiny_gaussians():
    """A faster 2-D, 3-cluster dataset for cheap tests (read-only)."""
    x, y = gaussian_mixture(n_points=600, n_dims=2, n_clusters=3, seed=7,
                            separation=8.0)
    x.setflags(write=False)
    y.setflags(write=False)
    return x, y
