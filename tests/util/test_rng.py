"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, seed_sequence_for_rank, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_is_allowed(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_independent(self):
        gens = spawn_generators(123, 3)
        streams = [g.random(100) for g in gens]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])

    def test_deterministic_from_same_seed(self):
        a = [g.random(4) for g in spawn_generators(9, 2)]
        b = [g.random(4) for g in spawn_generators(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(0)
        children = spawn_generators(g, 2)
        assert len(children) == 2


class TestSeedSequenceForRank:
    def test_rank_streams_differ(self):
        s0 = np.random.default_rng(seed_sequence_for_rank(5, 0, 4)).random(10)
        s1 = np.random.default_rng(seed_sequence_for_rank(5, 1, 4)).random(10)
        assert not np.array_equal(s0, s1)

    def test_same_rank_same_stream(self):
        a = np.random.default_rng(seed_sequence_for_rank(5, 2, 4)).random(10)
        b = np.random.default_rng(seed_sequence_for_rank(5, 2, 4)).random(10)
        assert np.array_equal(a, b)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            seed_sequence_for_rank(0, 4, 4)
        with pytest.raises(ValueError):
            seed_sequence_for_rank(0, -1, 4)
