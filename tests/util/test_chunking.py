"""Tests for repro.util.chunking."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util.chunking import balanced_counts, chunk_slices


class TestBalancedCounts:
    def test_even_split(self):
        assert balanced_counts(10, 5).tolist() == [2, 2, 2, 2, 2]

    def test_remainder_spread_to_front(self):
        assert balanced_counts(11, 4).tolist() == [3, 3, 3, 2]

    def test_more_parts_than_items(self):
        counts = balanced_counts(2, 5)
        assert counts.tolist() == [1, 1, 0, 0, 0]

    def test_sum_invariant(self):
        for total in (0, 1, 7, 100):
            for parts in (1, 3, 8):
                assert balanced_counts(total, parts).sum() == total

    def test_zero_parts_rejected(self):
        with pytest.raises(ValidationError):
            balanced_counts(10, 0)

    def test_negative_total_rejected(self):
        with pytest.raises(ValidationError):
            balanced_counts(-1, 2)


class TestChunkSlices:
    def test_covers_range_contiguously(self):
        slices = chunk_slices(10, 3)
        assert slices[0][0] == 0
        assert slices[-1][1] == 10
        for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
            assert a1 == b0

    def test_sizes_differ_by_at_most_one(self):
        sizes = [b - a for a, b in chunk_slices(17, 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_part(self):
        assert chunk_slices(5, 1) == [(0, 5)]

    def test_empty_total(self):
        assert chunk_slices(0, 3) == [(0, 0), (0, 0), (0, 0)]
