"""Tests for repro.util.timers."""

import time

from repro.util.timers import Timer, TimingRegistry


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_measures_sleep(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009


class TestTimingRegistry:
    def test_section_accumulates(self):
        reg = TimingRegistry()
        with reg.section("a"):
            pass
        with reg.section("a"):
            pass
        assert len(reg.sections["a"]) == 2

    def test_total_and_mean(self):
        reg = TimingRegistry()
        reg.add("x", 1.0)
        reg.add("x", 3.0)
        assert reg.total("x") == 4.0
        assert reg.mean("x") == 2.0

    def test_missing_section_zero(self):
        reg = TimingRegistry()
        assert reg.total("nope") == 0.0
        assert reg.mean("nope") == 0.0

    def test_summary_sorted_descending(self):
        reg = TimingRegistry()
        reg.add("small", 0.1)
        reg.add("big", 5.0)
        keys = list(reg.summary().keys())
        assert keys == ["big", "small"]

    def test_clear(self):
        reg = TimingRegistry()
        reg.add("x", 1.0)
        reg.clear()
        assert list(reg.names()) == []
