"""Tests for repro.util.timers."""

import time

from repro.util.timers import Timer


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_measures_sleep(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_timing_registry_shim_is_gone(self):
        # The deprecated TimingRegistry bridge was removed; phase timing
        # goes through repro.obs (trace.span / registry counters) now.
        import repro.util
        import repro.util.timers as timers

        assert not hasattr(timers, "TimingRegistry")
        assert not hasattr(repro.util, "TimingRegistry")
        assert "TimingRegistry" not in repro.util.__all__
