"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    check_array_2d,
    check_finite,
    check_in_range,
    check_positive_int,
    check_probability,
)


class TestCheckArray2D:
    def test_passthrough(self):
        x = np.zeros((3, 2))
        out = check_array_2d(x)
        assert out.shape == (3, 2)

    def test_1d_promoted_to_column(self):
        out = check_array_2d(np.arange(4))
        assert out.shape == (4, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError):
            check_array_2d(np.zeros((2, 2, 2)))

    def test_min_rows_enforced(self):
        with pytest.raises(ValidationError, match="row"):
            check_array_2d(np.zeros((1, 3)), min_rows=2)

    def test_min_cols_enforced(self):
        with pytest.raises(ValidationError, match="column"):
            check_array_2d(np.zeros((3, 1)), min_cols=2)

    def test_contiguous_float64_output(self):
        x = np.asfortranarray(np.ones((4, 3), dtype=np.float32))
        out = check_array_2d(x)
        assert out.flags["C_CONTIGUOUS"]
        assert out.dtype == np.float64

    def test_list_input_accepted(self):
        out = check_array_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_allow_empty(self):
        out = check_array_2d(np.zeros((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)


class TestCheckFinite:
    def test_ok(self):
        x = np.ones(3)
        assert check_finite(x) is x

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]))

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            check_finite(np.array([np.inf, 1.0]))


class TestCheckPositiveInt:
    def test_ok(self):
        assert check_positive_int(3, "x") == 3

    def test_numpy_int_ok(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(3.0, "x")

    def test_below_minimum(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x", minimum=1)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_ok(self, v):
        assert check_probability(v, "p") == v

    @pytest.mark.parametrize("v", [-0.1, 1.1])
    def test_out_of_range(self, v):
        with pytest.raises(ValidationError):
            check_probability(v, "p")

    def test_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("half", "p")


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range(1.0, "x", low=1.0, high=2.0) == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, "x", low=1.0, inclusive=False)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(float("nan"), "x")

    def test_high_violation(self):
        with pytest.raises(ValidationError):
            check_in_range(3.0, "x", high=2.0)
