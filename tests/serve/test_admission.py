"""Admission control, circuit breaking, and graceful drain.

Unit tests drive :class:`AdmissionController` / :class:`CircuitBreaker`
with an injected fake clock so token refills and cooldowns are exact.
The end-to-end tests then check the wiring: typed shed errors over the
wire, observability ops bypassing admission while draining, and the
overload property — every request the load generator sends gets exactly
one terminal outcome even when the server drains mid-run.
"""

import threading

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ShedError,
    ValidationError,
)
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchPolicy,
    CircuitBreaker,
    ModelRegistry,
    ServeClient,
    resolve_deadline,
    run_closed_loop,
    serve_in_thread,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestAdmissionPolicy:
    @pytest.mark.parametrize("kw", [
        {"rate": 0.0},
        {"rate": -1.0},
        {"burst": 0},
        {"max_in_flight": 0},
        {"default_deadline_ms": 0},
        {"max_deadline_ms": -5},
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValidationError):
            AdmissionPolicy(**kw)

    def test_default_admits_everything(self):
        ctl = AdmissionController()
        for _ in range(1000):
            ctl.try_admit()
        assert ctl.in_flight == 1000
        assert ctl.shed_counts() == {}


class TestTokenBucket:
    def test_burst_then_rate_shed(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(rate=10.0, burst=2), clock=clock
        )
        ctl.try_admit()
        ctl.try_admit()
        with pytest.raises(ShedError, match="shed"):
            ctl.try_admit()
        assert ctl.shed_counts() == {"rate": 1}

    def test_refill_restores_admission(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(rate=10.0, burst=1), clock=clock
        )
        ctl.try_admit()
        with pytest.raises(ShedError):
            ctl.try_admit()
        clock.advance(0.1)  # exactly one token at 10 rps
        ctl.try_admit()

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionPolicy(rate=100.0, burst=3), clock=clock
        )
        clock.advance(60.0)  # a long idle period must not bank 6000 tokens
        for _ in range(3):
            ctl.try_admit()
        with pytest.raises(ShedError):
            ctl.try_admit()


class TestInFlightAndDrain:
    def test_in_flight_bound_and_release(self):
        ctl = AdmissionController(AdmissionPolicy(max_in_flight=2))
        ctl.try_admit()
        ctl.try_admit()
        with pytest.raises(ShedError):
            ctl.try_admit()
        assert ctl.shed_counts() == {"in_flight": 1}
        ctl.release()
        ctl.try_admit()  # slot freed
        assert ctl.in_flight == 2

    def test_draining_sheds_everything(self):
        ctl = AdmissionController()
        ctl.start_draining()
        assert ctl.draining
        with pytest.raises(ShedError, match="draining"):
            ctl.try_admit()
        assert ctl.shed_counts() == {"draining": 1}


class TestCircuitBreaker:
    def _tripped(self, clock):
        cb = CircuitBreaker(threshold=2, cooldown_s=1.0, clock=clock)
        cb.record_failure()
        cb.record_failure()
        assert cb.state == "open"
        return cb

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(cooldown_s=0)

    def test_trips_only_on_consecutive_failures(self):
        cb = CircuitBreaker(threshold=3)
        for _ in range(5):
            cb.record_failure()
            cb.record_failure()
            cb.record_success()  # resets the streak
        assert cb.state == "closed"
        assert cb.trips == 0

    def test_open_fails_fast_until_cooldown(self):
        clock = FakeClock()
        cb = self._tripped(clock)
        with pytest.raises(CircuitOpenError):
            cb.allow()
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            cb.allow()

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        cb = self._tripped(clock)
        clock.advance(1.5)
        cb.allow()  # the probe
        assert cb.state == "half_open"
        with pytest.raises(CircuitOpenError, match="probe"):
            cb.allow()  # concurrent request during the probe window
        cb.record_success()
        assert cb.state == "closed"
        cb.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        cb = self._tripped(clock)
        clock.advance(1.5)
        cb.allow()
        cb.record_failure()
        assert cb.state == "open"
        assert cb.trips == 2
        with pytest.raises(CircuitOpenError):
            cb.allow()

    def test_neutral_outcome_frees_probe_without_moving_state(self):
        """A garbage request that happens to be the half-open probe must
        not wedge the breaker (probe slot stuck) nor close it (it said
        nothing about model health)."""
        clock = FakeClock()
        cb = self._tripped(clock)
        clock.advance(1.5)
        cb.allow()
        cb.record_neutral()  # e.g. the probe was a validation error
        assert cb.state == "half_open"
        cb.allow()  # slot free again: a real probe can proceed
        cb.record_success()
        assert cb.state == "closed"


class TestResolveDeadline:
    POLICY = AdmissionPolicy(max_deadline_ms=1000.0)

    def test_absent_deadline_is_none(self):
        assert resolve_deadline({"op": "predict"}, self.POLICY) is None

    def test_relative_budget_is_anchored(self):
        deadline = resolve_deadline(
            {"deadline_ms": 250}, self.POLICY, now=100.0
        )
        assert deadline == pytest.approx(100.25)

    def test_policy_default_applies(self):
        policy = AdmissionPolicy(default_deadline_ms=50.0)
        deadline = resolve_deadline({}, policy, now=0.0)
        assert deadline == pytest.approx(0.05)

    def test_clamped_to_max(self):
        deadline = resolve_deadline(
            {"deadline_ms": 10_000_000}, self.POLICY, now=0.0
        )
        assert deadline == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [0, -5, "soon", True, [100], float("nan")])
    def test_garbage_budget_is_validation_error(self, bad):
        with pytest.raises(ValidationError):
            resolve_deadline({"deadline_ms": bad}, self.POLICY)


class TestAdmissionEndToEnd:
    def test_rate_limited_server_sheds_typed(self, served_model, small_gaussians):
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        admission = AdmissionPolicy(rate=1e-6, burst=1)
        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002), admission=admission
        ) as handle:
            with ServeClient(*handle.address) as client:
                client.predict(x[0])  # the burst token
                with pytest.raises(ShedError):
                    client.predict(x[1])
                stats = client.stats()
                assert stats["shed_by_reason"].get("rate", 0) >= 1
                assert stats["shed_total"] >= 1

    def test_observability_bypasses_admission_while_draining(
        self, served_model, small_gaussians
    ):
        """Priority lanes: healthz / stats / metrics / model-info answer
        even when every predict is shed — including during a drain."""
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002)
        ) as handle:
            with ServeClient(*handle.address) as client:
                client.predict(x[0])
                handle.server.admission.start_draining()
                with pytest.raises(ShedError, match="draining"):
                    client.predict(x[1])
                assert client.healthz()["status"] == "draining"
                assert client.stats()["draining"] is True
                assert "prometheus" in client.metrics()
                assert client.model_info()["n_features"] == 16

    def test_shed_is_not_counted_as_server_error(
        self, served_model, small_gaussians
    ):
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        admission = AdmissionPolicy(rate=1e-6, burst=1)
        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002), admission=admission
        ) as handle:
            with ServeClient(*handle.address) as client:
                client.predict(x[0])
                for _ in range(5):
                    with pytest.raises(ShedError):
                        client.predict(x[1])
                stats = client.stats()
                assert stats["errors_total"] == 0


class TestOverloadDrainProperty:
    def test_every_request_gets_exactly_one_terminal_outcome(
        self, served_model, small_gaussians
    ):
        """Overload the server and drain it mid-run: every request must
        land in exactly one outcome bucket — no hung futures, no double
        counting — and the failures must be explicit (zero client
        timeouts)."""
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        admission = AdmissionPolicy(rate=200.0, burst=20, max_in_flight=8)
        handle = serve_in_thread(
            registry,
            policy=BatchPolicy(max_delay_s=0.002),
            admission=admission,
            drain_s=2.0,
        )
        stopper = threading.Timer(0.3, handle.stop)
        stopper.start()
        try:
            report = run_closed_loop(
                *handle.address,
                x[:64],
                n_requests=400,
                n_clients=8,
                deadline_ms=2000.0,
                request_timeout_s=10.0,
            )
        finally:
            stopper.cancel()
            handle.stop()
        assert report.requests_sent == 400
        assert sum(report.outcomes.values()) == report.requests_sent
        assert report.requests_ok + report.requests_failed == 400
        # Overload + drain must degrade explicitly, never by hanging the
        # client until its own timeout fires.
        assert report.outcomes["timeout"] == 0
        assert report.shed_total > 0
