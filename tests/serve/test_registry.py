"""Tests for the versioned model registry (atomic hot-swap semantics)."""

import threading

import numpy as np
import pytest

from repro.errors import ServeError, ValidationError
from repro.serve import ModelRegistry


class TestPublish:
    def test_versions_monotonic_from_one(self, served_model, alt_model):
        reg = ModelRegistry()
        assert reg.publish(served_model) == 1
        assert reg.publish(alt_model) == 2
        assert reg.publish(served_model) == 3

    def test_current_returns_latest(self, served_model, alt_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        reg.publish(alt_model)
        assert reg.current().version == 2
        assert reg.current().model is alt_model

    def test_empty_registry_raises(self):
        reg = ModelRegistry()
        with pytest.raises(ServeError):
            reg.current()
        assert reg.current_or_none() is None

    def test_only_models_accepted(self):
        reg = ModelRegistry()
        with pytest.raises(ValidationError):
            reg.publish("not a model")

    def test_fingerprint_matches_model(self, served_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        assert reg.current().fingerprint == served_model.fingerprint()

    def test_tag_recorded(self, served_model):
        reg = ModelRegistry()
        reg.publish(served_model, tag="nightly")
        assert reg.current().tag == "nightly"

    def test_info_is_json_friendly(self, served_model):
        import json

        reg = ModelRegistry()
        reg.publish(served_model)
        json.dumps(reg.info())  # must not raise
        assert reg.info()["current"]["version"] == 1


class TestHistory:
    def test_history_bounded(self, served_model):
        reg = ModelRegistry(max_history=2)
        for _ in range(6):
            reg.publish(served_model)
        assert reg.versions() == [4, 5, 6]  # 2 retained + current
        assert len(reg) == 3

    def test_get_retained_version(self, served_model, alt_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        reg.publish(alt_model)
        assert reg.get(1).model is served_model
        assert reg.get(2).model is alt_model
        with pytest.raises(ServeError):
            reg.get(99)

    def test_rollback_previous(self, served_model, alt_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        reg.publish(alt_model)
        new_version = reg.rollback()
        assert new_version == 3  # versions never move backwards
        assert reg.current().model is served_model

    def test_rollback_specific_version(self, served_model, alt_model):
        reg = ModelRegistry()
        reg.publish(served_model)  # v1
        reg.publish(alt_model)     # v2
        reg.publish(alt_model)     # v3
        reg.rollback(version=1)
        assert reg.current().model is served_model

    def test_rollback_empty_history_raises(self, served_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        with pytest.raises(ServeError):
            reg.rollback()


class TestHotSwap:
    def test_subscriber_notified(self, served_model):
        reg = ModelRegistry()
        seen = []
        reg.subscribe(lambda record: seen.append(record.version))
        reg.publish(served_model)
        reg.publish(served_model)
        assert seen == [1, 2]

    def test_swap_count(self, served_model):
        reg = ModelRegistry()
        reg.publish(served_model)
        assert reg.swaps == 0  # first publish is an install, not a swap
        reg.publish(served_model)
        assert reg.swaps == 1

    def test_concurrent_publish_and_read_consistent(self, served_model, alt_model):
        """Readers always observe a fully formed record, never a mixture."""
        reg = ModelRegistry()
        reg.publish(served_model)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                record = reg.current()
                # A torn swap would pair one version's model with another's
                # fingerprint; recompute to prove the pairing is intact.
                if record.fingerprint != record.model.fingerprint():
                    bad.append(record.version)  # pragma: no cover

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(30):
            reg.publish(served_model if i % 2 else alt_model)
        stop.set()
        for t in threads:
            t.join()
        assert not bad
        assert reg.current().version == 31

    def test_streaming_refresh_publishes(self, small_gaussians):
        """StreamingKeyBin2.refresh(publish_to=...) hot-swaps the registry."""
        from repro import StreamingKeyBin2

        x, _ = small_gaussians
        reg = ModelRegistry()
        skb = StreamingKeyBin2(seed=0)
        skb.partial_fit(x[:1000])
        skb.refresh(publish_to=reg)
        assert reg.current().version == 1
        assert reg.current().model is skb.model_
        skb.partial_fit(x[1000:])
        skb.refresh(publish_to=reg)
        assert reg.current().version == 2
        assert reg.current().model is skb.model_
