"""ServeClient retry semantics: idempotent ops only, bounded, backed off."""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.serve import ModelRegistry, ServeClient, serve_in_thread
from repro.serve.client import IDEMPOTENT_OPS, _ConnectionLost


@pytest.fixture()
def retry_registry():
    """Fresh default obs registry so retry counters are test-local."""
    reg = MetricsRegistry()
    previous = set_default_registry(reg)
    yield reg
    set_default_registry(previous)


def _retry_count(reg, op):
    fam = reg.get("serve_client_retries_total")
    if fam is None:
        return 0
    return sum(
        s["value"] for s in fam.snapshot()["samples"]
        if s["labels"]["op"] == op
    )


class _FlakyServer:
    """Tiny line-JSON server that kills its first ``drop_first`` connections.

    A dropped connection is accepted and immediately closed — the client's
    next read returns EOF, the ambiguous failure the retry layer handles.
    Later connections answer every request with ``{"ok": true, "op": ...}``.
    """

    def __init__(self, drop_first=0):
        self.drop_first = drop_first
        self.accepts = 0
        self.requests = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._listener.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            self.accepts += 1
            if self.accepts <= self.drop_first:
                conn.close()
                continue
            threading.Thread(
                target=self._answer, args=(conn,), daemon=True
            ).start()

    def _answer(self, conn):
        with conn, conn.makefile("rwb") as fh:
            while True:
                line = fh.readline()
                if not line:
                    return
                payload = json.loads(line)
                self.requests.append(payload["op"])
                fh.write(json.dumps({"ok": True, "op": payload["op"]})
                         .encode() + b"\n")
                fh.flush()

    def wait_accepts(self, n, timeout=5.0):
        """Block until ``n`` connections were accepted (handshake alone
        completes via the listen backlog, before the accept loop runs)."""
        deadline = time.monotonic() + timeout
        while self.accepts < n:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"server accepted {self.accepts}/{n} connections"
                )
            time.sleep(0.01)

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self._listener.close()


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestConnectRetry:
    def test_connect_refused_then_succeeds(self, retry_registry):
        """The server comes up late; a retrying client rides it out."""
        # Pick the port up front so the client dials a known address that
        # refuses until the server binds it.
        srv_holder = _FlakyServer()
        port = srv_holder.port
        srv_holder.close()  # port now refuses connections

        def bring_up():
            time.sleep(0.3)
            listener = socket.create_server(("127.0.0.1", port))
            conn, _ = listener.accept()
            with conn, conn.makefile("rwb") as fh:
                line = fh.readline()
                fh.write(json.dumps({"ok": True}).encode() + b"\n")
                fh.flush()
            listener.close()

        threading.Thread(target=bring_up, daemon=True).start()
        client = ServeClient("127.0.0.1", port, timeout=5.0, retries=40,
                             backoff=0.02, backoff_max=0.1, jitter=0.0)
        assert client.healthz()["ok"] is True
        client.close()
        assert _retry_count(retry_registry, "connect") >= 1

    def test_zero_retries_raises_immediately(self):
        port = _free_port()
        t0 = time.monotonic()
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient("127.0.0.1", port, timeout=2.0, retries=0)
        assert time.monotonic() - t0 < 2.0

    def test_bad_retry_config_rejected(self):
        with pytest.raises(ServeError):
            ServeClient(retries=-1)
        with pytest.raises(ServeError):
            ServeClient(jitter=1.5)


class TestIdempotentRetry:
    def test_dropped_connection_retried_and_counted(self, retry_registry):
        srv = _FlakyServer(drop_first=0)
        try:
            client = ServeClient("127.0.0.1", srv.port, timeout=5.0,
                                 retries=5, backoff=0.01, jitter=0.0)
            # Kill the live connection server-side by draining accepts:
            # simulate with a fresh flaky server is racy, so instead close
            # the client's socket under it — the next request sees EOF/reset
            # and must transparently reconnect.
            srv.wait_accepts(1)
            client._sock.shutdown(socket.SHUT_RDWR)
            out = client.healthz()
            assert out["ok"] is True
            srv.wait_accepts(2)
            assert srv.accepts == 2
            assert _retry_count(retry_registry, "healthz") >= 1
            client.close()
        finally:
            srv.close()

    def test_mutating_ops_never_retried(self, retry_registry):
        """reload/shutdown must surface the failure, not replay it."""
        srv = _FlakyServer()
        try:
            client = ServeClient("127.0.0.1", srv.port, timeout=5.0,
                                 retries=5, backoff=0.01, jitter=0.0)
            srv.wait_accepts(1)
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(ServeError):
                client.reload("/tmp/whatever.kb2")
            time.sleep(0.3)                  # would-be reconnect window
            assert srv.accepts == 1          # no reconnect happened
            assert "reload" not in srv.requests
            assert _retry_count(retry_registry, "reload") == 0
            client.close()
        finally:
            srv.close()

    def test_reload_and_shutdown_not_marked_idempotent(self):
        assert "reload" not in IDEMPOTENT_OPS
        assert "shutdown" not in IDEMPOTENT_OPS

    def test_retries_exhausted_raises(self, retry_registry):
        srv = _FlakyServer(drop_first=100)
        try:
            client = ServeClient("127.0.0.1", srv.port, timeout=5.0,
                                 retries=2, backoff=0.01, jitter=0.0)
            with pytest.raises(ServeError):
                client.healthz()
            assert _retry_count(retry_registry, "healthz") == 2
        finally:
            srv.close()


class TestBackoff:
    def _bare_client(self, **kw):
        client = ServeClient.__new__(ServeClient)
        client.backoff = kw.get("backoff", 0.05)
        client.backoff_max = kw.get("backoff_max", 0.2)
        client.jitter = kw.get("jitter", 0.0)
        import random
        client._rng = random.Random(0)
        return client

    def test_exponential_growth_with_cap(self, monkeypatch):
        client = self._bare_client()
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        for attempt in range(4):
            client._backoff_sleep(attempt)
        assert slept == [0.05, 0.1, 0.2, 0.2]

    def test_jitter_stays_within_band(self, monkeypatch):
        client = self._bare_client(jitter=0.25)
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        for _ in range(50):
            client._backoff_sleep(0)
        assert all(0.05 * 0.75 <= s <= 0.05 * 1.25 for s in slept)
        assert len(set(slept)) > 1       # jitter actually varies


class TestAgainstRealServer:
    def test_retrying_client_works_end_to_end(self, served_model):
        registry = ModelRegistry()
        registry.publish(served_model)
        with serve_in_thread(registry) as handle:
            host, port = handle.address
            with ServeClient(host, port, retries=3, backoff=0.01,
                             jitter=0.0) as client:
                n = int(client.model_info()["n_features"])
                result = client.predict(np.zeros(n, dtype=np.float64))
                assert isinstance(result.label, int)
                assert client.healthz()["ok"] is True
