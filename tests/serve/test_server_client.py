"""End-to-end tests: TCP server, clients, load generator, hot-swap, CLI."""

import json
import threading
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import (
    BatchPolicy,
    InferenceService,
    ModelRegistry,
    ServeClient,
    run_closed_loop,
    run_open_loop,
    serve_in_thread,
)


@pytest.fixture()
def live(served_model):
    """A registry + running server + connected client, torn down cleanly."""
    registry = ModelRegistry()
    registry.publish(served_model)
    with serve_in_thread(registry, policy=BatchPolicy(max_delay_s=0.002)) as handle:
        with ServeClient(*handle.address) as client:
            yield registry, handle, client


class TestProtocol:
    def test_healthz(self, live):
        _, _, client = live
        health = client.healthz()
        assert health["status"] == "serving"
        assert health["version"] == 1

    def test_predict_single_matches_local(self, live, small_gaussians, served_model):
        _, _, client = live
        x, _ = small_gaussians
        expected = served_model.predict(x[:20])
        for i in range(20):
            result = client.predict(x[i])
            assert result.label == expected[i]
            assert result.version == 1
            assert result.fingerprint == served_model.fingerprint()

    def test_predict_batch_matches_local(self, live, small_gaussians, served_model):
        _, _, client = live
        x, _ = small_gaussians
        result = client.predict(x[:64])
        assert result.labels == [int(v) for v in served_model.predict(x[:64])]

    def test_model_info(self, live, served_model):
        _, _, client = live
        info = client.model_info()
        assert info["n_clusters"] == served_model.n_clusters
        assert info["n_features"] == 16
        assert info["fingerprint"] == served_model.fingerprint()

    def test_stats_shape(self, live, small_gaussians):
        _, _, client = live
        x, _ = small_gaussians
        client.predict(x[0])
        stats = client.stats()
        assert stats["requests_total"] >= 1
        assert "batch_size_hist" in stats
        assert "cache" in stats and "hit_rate" in stats["cache"]
        assert stats["registry"]["current"]["version"] == 1

    def test_wrong_dimensionality_is_clean_error(self, live):
        _, _, client = live
        with pytest.raises(ServeError, match="features"):
            client.predict(np.zeros(7))

    def test_malformed_json_is_clean_error(self, live):
        _, _, client = live
        client._file.write(b"{not json\n")
        client._file.flush()
        response = json.loads(client._file.readline())
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_unknown_op_is_clean_error(self, live):
        _, _, client = live
        response = client.request({"op": "transmogrify"})
        assert response["ok"] is False

    def test_predict_without_x_is_clean_error(self, live):
        _, _, client = live
        response = client.request({"op": "predict"})
        assert response["ok"] is False

    def test_connect_refused_is_serve_error(self):
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient("127.0.0.1", 1, timeout=0.5)


class TestBadInput:
    """Hostile/buggy client payloads must get clean error responses —
    never a dropped connection, a hung request, or a bricked server."""

    def test_non_numeric_x_is_clean_error(self, live, small_gaussians):
        _, _, client = live
        response = client.request({"op": "predict", "x": ["a", "b"]})
        assert response["ok"] is False
        assert "numeric" in response["error"]
        # Same connection keeps working afterwards.
        x, _ = small_gaussians
        assert client.predict(x[0]).version == 1

    def test_ragged_batch_is_clean_error(self, live):
        _, _, client = live
        response = client.request(
            {"op": "predict", "x": [[1.0, 2.0], [3.0]]}
        )
        assert response["ok"] is False

    def test_nested_garbage_x_is_clean_error(self, live):
        _, _, client = live
        response = client.request({"op": "predict", "x": {"not": "a point"}})
        assert response["ok"] is False

    def test_nan_point_rejected_individually(self, live, small_gaussians):
        _, _, client = live
        bad = [float("nan")] * 16
        response = client.request({"op": "predict", "x": bad})
        assert response["ok"] is False
        assert "non-finite" in response["error"]
        x, _ = small_gaussians
        assert client.predict(x[0]).version == 1

    def test_bad_rows_do_not_poison_concurrent_clients(self, live,
                                                       small_gaussians):
        """Single-point rows are validated BEFORE entering the micro-batcher,
        so a client spamming wrong-length / NaN points cannot fail the flush
        that labels other clients' valid requests."""
        _, handle, _ = live
        x, _ = small_gaussians
        host, port = handle.address
        stop = threading.Event()
        bad_rejections = []

        def attacker():
            with ServeClient(host, port) as bad_client:
                while not stop.is_set():
                    for payload in ([1.0, 2.0, 3.0], [float("nan")] * 16):
                        response = bad_client.request(
                            {"op": "predict", "x": payload}
                        )
                        bad_rejections.append(response["ok"])

        thread = threading.Thread(target=attacker)
        thread.start()
        try:
            report = run_closed_loop(host, port, x[:100], n_requests=600,
                                     n_clients=6)
        finally:
            stop.set()
            thread.join()
        assert report.requests_failed == 0
        assert report.requests_ok == 600
        assert bad_rejections and not any(bad_rejections)

    def test_server_survives_bad_input_storm(self, live, small_gaussians):
        """After a burst of malformed requests the batcher worker is still
        alive and serving (the historical failure mode was a dead worker:
        submits accepted, never flushed)."""
        _, _, client = live
        for payload in (["x"], [[1.0], [2.0, 3.0]], [float("inf")] * 16,
                        [0.0] * 3, []):
            assert client.request({"op": "predict", "x": payload})["ok"] is False
        x, _ = small_gaussians
        result = client.predict(x[0])
        assert result.version == 1
        assert client.healthz()["queue_depth"] == 0


class TestAdminGating:
    def test_admin_ops_can_be_disabled(self, served_model, small_gaussians):
        registry = ModelRegistry()
        registry.publish(served_model)
        x, _ = small_gaussians
        with serve_in_thread(registry, allow_admin=False) as handle:
            with ServeClient(*handle.address) as client:
                with pytest.raises(ServeError, match="disabled"):
                    client.reload("/etc/passwd")
                with pytest.raises(ServeError, match="disabled"):
                    client.shutdown()
                # Non-admin ops are unaffected.
                assert client.predict(x[0]).version == 1
                assert client.healthz()["status"] == "serving"

    def test_loopback_default_allows_admin(self, live, tmp_path, alt_model):
        _, _, client = live
        path = tmp_path / "swap.json"
        alt_model.save(path)
        assert client.reload(str(path)) == 2


class TestStartupFailure:
    def test_bind_failure_raises_instead_of_broken_handle(self, served_model):
        import socket

        registry = ModelRegistry()
        registry.publish(served_model)
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            taken_port = blocker.getsockname()[1]
            with pytest.raises(ServeError, match="failed to start"):
                serve_in_thread(registry, port=taken_port)
        finally:
            blocker.close()


class TestHotSwap:
    def test_reload_from_disk_bumps_version(self, live, alt_model, tmp_path,
                                            small_gaussians):
        registry, _, client = live
        path = tmp_path / "next.json"
        alt_model.save(path)
        new_version = client.reload(str(path), tag="from-disk")
        assert new_version == 2
        assert registry.current().tag == "from-disk"
        x, _ = small_gaussians
        result = client.predict(x[0])
        assert result.version == 2

    def test_reload_missing_file_keeps_serving(self, live, tmp_path,
                                               small_gaussians):
        """A bad reload path is a clean error, not a dropped connection,
        and the previously published model keeps answering."""
        _, _, client = live
        response = client.request(
            {"op": "reload", "path": str(tmp_path / "missing.json")}
        )
        assert response["ok"] is False
        assert "reload failed" in response["error"]
        # Same connection still works, same version still serves.
        x, _ = small_gaussians
        result = client.predict(x[0])
        assert result.version == 1

    def test_reload_corrupt_file_keeps_serving(self, live, tmp_path,
                                               small_gaussians):
        _, _, client = live
        bad = tmp_path / "corrupt.json"
        bad.write_text("{\"not\": \"a model\"}")
        response = client.request({"op": "reload", "path": str(bad)})
        assert response["ok"] is False
        x, _ = small_gaussians
        assert client.predict(x[0]).version == 1

    def test_swap_under_load_zero_failures(self, live, alt_model,
                                           small_gaussians):
        """The acceptance-criteria hot-swap: no failed or mixed responses."""
        registry, handle, _ = live
        x, _ = small_gaussians
        host, port = handle.address
        v1_fp = registry.current().fingerprint
        v2_fp = alt_model.fingerprint()

        swapped = threading.Event()

        def swap_soon():
            # Land mid-run deterministically: wait until a third of the
            # traffic has been served, then publish (5s deadline fallback).
            deadline = time.time() + 5.0
            while (handle.server.stats.requests_total < 500
                   and time.time() < deadline):
                time.sleep(0.002)
            registry.publish(alt_model)
            swapped.set()

        swapper = threading.Thread(target=swap_soon)
        swapper.start()
        report = run_closed_loop(host, port, x[:200], n_requests=1500,
                                 n_clients=8)
        swapper.join()
        assert swapped.is_set()
        assert report.requests_failed == 0
        assert report.requests_ok == 1500
        # Every response was labeled by exactly one version, old or new.
        assert report.versions_seen <= {1, 2}
        assert 2 in report.versions_seen  # the swap actually took traffic
        assert v1_fp != v2_fp  # the two versions are really different models

    def test_batch_never_mixes_versions(self, served_model, alt_model,
                                        small_gaussians):
        """A batch grabs ONE registry snapshot even while publishes storm."""
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        service = InferenceService(registry)
        stop = threading.Event()

        def storm():
            i = 0
            while not stop.is_set():
                registry.publish(alt_model if i % 2 else served_model)
                i += 1

        thread = threading.Thread(target=storm)
        thread.start()
        try:
            for _ in range(50):
                labels, record = service.predict_rows(x[:32])
                expected = record.model.predict(x[:32])
                assert np.array_equal(labels, expected)
        finally:
            stop.set()
            thread.join()


class TestLoadGenerator:
    def test_closed_loop_all_ok(self, live, small_gaussians):
        _, handle, _ = live
        x, _ = small_gaussians
        report = run_closed_loop(*handle.address, x[:50], n_requests=300,
                                 n_clients=6)
        assert report.requests_ok == 300
        assert report.requests_failed == 0
        assert report.throughput_rps > 0
        q = report.latency_quantiles()
        assert q["p50"] <= q["p99"]
        assert "closed loop" in report.render()

    def test_open_loop_all_ok(self, live, small_gaussians):
        _, handle, _ = live
        x, _ = small_gaussians
        report = run_open_loop(*handle.address, x[:50], rate=500.0,
                               duration_s=0.4, n_connections=4)
        assert report.requests_failed == 0
        assert report.requests_sent >= 100  # ~0.4s at 500/s, minus ramp
        assert "open loop" in report.render()

    def test_micro_batching_engages_under_concurrency(self, live,
                                                      small_gaussians):
        _, handle, client = live
        x, _ = small_gaussians
        run_closed_loop(*handle.address, x[:50], n_requests=400, n_clients=8)
        stats = client.stats()
        assert stats["mean_batch_size"] > 1.5  # coalescing, not 1-by-1
        assert stats["cache"]["hits"] > 0


class TestLifecycle:
    def test_shutdown_op_stops_server(self, served_model):
        registry = ModelRegistry()
        registry.publish(served_model)
        handle = serve_in_thread(registry)
        client = ServeClient(*handle.address)
        client.shutdown()
        client.close()
        handle.thread.join(10)
        assert not handle.thread.is_alive()
        handle.stop()  # idempotent after self-shutdown

    def test_server_without_model_reports_not_serving(self):
        registry = ModelRegistry()  # empty — no model published yet
        with serve_in_thread(registry) as handle:
            with ServeClient(*handle.address) as client:
                health = client.healthz()
                assert health["status"] == "no-model"
                response = client.request({"op": "predict", "x": [0.0, 1.0]})
                assert response["ok"] is False

    def test_two_servers_same_registry(self, served_model, small_gaussians):
        """Scale-out: N front-ends can share one registry."""
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        with serve_in_thread(registry) as h1, serve_in_thread(registry) as h2:
            with ServeClient(*h1.address) as c1, ServeClient(*h2.address) as c2:
                assert c1.predict(x[0]).label == c2.predict(x[0]).label


class TestServeCLI:
    def test_serve_bench_demo_runs_clean(self, capsys):
        from repro.cli import main

        rc = main(["serve-bench", "--demo", "--requests", "120",
                   "--clients", "4", "--window-ms", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "loadgen (closed loop)" in out
        assert "0 failed" in out

    def test_serve_bench_open_mode(self, capsys):
        from repro.cli import main

        rc = main(["serve-bench", "--demo", "--mode", "open", "--rate", "300",
                   "--duration", "0.3", "--clients", "4"])
        assert rc == 0
        assert "open loop" in capsys.readouterr().out

    def test_serve_requires_model_or_demo(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve"])

    def test_legacy_experiments_still_dispatch(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out
