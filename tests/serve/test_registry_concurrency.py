"""S3: ModelRegistry rollback()/subscribe() under concurrent publish.

The registry is the consistency anchor of the whole serving stack — the
router's staged rollout and every replica's hot swap lean on three
properties checked here under real thread contention:

* version numbers are strictly monotonic and unique, even when
  publishers and rollbacks interleave;
* ``current()`` is never torn — readers always see a fully formed
  record whose fingerprint matches its model;
* a raising subscriber cannot wedge publication (the swap lands, other
  subscribers still run, the error is counted).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServeError
from repro.serve import ModelRegistry


@pytest.fixture
def two_models(served_model, alt_model):
    return served_model, alt_model


def test_concurrent_publish_versions_unique_and_monotonic(two_models):
    registry = ModelRegistry(max_history=64)
    model_a, model_b = two_models
    per_thread_versions = [[] for _ in range(6)]
    start = threading.Barrier(6)

    def publisher(idx):
        start.wait()
        model = model_a if idx % 2 else model_b
        for _ in range(20):
            per_thread_versions[idx].append(
                registry.publish(model, tag=f"t{idx}")
            )

    threads = [threading.Thread(target=publisher, args=(i,))
               for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    all_versions = sorted(v for vs in per_thread_versions for v in vs)
    assert all_versions == list(range(1, 121))  # unique, gap-free
    # Each thread saw its own publishes in increasing order.
    assert all(vs == sorted(vs) for vs in per_thread_versions)
    assert registry.current().version == 120


def test_current_reads_never_torn_under_publish(two_models):
    registry = ModelRegistry()
    model_a, model_b = two_models
    fp = {model_a.fingerprint(): model_a, model_b.fingerprint(): model_b}
    registry.publish(model_a)
    stop = threading.Event()
    torn = []

    def reader():
        last_version = 0
        while not stop.is_set():
            record = registry.current()
            # A torn read would pair a record with a foreign fingerprint
            # or run versions backwards.
            if fp[record.fingerprint] is not record.model:
                torn.append(record)
            if record.version < last_version:
                torn.append(record)
            last_version = record.version

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for t in readers:
        t.start()
    for i in range(200):
        registry.publish(model_a if i % 2 else model_b)
    stop.set()
    for t in readers:
        t.join()
    assert torn == []


def test_rollback_races_publish_without_corruption(two_models):
    registry = ModelRegistry(max_history=64)
    model_a, model_b = two_models
    registry.publish(model_a)
    registry.publish(model_b)
    start = threading.Barrier(4)
    errors = []

    def publisher():
        start.wait()
        for i in range(30):
            registry.publish(model_a if i % 2 else model_b)

    def roller():
        start.wait()
        for _ in range(30):
            try:
                registry.rollback()
            except ServeError as exc:  # pragma: no cover - timing dependent
                errors.append(exc)

    threads = [threading.Thread(target=publisher) for _ in range(2)]
    threads += [threading.Thread(target=roller) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # 2 seed publishes + 60 publishes + up to 60 rollback republishes.
    final = registry.current()
    assert not errors
    # Rollback republishes with a fresh, still-monotonic version: the
    # retained history never contains the current version twice.
    versions = [r.version for r in registry._history] + [final.version]
    assert len(versions) == len(set(versions))
    # And the version counter kept moving forward through all the races.
    assert registry.publish(model_a) == final.version + 1


def test_raising_subscriber_cannot_wedge_publication(two_models):
    registry = ModelRegistry()
    model_a, _ = two_models
    seen = []

    def bad_subscriber(record):
        raise RuntimeError("subscriber bug")

    def good_subscriber(record):
        seen.append(record.version)

    registry.subscribe(bad_subscriber)
    registry.subscribe(good_subscriber)
    v1 = registry.publish(model_a)
    v2 = registry.publish(model_a)
    assert (v1, v2) == (1, 2)
    assert seen == [1, 2]  # the later subscriber still ran, in order
    assert registry.subscriber_errors == 2
    assert registry.current().version == 2


def test_raising_subscriber_under_concurrent_publish(two_models):
    registry = ModelRegistry()
    model_a, model_b = two_models

    def flaky(record):
        if record.version % 3 == 0:
            raise ValueError("every third publish")

    registry.subscribe(flaky)
    threads = [
        threading.Thread(
            target=lambda m: [registry.publish(m) for _ in range(15)],
            args=(model_a if i % 2 else model_b,),
        )
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.current().version == 60
    assert registry.subscriber_errors == 60 // 3
