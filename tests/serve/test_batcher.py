"""Tests for the micro-batching request queue."""

import asyncio
import time

import numpy as np
import pytest

from repro.errors import QueueFullError, ServeError, ValidationError
from repro.serve import BatchPolicy, MicroBatcher, ServeStats


class _Recorder:
    """Fake model call that records the batch shapes it was handed."""

    def __init__(self, fail=False):
        self.batch_sizes = []
        self.fail = fail

    def __call__(self, rows):
        self.batch_sizes.append(rows.shape[0])
        if self.fail:
            raise ValidationError("boom")
        return rows[:, 0].astype(np.int64), type("R", (), {"version": 7})()


def run(coro):
    return asyncio.run(coro)


class TestPolicy:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValidationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValidationError):
            BatchPolicy(max_delay_s=-1)
        with pytest.raises(ValidationError):
            BatchPolicy(max_batch=10, max_queue=5)
        with pytest.raises(ValidationError):
            BatchPolicy(quiescence_s=-0.1)


class TestBatching:
    def test_single_submit_round_trips(self):
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(rec, BatchPolicy(max_delay_s=0.001)).start()
            label, extra = await batcher.submit(np.array([5.0, 1.0]))
            await batcher.stop()
            return label, extra, rec

        label, extra, rec = run(scenario())
        assert label == 5
        assert extra.version == 7
        assert rec.batch_sizes == [1]

    def test_concurrent_submits_coalesce(self):
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=64, max_delay_s=0.02)
            ).start()
            rows = [np.array([float(i), 0.0]) for i in range(40)]
            results = await asyncio.gather(*(batcher.submit(r) for r in rows))
            await batcher.stop()
            return results, rec

        results, rec = run(scenario())
        assert [lab for lab, _ in results] == list(range(40))
        # 40 concurrent submits must NOT become 40 model calls.
        assert max(rec.batch_sizes) > 1
        assert sum(rec.batch_sizes) == 40

    def test_max_batch_respected(self):
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=8, max_delay_s=0.02, max_queue=1000)
            ).start()
            rows = [np.array([float(i)]) for i in range(30)]
            await asyncio.gather(*(batcher.submit(r) for r in rows))
            await batcher.stop()
            return rec

        rec = run(scenario())
        assert max(rec.batch_sizes) <= 8
        assert sum(rec.batch_sizes) == 30

    def test_results_map_to_correct_callers(self):
        """Labels must come back to the caller whose row produced them."""
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=16, max_delay_s=0.01)
            ).start()

            async def one(i):
                label, _ = await batcher.submit(np.array([float(i), -1.0]))
                return i, label

            pairs = await asyncio.gather(*(one(i) for i in range(50)))
            await batcher.stop()
            return pairs

        for i, label in run(scenario()):
            assert label == i

    def test_stats_recorded(self):
        async def scenario():
            stats = ServeStats()
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=8, max_delay_s=0.01), stats=stats
            ).start()
            await asyncio.gather(
                *(batcher.submit(np.array([1.0])) for _ in range(20))
            )
            await batcher.stop()
            return stats

        stats = run(scenario())
        assert stats.batched_points_total == 20
        assert stats.batches_total >= 3  # max_batch=8 forces >= ceil(20/8)
        assert stats.versions_served == {7: 20}
        assert stats.snapshot()["mean_batch_size"] > 1


class TestFailureAndBackpressure:
    def test_predict_error_propagates_to_all_waiters(self):
        async def scenario():
            batcher = MicroBatcher(
                _Recorder(fail=True), BatchPolicy(max_delay_s=0.005)
            ).start()
            results = await asyncio.gather(
                *(batcher.submit(np.array([1.0])) for _ in range(5)),
                return_exceptions=True,
            )
            await batcher.stop()
            return results

        results = run(scenario())
        assert len(results) == 5
        assert all(isinstance(r, ValidationError) for r in results)

    def test_queue_full_rejects_fast(self):
        async def scenario():
            stats = ServeStats()
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=4, max_delay_s=0.01, max_queue=4),
                stats=stats,
            ).start()
            # Stage a backlog directly (the worker's wakeup event stays
            # clear, so it cannot drain mid-test) and verify the bound.
            loop = asyncio.get_running_loop()
            backlog = [
                (np.array([float(i)]), loop.create_future(), None,
                 time.monotonic(), None)
                for i in range(4)
            ]
            batcher._pending.extend(backlog)
            with pytest.raises(QueueFullError):
                await batcher.submit(np.array([9.0]))
            assert stats.rejected_total == 1
            await batcher.stop()  # drains the staged backlog cleanly
            return [fut.result() for _, fut, _, _, _ in backlog]

        results = run(scenario())
        assert [lab for lab, _ in results] == [0, 1, 2, 3]

    def test_submit_before_start_raises(self):
        async def scenario():
            batcher = MicroBatcher(_Recorder())
            with pytest.raises(ServeError):
                await batcher.submit(np.array([1.0]))

        run(scenario())

    def test_double_start_raises(self):
        async def scenario():
            batcher = MicroBatcher(_Recorder()).start()
            with pytest.raises(ServeError):
                batcher.start()
            await batcher.stop()

        run(scenario())

    def test_ragged_rows_fail_batch_without_killing_worker(self):
        """Rows of mismatched lengths in one flush must reject that batch's
        futures (np.asarray cannot stack them) — not crash the worker and
        leave every later submit hanging forever."""
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=8, max_delay_s=0.01)
            ).start()
            bad = await asyncio.gather(
                batcher.submit(np.array([1.0, 2.0])),
                batcher.submit(np.array([1.0, 2.0, 3.0])),
                return_exceptions=True,
            )
            # The worker survived: a well-formed follow-up still round-trips.
            label, _ = await batcher.submit(np.array([4.0, 0.0]))
            await batcher.stop()
            return bad, label

        bad, label = run(scenario())
        assert all(isinstance(r, Exception) for r in bad)
        assert label == 4

    def test_worker_crash_fails_pending_and_marks_dead(self):
        """If the worker loop itself dies, pending futures must be failed
        (not left hanging) and later submits must raise, not enqueue rows
        nobody will ever flush."""
        async def scenario():
            batcher = MicroBatcher(
                _Recorder(), BatchPolicy(max_batch=8, max_delay_s=0.01)
            ).start()

            def exploding_flush(batch):
                raise RuntimeError("synthetic worker bug")

            batcher._flush = exploding_flush
            with pytest.raises(ServeError, match="crashed"):
                await batcher.submit(np.array([1.0]))
            await asyncio.sleep(0)  # let the worker task finish unwinding
            with pytest.raises(ServeError, match="crashed"):
                batcher.submit_nowait(np.array([2.0]))
            assert batcher.queue_depth == 0

        run(scenario())

    def test_stop_drains_pending(self):
        async def scenario():
            rec = _Recorder()
            batcher = MicroBatcher(
                rec, BatchPolicy(max_batch=128, max_delay_s=1.0)
            ).start()
            futures = [
                asyncio.ensure_future(batcher.submit(np.array([float(i)])))
                for i in range(10)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await batcher.stop()    # must flush, not strand them
            return await asyncio.gather(*futures)

        results = run(scenario())
        assert [lab for lab, _ in results] == list(range(10))
