"""probe()/async_probe(): tight-deadline health checks with typed errors.

S1 contract: a dead or unreachable server surfaces as
:class:`ConnectionLostError` (a :class:`ServeError` with a ``reason``),
never as a raw ``OSError``/``ConnectionResetError`` — the router, the
supervisor, and operator scripts all branch on the same type.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.errors import ConnectionLostError, ServeError
from repro.serve import ModelRegistry, ServeClient, serve_in_thread
from repro.serve.client import PROBE_TIMEOUT_S, async_probe, probe


@pytest.fixture
def live_server(served_model):
    registry = ModelRegistry()
    registry.publish(served_model, tag="probe-test")
    with serve_in_thread(registry) as handle:
        yield handle


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_probe_live_server(live_server):
    payload = probe(*live_server.address)
    assert payload["status"] == "serving"
    assert payload["version"] == 1
    assert payload["fingerprint"]


def test_probe_dead_port_is_typed(live_server):
    port = _free_port()  # freed on context exit; nothing listens
    with pytest.raises(ConnectionLostError) as excinfo:
        probe("127.0.0.1", port, timeout=0.5)
    assert isinstance(excinfo.value, ServeError)
    assert excinfo.value.reason in ("refused", "reset", "timeout")


def test_probe_uses_a_fresh_connection(live_server):
    # Two probes must not share state: each opens, round-trips, closes.
    first = probe(*live_server.address)
    second = probe(*live_server.address)
    assert first["status"] == second["status"] == "serving"


def test_serve_client_probe_method(live_server):
    with ServeClient(*live_server.address) as client:
        payload = client.probe()
    assert payload["status"] == "serving"


def test_async_probe_live_and_dead(live_server):
    async def _go():
        ok = await async_probe(*live_server.address)
        assert ok["status"] == "serving"
        with pytest.raises(ConnectionLostError):
            await async_probe("127.0.0.1", _free_port(), timeout=0.5)

    asyncio.run(_go())


def test_probe_timeout_is_tight():
    # An unroutable-but-not-refusing address must fail within the probe
    # deadline, not a TCP connect timeout measured in minutes.
    import time

    t0 = time.perf_counter()
    with pytest.raises(ConnectionLostError):
        probe("10.255.255.1", 9, timeout=0.3)
    assert time.perf_counter() - t0 < 5.0
    assert PROBE_TIMEOUT_S <= 2.0  # the shared default stays tight


def test_killed_server_mid_session_is_typed(served_model):
    registry = ModelRegistry()
    registry.publish(served_model)
    handle = serve_in_thread(registry)
    client = ServeClient(*handle.address)
    try:
        assert client.request({"op": "healthz"})["ok"]
        handle.stop()
        with pytest.raises(ConnectionLostError) as excinfo:
            for _ in range(5):
                client.request({"op": "healthz"})
        assert excinfo.value.reason in ("closed", "reset", "refused")
    finally:
        client.close()
