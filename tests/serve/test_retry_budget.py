"""RetryBudget: the windowed fleet-wide retry cap, and the client hookup.

Pure unit tests drive the two-bucket sliding window with an injected
clock; the integration test shares one exhausted budget across a
retrying :class:`ServeClient` and shows it fails fast instead of
hammering a down server.
"""

from __future__ import annotations

import pytest

from repro.errors import ConnectionLostError, ValidationError
from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.serve import ServeClient
from repro.serve.admission import RetryBudget

from tests.serve.test_client_retry import _FlakyServer


@pytest.fixture
def retry_registry():
    """Fresh default obs registry so retry counters are test-local."""
    reg = MetricsRegistry()
    previous = set_default_registry(reg)
    yield reg
    set_default_registry(previous)


def _budget(**kwargs):
    clk = {"t": 0.0}
    kwargs.setdefault("window_s", 10.0)
    budget = RetryBudget(clock=lambda: clk["t"], **kwargs)
    return budget, clk


class TestWindowMath:
    def test_validation(self):
        for bad in (dict(ratio=-0.1), dict(ratio=1.5),
                    dict(min_retries=-1), dict(window_s=0)):
            with pytest.raises(ValidationError):
                RetryBudget(**bad)

    def test_min_floor_on_an_idle_fleet(self):
        budget, _ = _budget(ratio=0.2, min_retries=3)
        # No requests at all: the floor still allows a burst of 3.
        assert [budget.try_spend() for _ in range(4)] == [
            True, True, True, False
        ]
        assert budget.exhausted == 1

    def test_ratio_scales_with_request_rate(self):
        budget, _ = _budget(ratio=0.1, min_retries=0)
        assert not budget.try_spend()  # zero traffic, zero budget
        budget.note_request(100)
        spent = sum(budget.try_spend() for _ in range(15))
        assert spent == 10  # 0.1 × 100, not one more

    def test_previous_bucket_decays_linearly(self):
        budget, clk = _budget(ratio=0.1, min_retries=0)
        budget.note_request(100)
        # One full window later the traffic is all in the previous
        # bucket; halfway through the next window it counts at 50%.
        clk["t"] = 15.0
        assert budget.snapshot()["requests"] == pytest.approx(50.0)
        spent = sum(budget.try_spend() for _ in range(10))
        assert spent == 5

    def test_long_idle_resets_both_buckets(self):
        budget, clk = _budget(ratio=1.0, min_retries=0)
        budget.note_request(50)
        clk["t"] = 35.0  # > two windows idle
        assert budget.snapshot()["requests"] == 0.0
        assert not budget.try_spend()

    def test_snapshot_shape(self):
        budget, _ = _budget(ratio=0.5, min_retries=1)
        budget.note_request(4)
        assert budget.try_spend()
        snap = budget.snapshot()
        assert snap == {"requests": 4.0, "retries": 1.0, "exhausted": 0}


class TestClientIntegration:
    def test_exhausted_budget_fails_fast(self, retry_registry):
        """A shared budget at zero turns client retries into fail-fast."""
        server = _FlakyServer(drop_first=10**6)  # never answers
        budget = RetryBudget(ratio=0.0, min_retries=0)
        try:
            client = ServeClient("127.0.0.1", server.port, retries=5,
                                 backoff=0.01, jitter=0.0,
                                 retry_budget=budget)
            with pytest.raises(ConnectionLostError):
                client.healthz()
            client.close()
        finally:
            server.close()
        # retries=5 would mean up to 6 connections; the budget refused
        # the first retry, so the server saw exactly the free attempt.
        assert budget.exhausted == 1
        assert server.accepts <= 2  # connect + the one request attempt

    def test_budget_allows_normal_retries(self, retry_registry):
        server = _FlakyServer(drop_first=2)
        budget = RetryBudget(ratio=0.2, min_retries=3)
        try:
            with ServeClient("127.0.0.1", server.port, retries=5,
                             backoff=0.01, jitter=0.0,
                             retry_budget=budget) as client:
                assert client.healthz()["ok"] is True
        finally:
            server.close()
        assert budget.snapshot()["retries"] >= 1
