"""Fixtures shared by the serve-layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import KeyBin2


@pytest.fixture(scope="session")
def served_model(small_gaussians):
    """One fitted model reused (read-only) by every serve test."""
    x, _ = small_gaussians
    return KeyBin2(n_projections=4, seed=3).fit(x).model_


@pytest.fixture(scope="session")
def alt_model(small_gaussians):
    """A second, behaviorally distinct model (different seed) for swaps."""
    x, _ = small_gaussians
    return KeyBin2(n_projections=4, seed=11).fit(x).model_
