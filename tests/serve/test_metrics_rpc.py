"""The ``{"op": "metrics"}`` RPC: exposition content, healthz/stats extras."""

import numpy as np
import pytest

from repro.serve import BatchPolicy, ModelRegistry, ServeClient, serve_in_thread


@pytest.fixture()
def live(served_model):
    registry = ModelRegistry()
    registry.publish(served_model)
    with serve_in_thread(registry, policy=BatchPolicy(max_delay_s=0.002)) as handle:
        with ServeClient(*handle.address) as client:
            yield registry, handle, client


def _predict_some(client, n=6):
    rng = np.random.default_rng(0)
    for _ in range(n):
        client.predict(rng.normal(size=16))


class TestMetricsOp:
    def test_returns_both_exposition_forms(self, live):
        _registry, _handle, client = live
        _predict_some(client)
        payload = client.metrics()
        assert payload["ok"] is True
        assert isinstance(payload["prometheus"], str)
        assert isinstance(payload["metrics"], dict)

    def test_prometheus_text_contains_serve_and_core_series(self, live):
        _registry, _handle, client = live
        _predict_some(client)
        text = client.metrics()["prometheus"]
        # Serve counters with real traffic behind them.
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_points_total" in text
        assert "serve_cache_hits" in text
        assert "serve_uptime_seconds" in text
        # Core cross-layer families are declared even in a serve-only
        # process (ensure_core_series) so scrapers see stable series.
        assert "# TYPE phase_calls_total counter" in text
        assert "# TYPE insitu_consolidation_bytes_total counter" in text

    def test_json_form_has_request_counts(self, live):
        _registry, _handle, client = live
        _predict_some(client, n=5)
        fams = client.metrics()["metrics"]["families"]
        reqs = fams["serve_requests_total"]["samples"][0]["value"]
        assert reqs >= 5
        version_samples = fams["serve_points_by_version_total"]["samples"]
        assert sum(s["value"] for s in version_samples) >= 5

    def test_predict_phase_spans_recorded(self, live):
        _registry, _handle, client = live
        _predict_some(client)
        fams = client.metrics()["metrics"]["families"]
        phases = {
            s["labels"]["phase"]
            for s in fams["phase_calls_total"]["samples"]
        }
        # The batcher worker re-roots under "serve"; predict_rows nests
        # beneath the flush span.
        assert any(p.endswith("predict") for p in phases)
        assert any("flush" in p for p in phases)

    def test_model_identity_gauges(self, live):
        registry, _handle, client = live
        fams = client.metrics()["metrics"]["families"]
        version = fams["serve_model_version"]["samples"][0]["value"]
        assert version == registry.current().version

    def test_raw_request_form(self, live):
        _registry, _handle, client = live
        payload = client.request({"op": "metrics"})
        assert payload["ok"] is True
        assert "prometheus" in payload and "metrics" in payload


class TestHealthzExtras:
    def test_healthz_reports_fingerprint_and_uptime(self, live):
        registry, _handle, client = live
        health = client.healthz()
        record = registry.current()
        assert health["version"] == record.version
        assert health["fingerprint"] == record.fingerprint
        assert health["uptime_s"] >= 0.0


class TestStatsExtras:
    def test_stats_reports_model_identity(self, live):
        registry, _handle, client = live
        _predict_some(client)
        stats = client.stats()
        record = registry.current()
        assert stats["model_version"] == record.version
        assert stats["model_fingerprint"] == record.fingerprint
        assert stats["uptime_s"] >= 0.0

    def test_stats_exposes_batch_bucket_bounds(self, live):
        _registry, _handle, client = live
        _predict_some(client)
        stats = client.stats()
        hist = stats["batch_size_hist"]
        bounds = stats["batch_size_bucket_bounds"]
        assert hist  # at least one flush happened
        for floor in hist:
            # Power-of-two floor f covers [f, 2f), inclusive bound 2f-1.
            assert bounds[floor] == 2 * int(floor) - 1
