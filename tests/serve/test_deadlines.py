"""Per-request deadlines: expired work is shed, never hung.

The batcher-level tests pin the mechanism (shed at flush, before the
model call); the end-to-end tests pin the wiring: a ``deadline_ms``
budget rides the wire, expires while the request lingers in the batch
window, and comes back as a typed ``deadline_exceeded`` response — while
the queue-wait histogram records how long the row actually sat.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ServeError
from repro.serve import (
    BatchPolicy,
    MicroBatcher,
    ModelRegistry,
    ServeClient,
    serve_in_thread,
)
from repro.serve.stats import ServeStats


class TestBatcherDeadlines:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_expired_entry_shed_before_model_call(self):
        calls = {"n": 0}

        def predict_rows(rows):
            calls["n"] += 1
            return np.zeros(rows.shape[0], dtype=np.int64), None

        async def scenario():
            stats = ServeStats()
            batcher = MicroBatcher(
                predict_rows, BatchPolicy(max_delay_s=0.0), stats
            ).start()
            expired = time.monotonic() - 0.01
            fut = batcher.submit_nowait(np.zeros(3), deadline=expired)
            with pytest.raises(DeadlineExceededError):
                await fut
            await batcher.stop()
            return stats

        stats = self._run(scenario())
        assert calls["n"] == 0  # shed rows never burn model time
        assert stats.deadline_expired_total == 1
        snap = stats.snapshot()
        assert snap["deadline_expired_total"] == 1
        assert snap["queue_wait"]["count"] == 1

    def test_live_entries_survive_a_mixed_flush(self):
        def predict_rows(rows):
            return np.arange(rows.shape[0], dtype=np.int64), "extra"

        async def scenario():
            batcher = MicroBatcher(
                predict_rows, BatchPolicy(max_delay_s=0.0)
            ).start()
            expired = time.monotonic() - 0.01
            f_dead = batcher.submit_nowait(np.zeros(3), deadline=expired)
            f_live = batcher.submit_nowait(np.ones(3), deadline=None)
            with pytest.raises(DeadlineExceededError):
                await f_dead
            label, extra = await f_live
            return label, extra

        label, extra = self._run(scenario())
        assert label == 0  # the shed row was removed before stacking
        assert extra == "extra"

    def test_queue_wait_recorded_for_labeled_rows_too(self):
        def predict_rows(rows):
            return np.zeros(rows.shape[0], dtype=np.int64), None

        async def scenario():
            stats = ServeStats()
            batcher = MicroBatcher(
                predict_rows, BatchPolicy(max_delay_s=0.0), stats
            ).start()
            await batcher.submit(np.zeros(3))
            await batcher.stop()
            return stats

        stats = self._run(scenario())
        assert stats.snapshot()["queue_wait"]["count"] == 1


class TestDeadlinesEndToEnd:
    @pytest.fixture()
    def lingering(self, served_model):
        """A server whose batch window (200 ms, no early flush) is far
        longer than the deadlines the tests attach."""
        registry = ModelRegistry()
        registry.publish(served_model)
        policy = BatchPolicy(max_delay_s=0.2, quiescence_s=0.0)
        with serve_in_thread(registry, policy=policy) as handle:
            with ServeClient(*handle.address) as client:
                yield handle, client

    def test_deadline_expires_in_queue(self, lingering, small_gaussians):
        handle, client = lingering
        x, _ = small_gaussians
        with pytest.raises(DeadlineExceededError):
            client.predict(x[0], deadline_ms=10.0)
        stats = client.stats()
        assert stats["deadline_expired_total"] >= 1
        assert stats["queue_wait"]["count"] >= 1
        # Sheds and expiries are intended degradation, not server errors.
        assert stats["errors_total"] == 0

    def test_generous_deadline_is_met(self, lingering, small_gaussians,
                                      served_model):
        _, client = lingering
        x, _ = small_gaussians
        result = client.predict(x[0], deadline_ms=5000.0)
        assert result.label == int(served_model.predict(x[:1])[0])

    def test_batch_predict_accepts_deadline(self, lingering, small_gaussians,
                                            served_model):
        """The batch path bypasses the micro-batcher but still resolves
        and honors the budget at arrival."""
        _, client = lingering
        x, _ = small_gaussians
        result = client.predict(x[:16], deadline_ms=5000.0)
        assert result.labels == [int(v) for v in served_model.predict(x[:16])]

    def test_garbage_deadline_is_clean_validation_error(
        self, lingering, small_gaussians
    ):
        handle, client = lingering
        x, _ = small_gaussians
        response = client.request(
            {"op": "predict", "x": x[0].tolist(), "deadline_ms": "soon"}
        )
        assert response["ok"] is False
        assert "deadline_ms" in response["error"]
        # A client bug must not move the circuit breaker.
        assert handle.server.circuit.state == "closed"

    def test_deadline_exceeded_is_not_retried(self, served_model,
                                              small_gaussians):
        """deadline_exceeded is terminal: retrying cannot help (the budget
        is spent), so even a retrying client surfaces it immediately."""
        registry = ModelRegistry()
        registry.publish(served_model)
        policy = BatchPolicy(max_delay_s=0.2, quiescence_s=0.0)
        x, _ = small_gaussians
        with serve_in_thread(registry, policy=policy) as handle:
            client = ServeClient(*handle.address, retries=3)
            t0 = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.predict(x[0], deadline_ms=10.0)
            elapsed = time.monotonic() - t0
            client.close()
        # One linger window (~0.2 s), not four retry rounds of it.
        assert elapsed < 1.0
