"""Load-generator outcome accounting.

An overload benchmark is only trustworthy if it can tell *how* requests
failed: explicit server-side sheds are the intended degradation mode,
client timeouts are the pathological one. These tests pin the bucketing
logic and the end-to-end accounting identity (every request lands in
exactly one bucket).
"""

import asyncio

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ShedError,
)
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    ModelRegistry,
    run_closed_loop,
    serve_in_thread,
)
from repro.serve.loadgen import OUTCOMES, LoadReport, _classify


class TestClassification:
    @pytest.mark.parametrize("exc,bucket", [
        (ShedError("x"), "shed"),
        (DeadlineExceededError("x"), "deadline_exceeded"),
        (CircuitOpenError("x"), "circuit_open"),
        (QueueFullError("x"), "queue_full"),
        (asyncio.TimeoutError(), "timeout"),
        (ServeError("x"), "error"),
        (OSError("x"), "error"),
    ])
    def test_buckets(self, exc, bucket):
        assert _classify(exc) == bucket

    def test_every_bucket_is_a_known_outcome(self):
        for exc in (ShedError("x"), DeadlineExceededError("x"),
                    CircuitOpenError("x"), QueueFullError("x"),
                    asyncio.TimeoutError(), ServeError("x")):
            assert _classify(exc) in OUTCOMES


class TestLoadReport:
    def test_starts_all_zero(self):
        report = LoadReport(mode="closed")
        assert set(report.outcomes) == set(OUTCOMES)
        assert all(v == 0 for v in report.outcomes.values())
        assert report.shed_total == 0

    def test_shed_total_counts_explicit_rejections_only(self):
        report = LoadReport(mode="closed")
        for exc in (ShedError("a"), DeadlineExceededError("b"),
                    CircuitOpenError("c"), QueueFullError("d"),
                    asyncio.TimeoutError(), ServeError("e")):
            report._record_failure(exc)
        assert report.requests_failed == 6
        assert report.shed_total == 4  # timeout + error are NOT sheds

    def test_record_ok(self):
        report = LoadReport(mode="open")
        report._record_ok(0.001, version=3)
        assert report.requests_ok == 1
        assert report.outcomes["ok"] == 1
        assert report.versions_seen == {3}

    def test_render_shows_nonzero_outcomes(self):
        report = LoadReport(mode="closed")
        report.requests_sent = 2
        report.duration_s = 1.0
        report._record_ok(0.001, version=1)
        report._record_failure(ShedError("busy"))
        text = report.render()
        assert "ok=1" in text and "shed=1" in text
        assert "timeout" not in text  # zero buckets stay out of the way


class TestOutcomesEndToEnd:
    def test_closed_loop_separates_sheds_from_oks(
        self, served_model, small_gaussians
    ):
        x, _ = small_gaussians
        registry = ModelRegistry()
        registry.publish(served_model)
        admission = AdmissionPolicy(rate=1e-6, burst=3)
        with serve_in_thread(
            registry, policy=BatchPolicy(max_delay_s=0.002),
            admission=admission,
        ) as handle:
            report = run_closed_loop(
                *handle.address, x[:16], n_requests=20, n_clients=2
            )
        assert report.requests_sent == 20
        assert sum(report.outcomes.values()) == 20
        assert report.outcomes["ok"] == report.requests_ok <= 3  # the burst
        assert report.outcomes["shed"] >= 17
        assert report.requests_failed == report.shed_total
