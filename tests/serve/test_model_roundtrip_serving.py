"""Model round-tripping under serving: the wire format must be lossless.

A served model typically went disk → JSON → load at least once (deploy),
often more (hot-reload). These tests pin that ``to_dict``/``from_dict``/
``save``/``load`` preserve predictions bit-exactly — including ``meta``
carrying numpy scalar types, which `json` cannot serialize natively —
and that unseen cells stay ``-1`` through the full serve path.
"""

import json

import numpy as np
import pytest

from repro.core.model import KeyBin2Model
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    serve_in_thread,
)


class TestRoundTripExactness:
    def test_dict_round_trip_bit_exact(self, served_model, small_gaussians):
        x, _ = small_gaussians
        again = KeyBin2Model.from_dict(served_model.to_dict())
        assert np.array_equal(again.predict(x), served_model.predict(x))
        assert again.fingerprint() == served_model.fingerprint()

    def test_file_round_trip_bit_exact(self, served_model, small_gaussians,
                                       tmp_path):
        x, _ = small_gaussians
        path = tmp_path / "model.json"
        served_model.save(path)
        again = KeyBin2Model.load(path)
        assert np.array_equal(again.predict(x), served_model.predict(x))
        assert again.fingerprint() == served_model.fingerprint()

    def test_double_round_trip_stable(self, served_model, tmp_path):
        """save → load → save must be byte-identical (canonical form)."""
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        served_model.save(p1)
        KeyBin2Model.load(p1).save(p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_meta_with_numpy_scalars_serializes(self, served_model,
                                                small_gaussians, tmp_path):
        x, _ = small_gaussians
        model = KeyBin2Model.from_dict(served_model.to_dict())
        model.meta.update({
            "np_int": np.int64(7),
            "np_float": np.float32(0.5),
            "np_bool": np.bool_(True),
            "np_array": np.arange(3),
            "nested": {"count": np.int32(9), "vals": [np.float64(1.5)]},
        })
        path = tmp_path / "meta.json"
        model.save(path)  # must not raise on numpy types
        raw = json.loads(path.read_text())  # and must be plain JSON
        assert raw["meta"]["np_int"] == 7
        assert raw["meta"]["np_array"] == [0, 1, 2]
        assert raw["meta"]["nested"]["count"] == 9
        again = KeyBin2Model.load(path)
        assert np.array_equal(again.predict(x), model.predict(x))

    def test_streaming_model_round_trips(self, small_gaussians, tmp_path):
        """Streaming meta carries eviction counters etc. — must survive."""
        from repro import StreamingKeyBin2

        x, _ = small_gaussians
        skb = StreamingKeyBin2(seed=0)
        for start in range(0, 2000, 500):
            skb.partial_fit(x[start:start + 500])
        skb.refresh()
        path = tmp_path / "streamed.json"
        skb.model_.save(path)
        again = KeyBin2Model.load(path)
        assert np.array_equal(again.predict(x), skb.model_.predict(x))
        assert again.meta["streaming"] is True


class TestServePathSemantics:
    def test_reloaded_model_serves_identically(self, served_model,
                                               small_gaussians, tmp_path):
        """Local predict == served predict after a disk round trip."""
        x, _ = small_gaussians
        path = tmp_path / "deploy.json"
        served_model.save(path)
        registry = ModelRegistry()
        registry.publish(KeyBin2Model.load(path))
        expected = served_model.predict(x[:128])
        with serve_in_thread(registry,
                             policy=BatchPolicy(max_delay_s=0.002)) as handle:
            with ServeClient(*handle.address) as client:
                assert client.predict(x[:128]).labels == [int(v) for v in expected]

    def test_unseen_cell_is_noise_through_full_serve_path(self, served_model):
        """A point in a cell unseen at fit time returns -1 over the wire."""
        far = np.full(16, 1e6)
        if int(served_model.predict(far[None, :])[0]) != -1:
            pytest.skip("far point clipped into an occupied boundary cell")
        registry = ModelRegistry()
        registry.publish(served_model)
        with serve_in_thread(registry) as handle:
            with ServeClient(*handle.address) as client:
                result = client.predict(far)
                assert result.label == -1
                # and again, exercising the label cache hit path
                assert client.predict(far).label == -1

    def test_unseen_cell_single_and_batch_agree(self, served_model,
                                                small_gaussians):
        x, _ = small_gaussians
        probe = np.vstack([x[:4], np.full((1, 16), 1e6)])
        expected = [int(v) for v in served_model.predict(probe)]
        registry = ModelRegistry()
        registry.publish(served_model)
        with serve_in_thread(registry) as handle:
            with ServeClient(*handle.address) as client:
                batch = client.predict(probe).labels
                singles = [client.predict(row).label for row in probe]
        assert batch == expected
        assert singles == expected
