"""Tests for the LRU cell-code → label cache."""

import threading

import pytest

from repro.errors import ValidationError
from repro.serve import LabelCache


class TestLabelCache:
    def test_miss_then_hit(self):
        cache = LabelCache(maxsize=4)
        assert cache.get(1, 42) is None
        cache.put(1, 42, 3)
        assert cache.get(1, 42) == 3
        assert cache.hits == 1 and cache.misses == 1

    def test_noise_label_is_cacheable(self):
        """-1 (unseen cell) must round-trip; None is the only miss signal."""
        cache = LabelCache(maxsize=4)
        cache.put(1, 7, -1)
        assert cache.get(1, 7) == -1

    def test_version_isolates_entries(self):
        cache = LabelCache(maxsize=8)
        cache.put(1, 42, 3)
        assert cache.get(2, 42) is None  # new model version: cold
        cache.put(2, 42, 5)
        assert cache.get(1, 42) == 3
        assert cache.get(2, 42) == 5

    def test_lru_eviction_order(self):
        cache = LabelCache(maxsize=2)
        cache.put(1, 1, 10)
        cache.put(1, 2, 20)
        cache.get(1, 1)        # touch 1 → 2 becomes LRU
        cache.put(1, 3, 30)    # evicts 2
        assert cache.get(1, 2) is None
        assert cache.get(1, 1) == 10
        assert cache.get(1, 3) == 30
        assert cache.evictions == 1

    def test_capacity_bound_holds(self):
        cache = LabelCache(maxsize=16)
        for code in range(100):
            cache.put(1, code, code % 5)
        assert len(cache) == 16

    def test_zero_size_disables(self):
        cache = LabelCache(maxsize=0)
        cache.put(1, 42, 3)
        assert cache.get(1, 42) is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            LabelCache(maxsize=-1)

    def test_hit_rate_and_snapshot(self):
        cache = LabelCache(maxsize=4)
        cache.put(1, 1, 0)
        cache.get(1, 1)
        cache.get(1, 2)
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["size"] == 1

    def test_clear(self):
        cache = LabelCache(maxsize=4)
        cache.put(1, 1, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(1, 1) is None

    def test_snapshot_is_internally_consistent_under_load(self):
        """A concurrent scraper must never observe a torn view: inside any
        snapshot, hit_rate must be exactly hits/(hits+misses) of the *same*
        snapshot. The old code read the counters outside the lock, so a
        half-applied get() could leak into the scrape."""
        cache = LabelCache(maxsize=64)
        stop = threading.Event()

        def serve_loop():
            code = 0
            while not stop.is_set():
                code = (code + 1) % 128
                if cache.get(1, code) is None:
                    cache.put(1, code, code)

        workers = [threading.Thread(target=serve_loop) for _ in range(4)]
        for w in workers:
            w.start()
        try:
            for _ in range(300):
                snap = cache.snapshot()
                total = snap["hits"] + snap["misses"]
                expected = round(snap["hits"] / total, 4) if total else 0.0
                assert snap["hit_rate"] == expected
                assert snap["size"] <= snap["maxsize"]
        finally:
            stop.set()
            for w in workers:
                w.join()
