"""Cross-module integration tests."""

import numpy as np
import pytest

from repro import KeyBin1, KeyBin2, StreamingKeyBin2, fit_distributed
from repro.data.correlated import correlated_clusters
from repro.data.gaussians import gaussian_mixture
from repro.data.streams import BatchStream, distributed_partitions
from repro.metrics.pairs import pair_precision_recall_f1
from repro.metrics.external import purity


class TestPaperHeadlineClaims:
    """Each test pins one qualitative claim from the paper."""

    def test_keybin2_beats_keybin1_on_overlapping_projections(self):
        """§1 'projection overlapping' limitation + §3.1 fix."""
        x, y = correlated_clusters(4000, seed=0)
        kb1 = KeyBin1(depth=6).fit(x)
        # In 2-D the decorrelating direction cone is narrow; a wide
        # bootstrap makes hitting it near-certain.
        kb2 = KeyBin2(n_projections=24, seed=0).fit(x)
        _, _, f1_1 = pair_precision_recall_f1(y, kb1.labels_)
        _, _, f1_2 = pair_precision_recall_f1(y, kb2.labels_)
        assert f1_2 > f1_1 + 0.1

    def test_nonparametric_finds_at_least_true_k(self):
        """§4: 'KeyBin2 finds a larger number of clusters than ground
        truth' while precision stays near 1."""
        x, y = gaussian_mixture(5000, 32, n_clusters=4, separation=3.0, seed=1)
        kb = KeyBin2(seed=1).fit(x)
        prec, rec, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert kb.n_clusters_ >= 4
        assert prec > 0.9

    def test_high_dimensional_accuracy_holds(self):
        """§4 Table 1: accuracy maintained as dims grow to the hundreds."""
        x, y = gaussian_mixture(3000, 320, n_clusters=4, seed=2)
        kb = KeyBin2(seed=2).fit(x)
        _, _, f1 = pair_precision_recall_f1(y, kb.labels_)
        assert f1 > 0.85

    def test_histograms_are_only_data_dependent_traffic(self):
        """§3.4: communication is O(histograms), independent of M."""
        results = {}
        for m_per_rank in (300, 1200):
            x, y = gaussian_mixture(m_per_rank * 2, 32, n_clusters=4, seed=3)
            shards = [x[::2], x[1::2]]
            res = fit_distributed(shards, executor="thread", seed=3,
                                  n_projections=2)
            results[m_per_rank] = res.traffic[1]["bytes_sent"]
        # 4× the data must NOT mean 4× the traffic (allow small wiggle from
        # cell-table size differences).
        assert results[1200] < results[300] * 1.5

    def test_streaming_matches_batch_quality(self):
        """§3: the algorithm 'extrapolates for data streams'."""
        x, y = gaussian_mixture(6000, 24, n_clusters=4, seed=4)
        batch = KeyBin2(seed=4, n_projections=4).fit(x)
        stream = StreamingKeyBin2(seed=4, n_projections=4)
        for bx, _ in BatchStream(x, y, 500):
            stream.partial_fit(bx)
        stream.refresh()
        p_batch = purity(y, batch.labels_)
        p_stream = purity(y, stream.predict(x))
        assert p_stream > p_batch - 0.1

    def test_distributed_equals_local_quality_with_skew(self):
        """§1: learning from distributed data without moving it, even when
        sites hold biased shards."""
        x, y = gaussian_mixture(4000, 24, n_clusters=4, seed=5)
        parts = distributed_partitions(x, y, 4, skew=1.0, seed=5)
        shards = [p[0] for p in parts]
        ys = np.concatenate([p[1] for p in parts])
        dist = fit_distributed(shards, executor="thread", seed=5)
        local = KeyBin2(seed=5).fit(x)
        _, _, f1_dist = pair_precision_recall_f1(ys, dist.concatenated_labels())
        _, _, f1_local = pair_precision_recall_f1(y, local.labels_)
        assert f1_dist > f1_local - 0.1

    def test_model_portable_across_processes(self):
        """A model fitted on one site labels data on another (broadcast
        scenario); serialization must round-trip through JSON."""
        import json

        from repro.core.model import KeyBin2Model

        x, y = gaussian_mixture(2000, 16, n_clusters=3, seed=6)
        kb = KeyBin2(seed=6).fit(x[:1000])
        wire = json.dumps(kb.model_.to_dict())
        remote_model = KeyBin2Model.from_dict(json.loads(wire))
        remote_labels = remote_model.predict(x[1000:])
        assert purity(y[1000:], remote_labels) > 0.85


class TestExecutorAgreement:
    def test_thread_process_identical_results(self):
        x, y = gaussian_mixture(1200, 16, n_clusters=3, seed=7)
        shards = [x[::3], x[1::3], x[2::3]]
        a = fit_distributed(shards, executor="thread", seed=7, n_projections=2)
        b = fit_distributed(shards, executor="process", seed=7, n_projections=2)
        assert np.array_equal(a.concatenated_labels(), b.concatenated_labels())
        assert a.n_clusters == b.n_clusters

    def test_rank_count_does_not_change_model(self):
        """Same global data split 2 vs 4 ways must give the same cuts (the
        consolidated histograms are identical)."""
        x, y = gaussian_mixture(2000, 16, n_clusters=4, seed=8)
        a = fit_distributed([x[:1000], x[1000:]], executor="thread", seed=8,
                            n_projections=2)
        b = fit_distributed(
            [x[:500], x[500:1000], x[1000:1500], x[1500:]],
            executor="thread", seed=8, n_projections=2,
        )
        assert a.n_clusters == b.n_clusters
        assert np.array_equal(a.concatenated_labels(), b.concatenated_labels())


class TestProteinsEndToEnd:
    def test_full_case_study_small(self):
        from repro.insitu.pipeline import InSituPipeline
        from repro.proteins.model_library import model_library

        spec = model_library(scale=0.02)[4]
        traj = spec.simulate()
        res = InSituPipeline(seed=0).run(traj)
        assert res.n_clusters >= 1
        assert len(res.fingerprints) == traj.n_frames
