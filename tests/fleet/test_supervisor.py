"""ReplicaSupervisor: spawn/kill/restart semantics in both modes.

Process-mode startup costs ~1s per replica (a full interpreter + model
load), so these tests keep fleets to 1–2 replicas; the fleet CI job and
``fleet-bench`` exercise bigger process fleets.
"""

from __future__ import annotations

import pytest

from repro.errors import ConnectionLostError, ServeError, ValidationError
from repro.fleet import ReplicaSupervisor
from repro.serve import ServeClient, probe


def test_validation():
    with pytest.raises(ValidationError):
        ReplicaSupervisor(mode="coroutine")
    with pytest.raises(ValidationError):
        ReplicaSupervisor("m.json", n_replicas=0)
    with pytest.raises(ValidationError):
        ReplicaSupervisor(mode="process")  # needs model_path
    with pytest.raises(ValidationError):
        ReplicaSupervisor(mode="thread")  # needs model_path or model
    with pytest.raises(ValidationError):
        ReplicaSupervisor(model=object(), mode="thread")._get("r9")


def test_thread_mode_ids_and_endpoints(fleet_model):
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=3) as sup:
        endpoints = sup.start()
        assert [rid for rid, _, _ in endpoints] == ["r0", "r1", "r2"]
        assert len({port for _, _, port in endpoints}) == 3
        assert all(sup.is_alive(rid) for rid, _, _ in endpoints)
        sup.kill("r1")
        assert not sup.is_alive("r1")
        host, port = sup.restart("r1")
        assert sup.is_alive("r1")
        assert ("r1", host, port) in sup.endpoints()


def test_process_mode_spawn_probe_kill_restart(model_paths, small_gaussians):
    x, _ = small_gaussians
    with ReplicaSupervisor(model_paths["v1"], n_replicas=1,
                           mode="process") as sup:
        (rid, host, port), = sup.start()
        payload = probe(host, port)
        assert payload["status"] == "serving"
        with ServeClient(host, port) as client:
            assert client.predict(x[0]).label >= 0
        assert sup.is_alive(rid)
        sup.kill(rid)
        assert not sup.is_alive(rid)
        with pytest.raises(ConnectionLostError):
            probe(host, port)
        new_host, new_port = sup.restart(rid)
        assert sup.is_alive(rid)
        assert probe(new_host, new_port)["status"] == "serving"
        assert sup._replicas[rid].restarts == 1
        assert "serving model" in sup.diagnostics(rid)


def test_check_and_restart_revives_dead_replicas(model_paths):
    with ReplicaSupervisor(model_paths["v1"], n_replicas=2,
                           mode="process") as sup:
        sup.start()
        assert sup.check_and_restart() == []
        sup.kill("r0")
        assert sup.check_and_restart() == ["r0"]
        assert sup.is_alive("r0")


def test_process_startup_failure_surfaces_diagnostics(tmp_path):
    bogus = tmp_path / "not-a-model.json"
    bogus.write_text("{}")
    sup = ReplicaSupervisor(str(bogus), n_replicas=1, mode="process",
                            startup_timeout=30.0)
    try:
        with pytest.raises(ServeError, match="failed to announce a port"):
            sup.start()
    finally:
        sup.stop()
