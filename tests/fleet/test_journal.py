"""Rollout journal: WAL discipline, torn tails, rotation, recovery plans.

Pure journal tests — no fleet needed. Crash behavior is simulated by
writing exact byte sequences (torn tail) and via the deterministic
``crash_after`` hook; the end-to-end crash/recovery property lives in
``test_recovery.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import InjectedFault, ServeError, ValidationError
from repro.fleet.journal import (
    JOURNAL_FILE,
    JournalError,
    RolloutJournal,
    plan_recovery,
)


def _journal(tmp_path, **kwargs):
    return RolloutJournal(str(tmp_path / "journal"), **kwargs)


def test_append_and_replay_round_trip(tmp_path):
    j = _journal(tmp_path)
    j.append("intent", path="m.json", tag="t1")
    j.set_artifact("m.json", "fp-new", version=2)
    j.append("complete", fingerprint="fp-new")
    records = j.records()
    assert [r["type"] for r in records] == ["intent", "artifact", "complete"]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert records[1]["fingerprint"] == "fp-new"
    # A fresh instance over the same directory resumes the sequence.
    j2 = _journal(tmp_path)
    rec = j2.append("intent", path="n.json")
    assert rec["seq"] == 3


def test_torn_final_line_is_dropped(tmp_path):
    j = _journal(tmp_path)
    j.append("intent", path="m.json")
    j.append("canary", replica="r0")
    with open(j.path, "ab") as fh:
        fh.write(b'{"seq": 2, "type": "canary_prom')  # crash mid-write
    assert [r["type"] for r in j.records()] == ["intent", "canary"]
    # Appending over a torn tail still yields a replayable journal: the
    # torn fragment stops replay, losing only records after the tear.
    j2 = _journal(tmp_path)
    assert len(j2.records()) == 2


def test_rotation_keeps_artifact_and_open_rollout(tmp_path):
    j = _journal(tmp_path, rotate_at=8, fsync=False)
    # A completed rollout's history plus a fresh open one.
    j.append("intent", path="a.json")
    j.append("staged", fingerprint="fp-a")
    j.set_artifact("a.json", "fp-a")
    j.append("complete", fingerprint="fp-a")
    j.append("intent", path="b.json")
    j.append("canary", replica="r0")
    j.rotate()
    kept = [r["type"] for r in j.records()]
    assert kept == ["artifact", "intent", "canary"]
    open_r = j.open_rollout()
    assert open_r is not None and open_r["path"] == "b.json"
    assert j.current_artifact()["fingerprint"] == "fp-a"
    # seq numbering is preserved through compaction.
    assert [r["seq"] for r in j.records()] == sorted(
        r["seq"] for r in j.records()
    )


def test_auto_rotation_past_rotate_at(tmp_path):
    j = _journal(tmp_path, rotate_at=8, fsync=False)
    for i in range(6):
        j.append("intent", path=f"m{i}.json")
        j.append("rolled_back", reason="test")
    # Far more than 8 records appended; compaction kept the file small.
    assert len(j.records()) <= 8


def test_open_rollout_states(tmp_path):
    j = _journal(tmp_path, fsync=False)
    assert j.open_rollout() is None
    j.append("intent", path="m.json", tag="t")
    pre = j.open_rollout()
    assert pre["staged"] is False and pre["fingerprint"] is None
    j.append("canary_promoted", replica="r0", version=2, fingerprint="fp-n")
    assert j.open_rollout()["fingerprint"] == "fp-n"
    j.append("staged", fingerprint="fp-n")
    committed = j.open_rollout()
    assert committed["staged"] is True and committed["fingerprint"] == "fp-n"
    j.append("complete", fingerprint="fp-n")
    assert j.open_rollout() is None


def test_crash_after_hook_is_deterministic(tmp_path):
    j = _journal(tmp_path, crash_after=2, fsync=False)
    j.append("intent", path="m.json")
    j.append("canary", replica="r0")
    with pytest.raises(InjectedFault):
        j.append("canary_promoted", replica="r0", fingerprint="fp")
    # Exactly crash_after records are on disk; the third never committed.
    assert len(j.records()) == 2
    # A recovery instance (no crash hook) sees the same two records.
    assert len(_journal(tmp_path).records()) == 2


def test_journal_error_on_unwritable_directory(tmp_path):
    target = tmp_path / "journal"
    target.mkdir()
    os.mkdir(target / JOURNAL_FILE)  # a directory where the file should be
    with pytest.raises(JournalError):
        RolloutJournal(str(target))


def test_validation():
    with pytest.raises(ValidationError):
        RolloutJournal("/tmp/x", rotate_at=2)
    assert issubclass(JournalError, ServeError)
    assert JournalError.code == "journal_failed"


# -- plan_recovery (pure decision logic) -------------------------------------


def _records(*types_and_fields):
    return [{"seq": i, "at": 0.0, "type": t, **f}
            for i, (t, f) in enumerate(types_and_fields)]


BASELINE = ("artifact", {"path": "old.json", "fingerprint": "fp-old"})


def test_plan_noop_when_everyone_serves_baseline():
    plan = plan_recovery(_records(BASELINE),
                         {"r0": "fp-old", "r1": "fp-old"})
    assert plan.action == "noop" and not plan.stale


def test_plan_reconciles_strays_without_open_rollout():
    plan = plan_recovery(
        _records(BASELINE), {"r0": "fp-old", "r1": "fp-stray", "r2": None}
    )
    assert plan.action == "reconcile"
    assert plan.target_fingerprint == "fp-old"
    assert plan.stale == ["r1"] and plan.unreachable == ["r2"]


def test_plan_rolls_forward_past_commit_point():
    plan = plan_recovery(
        _records(
            BASELINE,
            ("intent", {"path": "new.json"}),
            ("canary", {"replica": "r0"}),
            ("canary_promoted", {"replica": "r0", "fingerprint": "fp-new"}),
            ("staged", {"fingerprint": "fp-new"}),
            ("promote", {"replica": "r1"}),
        ),
        {"r0": "fp-new", "r1": "fp-new", "r2": "fp-old"},
    )
    assert plan.action == "roll_forward"
    assert plan.target_path == "new.json"
    assert plan.target_fingerprint == "fp-new"
    assert plan.stale == ["r2"]


def test_plan_rolls_back_before_commit_point():
    plan = plan_recovery(
        _records(
            BASELINE,
            ("intent", {"path": "new.json"}),
            ("canary", {"replica": "r0"}),
            ("canary_promoted", {"replica": "r0", "fingerprint": "fp-new"}),
        ),
        {"r0": "fp-new", "r1": "fp-old", "r2": "fp-old"},
    )
    assert plan.action == "roll_back"
    assert plan.target_fingerprint == "fp-old"
    assert plan.stale == ["r0"]


def test_plan_refuses_uncommitted_rollout_without_baseline():
    with pytest.raises(JournalError, match="no baseline"):
        plan_recovery(
            _records(("intent", {"path": "new.json"})), {"r0": "fp-x"}
        )


def test_plan_terminal_record_closes_rollout():
    plan = plan_recovery(
        _records(
            BASELINE,
            ("intent", {"path": "new.json"}),
            ("rolled_back", {"reason": "canary_rejected"}),
        ),
        {"r0": "fp-old"},
    )
    assert plan.action == "noop"


def test_records_are_json_lines_on_disk(tmp_path):
    j = _journal(tmp_path)
    j.append("intent", path="m.json")
    with open(j.path, "rb") as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 1
    parsed = json.loads(lines[0])
    assert parsed["type"] == "intent" and "at" in parsed and "seq" in parsed
