"""Fixtures shared by the fleet tests.

Thread-mode fleets keep the unit tests fast (no subprocess startup) and
let tests reach into replica registries directly; the supervisor tests
cover the process mode explicitly.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import KeyBin2
from repro.fleet import ReplicaSupervisor, router_in_thread


@pytest.fixture(scope="session")
def fleet_model(small_gaussians):
    x, _ = small_gaussians
    return KeyBin2(n_projections=4, seed=3).fit(x).model_


@pytest.fixture(scope="session")
def fleet_alt_model(small_gaussians):
    """Same shape, different seed — a valid artifact to roll out."""
    x, _ = small_gaussians
    return KeyBin2(n_projections=4, seed=11).fit(x).model_


@pytest.fixture(scope="session")
def fleet_bad_model(tiny_gaussians):
    """Loadable but wrong dimensionality — the canary-regression case."""
    x, _ = tiny_gaussians
    return KeyBin2(n_projections=2, seed=9).fit(x).model_


@pytest.fixture
def thread_fleet(fleet_model):
    """3 thread-mode replicas + router; yields (supervisor, handle)."""
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=3) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=fleet_model,
                              probe_interval_s=0.05) as handle:
            yield sup, handle


@pytest.fixture(scope="session")
def model_paths(tmp_path_factory, fleet_model, fleet_alt_model,
                fleet_bad_model):
    """On-disk artifacts: {'v1': ..., 'v2': ..., 'bad': ...}."""
    root = tmp_path_factory.mktemp("fleet-models")
    paths = {}
    for name, model in (("v1", fleet_model), ("v2", fleet_alt_model),
                        ("bad", fleet_bad_model)):
        path = root / f"{name}.json"
        model.save(path)
        paths[name] = str(path)
    return paths
