"""FleetRouter end-to-end: the wire protocol over thread-mode replicas.

Every test drives the router through the *unchanged* serve clients —
that transparency is the headline property of the tier.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.errors import (
    ConnectionLostError,
    FleetUnavailableError,
    ShedError,
)
from repro.fleet import ReplicaSupervisor, TenantQuotaPolicy, TenantQuotas, router_in_thread
from repro.obs.report import fleet_table
from repro.serve import ServeClient


def _routed_ok_counts(client):
    status = client.request({"op": "fleet-status"})
    return {
        rid: per.get("ok", 0) for rid, per in status["routed"].items()
    }


def test_predict_through_router_matches_direct(thread_fleet, small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    rid, rhost, rport = sup.endpoints()[0]
    with ServeClient(rhost, rport) as direct, \
            ServeClient(*handle.address) as routed:
        for i in range(10):
            a = direct.predict(x[i])
            b = routed.predict(x[i])
            assert a.label == b.label
            assert a.fingerprint == b.fingerprint
            assert a.version == b.version


def test_batch_predict_passes_through(thread_fleet, small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        resp = client.request({"op": "predict", "x": x[:64].tolist()})
    assert resp["ok"] and len(resp["labels"]) == 64


def test_shard_affinity_same_point_same_replica(thread_fleet, small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        for _ in range(30):
            client.predict(x[0])
        counts = _routed_ok_counts(client)
    # All 30 sequential sends of one point land on its shard owner (no
    # load, so no bounded-load spill).
    assert sorted(counts.values(), reverse=True)[0] == 30


def test_distinct_points_spread_across_replicas(thread_fleet, small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        for i in range(120):
            client.predict(x[i])
        counts = _routed_ok_counts(client)
    assert sum(counts.values()) == 120
    assert len([c for c in counts.values() if c > 0]) >= 2


def test_healthz_reports_fleet_role(thread_fleet):
    _, handle = thread_fleet
    with ServeClient(*handle.address) as client:
        payload = client.request({"op": "healthz"})
    assert payload["role"] == "fleet-router"
    assert payload["status"] == "serving"
    assert payload["healthy_replicas"] == 3
    assert payload["rollout"] == "idle"


def test_stats_aggregates_replicas(thread_fleet, small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        client.predict(x[0])
        stats = client.request({"op": "stats"})
    assert set(stats["replicas"]) == {"r0", "r1", "r2"}
    assert stats["fleet"]["healthy_replicas"] == 3


def test_model_info_passthrough(thread_fleet, fleet_model):
    _, handle = thread_fleet
    with ServeClient(*handle.address) as client:
        info = client.request({"op": "model-info"})
    assert info["ok"] and info["fingerprint"] == fleet_model.fingerprint()


def test_metrics_exposes_fleet_series_and_table(thread_fleet, small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        for i in range(5):
            client.predict(x[i])
        payload = client.request({"op": "metrics"})
    assert "fleet_routed_total" in payload["prometheus"]
    assert "fleet_routed_total" in payload["metrics"]["families"]
    table = fleet_table(handle.router.registry)
    assert "replica" in table and "ok" in table


def test_fleet_table_placeholder_without_traffic():
    from repro.obs.registry import MetricsRegistry

    assert "no fleet traffic" in fleet_table(MetricsRegistry())


def test_malformed_line_gets_error_response(thread_fleet):
    _, handle = thread_fleet
    host, port = handle.address
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(b"this is not json\n")
        line = sock.makefile("rb").readline()
    payload = json.loads(line)
    assert payload["ok"] is False and "malformed" in payload["error"]


def test_killed_replica_fails_over_without_client_error(
        thread_fleet, small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        for i in range(30):
            client.predict(x[i])
        sup.kill("r1")
        # Every point keeps getting answered: requests that hash to r1
        # fail over; the health loop ejects it shortly after.
        for _ in range(3):
            for i in range(30):
                result = client.predict(x[i])
                assert result.label >= 0
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if client.request({"op": "healthz"})["healthy_replicas"] == 2:
                break
            time.sleep(0.05)
        payload = client.request({"op": "healthz"})
        assert payload["healthy_replicas"] == 2
        assert payload["status"] == "degraded"
        status = client.request({"op": "fleet-status"})
        assert not status["replicas"]["r1"]["healthy"]
        assert status["replicas"]["r1"]["ejections"] == 1


def test_restart_readmits_under_same_shard_id(thread_fleet, small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address) as client:
        sup.kill("r2")
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if client.request({"op": "healthz"})["healthy_replicas"] == 2:
                break
            time.sleep(0.05)
        host, port = sup.restart("r2")
        handle.set_endpoint("r2", host, port)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if client.request({"op": "healthz"})["healthy_replicas"] == 3:
                break
            time.sleep(0.05)
        status = client.request({"op": "fleet-status"})
        assert status["replicas"]["r2"]["healthy"]
        assert status["replicas"]["r2"]["readmissions"] == 1
        for i in range(20):
            client.predict(x[i])


def test_all_replicas_dead_raises_typed_unavailable(
        fleet_model, small_gaussians):
    x, _ = small_gaussians
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=2) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, probe_interval_s=0.05,
                              max_failovers=1) as handle:
            with ServeClient(*handle.address) as client:
                client.predict(x[0])
                sup.kill("r0")
                sup.kill("r1")
                with pytest.raises(FleetUnavailableError):
                    for _ in range(10):
                        client.predict(x[0])
    # The error is retryable by contract — clients with retry enabled
    # would keep polling a recovering fleet.
    assert FleetUnavailableError.code == "unavailable"


def test_tenant_quota_sheds_at_router(fleet_model, small_gaussians):
    x, _ = small_gaussians
    quotas = TenantQuotas(
        quotas={"greedy": TenantQuotaPolicy(rate=1.0, burst=3.0)}
    )
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=2) as sup:
        with router_in_thread(sup.start(), quotas=quotas,
                              shard_model=fleet_model) as handle:
            with ServeClient(*handle.address) as client:
                for _ in range(3):
                    client.predict(x[0], tenant="greedy")
                with pytest.raises(ShedError, match="tenant_quota"):
                    client.predict(x[0], tenant="greedy")
                # Other tenants and anonymous traffic stay unmetered.
                for i in range(10):
                    client.predict(x[i], tenant="modest")
                    client.predict(x[i])
                status = client.request({"op": "fleet-status"})
    assert status["tenant_sheds"] == {"greedy": 1}
    # The shed never reached a replica: all routed outcomes are ok.
    assert all(set(per) == {"ok"} for per in status["routed"].values())


def test_router_shutdown_op(fleet_model):
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=1) as sup:
        handle = router_in_thread(sup.start())
        with ServeClient(*handle.address) as client:
            resp = client.request({"op": "shutdown"})
            assert resp["ok"]
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()


def test_set_endpoint_unknown_replica(thread_fleet):
    _, handle = thread_fleet
    with pytest.raises(Exception, match="unknown replica"):
        handle.set_endpoint("r99", "127.0.0.1", 1)


def test_dead_replica_is_typed_not_raw_reset(fleet_model, small_gaussians):
    """S1 regression: a dead backend surfaces as ConnectionLostError
    (a ServeError) at the client layer, never a raw ConnectionResetError.
    """
    x, _ = small_gaussians
    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=1) as sup:
        (rid, host, port), = sup.start()
        with ServeClient(host, port) as client:
            client.predict(x[0])
            sup.kill(rid)
            with pytest.raises(ConnectionLostError) as excinfo:
                for _ in range(5):
                    client.predict(x[0])
            assert excinfo.value.reason in ("closed", "reset", "refused")
