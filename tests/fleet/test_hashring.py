"""Consistent-hash ring: determinism, balance, minimal remap, spill order."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.fleet.hashring import ConsistentHashRing


def _ring(nodes, vnodes=64):
    ring = ConsistentHashRing(vnodes=vnodes)
    for node in nodes:
        ring.add(node)
    return ring


def test_owner_is_deterministic_across_instances():
    a = _ring(["r0", "r1", "r2"])
    b = _ring(["r2", "r0", "r1"])  # insertion order must not matter
    assert [a.owner(k) for k in range(500)] == [b.owner(k) for k in range(500)]


def test_membership_bookkeeping():
    ring = _ring(["r0", "r1"])
    assert ring.nodes() == ["r0", "r1"]
    assert len(ring) == 2 and "r0" in ring and "rX" not in ring
    with pytest.raises(ValidationError):
        ring.add("r0")
    ring.remove("r0")
    assert ring.nodes() == ["r1"]
    with pytest.raises(ValidationError):
        ring.remove("r0")
    assert _ring([]).owner(7) is None


def test_keyspace_roughly_balanced():
    ring = _ring(["r0", "r1", "r2", "r3"], vnodes=128)
    shares = [ring.share_of_keyspace(f"r{i}") for i in range(4)]
    assert abs(sum(shares) - 1.0) < 1e-9
    # 128 vnodes keeps the max/min spread modest; exact balance is not
    # the claim, stability and O(1/N) shares are.
    assert all(0.10 < s < 0.45 for s in shares)


def test_remove_remaps_only_the_removed_nodes_keys():
    ring = _ring(["r0", "r1", "r2", "r3"])
    before = {k: ring.owner(k) for k in range(2000)}
    ring.remove("r2")
    after = {k: ring.owner(k) for k in range(2000)}
    moved = [k for k in before if before[k] != after[k]]
    assert moved, "removing a node must remap its keys"
    # Consistent hashing's defining property: only r2's keys moved.
    assert all(before[k] == "r2" for k in moved)


def test_walk_yields_distinct_nodes_owner_first():
    ring = _ring(["r0", "r1", "r2"])
    for key in (0, 17, 123456):
        walk = list(ring.walk(key))
        assert walk[0] == ring.owner(key)
        assert sorted(walk) == ["r0", "r1", "r2"]


def test_walk_only_restricts_but_preserves_order():
    ring = _ring(["r0", "r1", "r2", "r3"])
    for key in range(50):
        full = list(ring.walk(key))
        healthy = ["r0", "r2"]
        restricted = list(ring.walk(key, only=healthy))
        assert restricted == [n for n in full if n in healthy]


def test_vnodes_validation():
    with pytest.raises(ValidationError):
        ConsistentHashRing(vnodes=0)


def test_keys_wider_than_64_bits():
    # Cell codes pack one bin index per projected dim into a single int,
    # so high-dimensional models routinely exceed 64 bits. The ring must
    # place them deterministically, not overflow.
    ring = _ring(["r0", "r1", "r2"])
    for key in (2**63, 2**200 + 17, -(2**90), 10**100):
        assert ring.owner(key) in ("r0", "r1", "r2")
        assert ring.owner(key) == ring.owner(key)
        walk = list(ring.walk(key))
        assert walk[0] == ring.owner(key)
        assert sorted(walk) == ["r0", "r1", "r2"]
