"""Fleet chaos smoke: SIGKILL a process replica mid-load, zero client errors.

The CI ``fleet`` job's core assertion. Process-mode replicas give real
crash semantics (a SIGKILLed interpreter cannot flush, drain, or say
goodbye); the router must absorb the crash via failover + ejection so an
open-loop client stream sees *no* hard failure — explicit sheds and
router-classified retries are allowed, ``error``/``timeout`` outcomes
are not.
"""

from __future__ import annotations

import threading
import time

from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.serve import ServeClient
from repro.serve.loadgen import run_open_loop


def test_kill_one_of_three_mid_load_zero_client_errors(
        model_paths, fleet_model, small_gaussians):
    x, _ = small_gaussians
    with ReplicaSupervisor(model_paths["v1"], n_replicas=3,
                           mode="process") as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=fleet_model,
                              probe_interval_s=0.1) as handle:
            host, port = handle.address
            result = {}

            def load():
                result["report"] = run_open_loop(
                    host, port, x[:256], rate=300.0, duration_s=4.0,
                    n_connections=8, request_timeout_s=5.0,
                )

            loader = threading.Thread(target=load)
            loader.start()
            time.sleep(1.0)  # traffic established on all three replicas
            sup.kill("r1")   # SIGKILL, mid-request by construction
            loader.join(timeout=30.0)
            assert not loader.is_alive()

            report = result["report"]
            # Zero client-visible hard failures; sheds would be fine but
            # unconfigured replicas here don't shed either.
            assert report.outcomes["error"] == 0
            assert report.outcomes["timeout"] == 0
            assert report.requests_ok == report.requests_sent
            assert report.requests_ok > 500

            with ServeClient(host, port) as client:
                status = client.request({"op": "fleet-status"})
            assert status["healthy_replicas"] == 2
            assert not status["replicas"]["r1"]["healthy"]
            # The crash shows up as router-side failovers, not client
            # errors: rerouted requests landed on the survivors.
            failovers = sum(
                per.get("failover", 0) for per in status["routed"].values()
            )
            assert failovers >= 1
            survivors_ok = sum(
                per.get("ok", 0)
                for rid, per in status["routed"].items() if rid != "r1"
            )
            assert survivors_ok > 0
