"""Chaos proxy: deterministic network faults, and what the stack does
under them — client retries ride out resets, router failover routes
around a partitioned replica, and the fleet-wide retry budget sheds
instead of amplifying when every failover would fail anyway.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ConnectionLostError,
    FleetUnavailableError,
    ValidationError,
)
from repro.fleet import (
    ChaosPlan,
    ReplicaSupervisor,
    chaos_proxy_in_thread,
    router_in_thread,
)
from repro.fleet.chaosproxy import (
    DelayLines,
    Partition,
    ResetAt,
    SlowLoris,
    TruncateAt,
)
from repro.serve import ModelRegistry, ServeClient, serve_in_thread


@pytest.fixture
def one_server(fleet_model):
    registry = ModelRegistry()
    registry.publish(fleet_model)
    with serve_in_thread(registry) as handle:
        yield handle


def _proxy(handle, plan=None):
    host, port = handle.address
    return chaos_proxy_in_thread(host, port, plan=plan)


class TestPlanGrammar:
    def test_parse_every_kind(self):
        plan = ChaosPlan.parse(
            "partition:3-5, delay:0:0.05:0.2, reset:1@4, trunc:2@1:20, "
            "slow:0:16:0.02"
        )
        kinds = [type(f) for f in plan.faults]
        assert kinds == [Partition, DelayLines, ResetAt, TruncateAt,
                         SlowLoris]
        assert plan.faults[0].last == 5
        assert ChaosPlan.parse("partition:3").faults[0].last is None

    def test_parse_rejects_garbage(self):
        for bad in ("partition", "reset:1", "delay:x:1", "slow:1:2",
                    "nonsense:1"):
            with pytest.raises(ValidationError, match="cannot parse"):
                ChaosPlan.parse(bad)

    def test_fault_validation(self):
        with pytest.raises(ValidationError):
            Partition(0)
        with pytest.raises(ValidationError):
            Partition(5, 3)
        with pytest.raises(ValidationError):
            DelayLines(seconds=-1)
        with pytest.raises(ValidationError):
            ResetAt(conn=1, nth=0)
        with pytest.raises(ValidationError):
            SlowLoris(nbytes=0)

    def test_wildcard_and_indexing(self):
        plan = ChaosPlan([Partition(2, 3)])
        assert not plan.partitioned(1)
        assert plan.partitioned(2) and plan.partitioned(3)
        assert not plan.partitioned(4)


class TestDataPath:
    def test_transparent_passthrough(self, one_server, small_gaussians):
        x, _ = small_gaussians
        with _proxy(one_server) as proxy:
            with ServeClient(*proxy.address) as client:
                assert client.healthz()["ok"] is True
                assert client.predict(x[0]).label >= 0
            snap = proxy.proxy.snapshot()
        assert snap["totals"]["lines"] == 2
        assert snap["totals"]["resets"] == 0

    def test_declarative_partition_by_connection_index(self, one_server):
        with _proxy(one_server, ChaosPlan.parse("partition:2-2")) as proxy:
            with ServeClient(*proxy.address) as c1:
                assert c1.healthz()["ok"] is True
            with pytest.raises(ConnectionLostError):
                ServeClient(*proxy.address).healthz()
            with ServeClient(*proxy.address) as c3:  # 3rd conn: healed
                assert c3.healthz()["ok"] is True
            assert proxy.proxy.counters[2]["partitioned"] == 1

    def test_imperative_partition_and_heal(self, one_server):
        with _proxy(one_server) as proxy:
            with ServeClient(*proxy.address) as client:
                assert client.healthz()["ok"] is True
            proxy.partition()
            with pytest.raises(ConnectionLostError):
                ServeClient(*proxy.address).healthz()
            proxy.heal()
            with ServeClient(*proxy.address) as client:
                assert client.healthz()["ok"] is True

    def test_partition_kills_live_connections(self, one_server):
        with _proxy(one_server) as proxy:
            client = ServeClient(*proxy.address, timeout=5.0)
            assert client.healthz()["ok"] is True
            proxy.partition()
            with pytest.raises(ConnectionLostError):
                # Existing connection, not just new ones, must die.
                client.healthz()
                client.healthz()
            client.close()

    def test_reset_at_exact_response_index(self, one_server):
        with _proxy(one_server, ChaosPlan.parse("reset:0@2")) as proxy:
            client = ServeClient(*proxy.address, timeout=5.0)
            assert client.healthz()["ok"] is True          # line 1 passes
            with pytest.raises(ConnectionLostError):
                client.healthz()                           # line 2: reset
            client.close()
            assert proxy.proxy.counters[1]["resets"] == 1

    def test_truncated_response_is_a_typed_failure(self, one_server):
        with _proxy(one_server, ChaosPlan.parse("trunc:0@1:10")) as proxy:
            client = ServeClient(*proxy.address, timeout=5.0)
            with pytest.raises(ConnectionLostError, match="mid-response"):
                client.healthz()
            client.close()

    def test_delay_is_applied(self, one_server):
        with _proxy(one_server, ChaosPlan.parse("delay:0:0.15")) as proxy:
            with ServeClient(*proxy.address, timeout=5.0) as client:
                t0 = time.monotonic()
                assert client.healthz()["ok"] is True
                assert time.monotonic() - t0 >= 0.15

    def test_slow_loris_preserves_bytes(self, one_server, small_gaussians):
        x, _ = small_gaussians
        with _proxy(one_server, ChaosPlan.parse("slow:0:8:0.001")) as proxy:
            with ServeClient(*proxy.address, timeout=10.0) as client:
                direct = ServeClient(*one_server.address)
                want = direct.predict(x[0]).label
                direct.close()
                assert client.predict(x[0]).label == want

    def test_client_retries_ride_out_a_reset(self, one_server,
                                             small_gaussians):
        x, _ = small_gaussians
        with _proxy(one_server, ChaosPlan.parse("reset:1@1")) as proxy:
            # First connection resets on its first response; the retry
            # reconnects (conn 2, clean) and the predict succeeds.
            with ServeClient(*proxy.address, timeout=5.0, retries=3,
                             backoff=0.01, jitter=0.0) as client:
                assert client.predict(x[0]).label >= 0
            assert proxy.proxy.accepted >= 2


class TestRouterUnderPartition:
    def test_failover_routes_around_partitioned_replica(self, fleet_model,
                                                        small_gaussians):
        x, _ = small_gaussians
        with ReplicaSupervisor(model=fleet_model, mode="thread",
                               n_replicas=2) as sup:
            endpoints = sup.start()
            # Interpose a proxy in front of r0 only.
            (r0, h0, p0), (r1, h1, p1) = endpoints
            with chaos_proxy_in_thread(h0, p0) as proxy:
                routed = [(r0, *proxy.address), (r1, h1, p1)]
                with router_in_thread(routed, probe_interval_s=0.05,
                                      shard=False) as handle:
                    with ServeClient(*handle.address, timeout=10.0) as client:
                        assert client.predict(x[0]).label >= 0
                        proxy.partition()
                        # Every predict either fails over to r1 or sheds
                        # retryably; none may hard-fail.
                        for i in range(12):
                            try:
                                assert client.predict(x[i]).label >= 0
                            except FleetUnavailableError:
                                pass
                    reg = handle.router.registry
                    fam = reg.get("fleet_routed_total")
                    outcomes = {
                        (s["labels"]["replica"], s["labels"]["outcome"]):
                            s["value"]
                        for s in fam.snapshot()["samples"] if s["value"]
                    }
            assert any(k[1] == "failover" for k in outcomes) or any(
                k[0] == r1 and k[1] == "ok" for k in outcomes
            )

    def test_retry_budget_sheds_instead_of_amplifying(self, fleet_model,
                                                      small_gaussians):
        x, _ = small_gaussians
        with ReplicaSupervisor(model=fleet_model, mode="thread",
                               n_replicas=1) as sup:
            (rid, host, port), = sup.start()
            with chaos_proxy_in_thread(host, port) as proxy:
                with router_in_thread([(rid, *proxy.address)],
                                      probe_interval_s=10.0,  # no heal mid-test
                                      max_failovers=2,
                                      retry_budget_ratio=0.0,
                                      retry_budget_min=0) as handle:
                    with ServeClient(*handle.address, timeout=10.0) as client:
                        assert client.predict(x[0]).label >= 0
                        proxy.partition()
                        for i in range(5):
                            with pytest.raises(FleetUnavailableError):
                                client.predict(x[i])
                    router = handle.router
                    # Zero budget: every predict got exactly ONE transport
                    # attempt (the free first try), never a failover storm.
                    assert router.retry_budget.exhausted >= 5
                    assert int(
                        router._m_retry_exhausted.value) >= 5
                    snap = router.fleet_snapshot()
                    assert snap["retry_budget"]["retries"] == 0
