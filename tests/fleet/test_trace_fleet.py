"""Distributed tracing through the fleet: transparency, failover trees.

The three wire-level acceptance criteria of the tracing tentpole:

* untraced requests cross the router **byte-identical** — tracing must
  cost untouched traffic nothing, not even a JSON re-serialization;
* a traced predict that suffers a forced failover still reconstructs
  into one *connected* tree whose per-hop durations account for the
  client-observed latency;
* error outcomes are always sampled, even at ``sample_rate=0``.

Thread-mode replicas share the process with the router and the client,
so one in-memory :class:`TraceSink` observes every hop — exactly what a
shared trace file gives the multi-process deployment.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time

import pytest

from repro.errors import FleetUnavailableError
from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.obs.reqtrace import (
    TraceSink,
    build_traces,
    configure_tracer,
    reset_tracer,
    trace_summary,
)
from repro.serve import ServeClient


@pytest.fixture()
def traced_sink():
    """Process-global tracer over an in-memory sink; always restored."""
    sink = TraceSink()
    configure_tracer(sink=sink, sample_rate=1.0, seed=0)
    try:
        yield sink
    finally:
        reset_tracer()


class _CapturingReplica(socketserver.ThreadingTCPServer):
    """A fake replica that records every raw predict line it receives."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self):
        self.lines = []
        self.lock = threading.Lock()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    if b"healthz" in line:
                        reply = b'{"ok": true, "status": "serving"}\n'
                    else:
                        with outer.lock:
                            outer.lines.append(line)
                        reply = b'{"ok": true, "label": 0, "version": 1}\n'
                    self.wfile.write(reply)
                    self.wfile.flush()

        super().__init__(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()

    def stop(self):
        self.shutdown()
        self.server_close()
        self._thread.join(timeout=5)


def _raw_roundtrip(address, raw_line):
    with socket.create_connection(address, timeout=5.0) as sock:
        fh = sock.makefile("rwb")
        fh.write(raw_line)
        fh.flush()
        return fh.readline()


class TestByteTransparency:
    # Deliberately odd spacing/key order: any parse+re-serialize in the
    # router would normalize it and fail the equality check.
    RAW = b'{ "x":[1.0, 2.5] ,"op" :"predict" }\n'

    def _route_and_capture(self, raw_line):
        replica = _CapturingReplica()
        try:
            endpoint = [("fake-r0", *replica.server_address)]
            with router_in_thread(endpoint, probe_interval_s=30.0) as handle:
                reply = _raw_roundtrip(handle.address, raw_line)
                assert reply.startswith(b'{"ok": true')
                deadline = time.monotonic() + 5.0
                while not replica.lines and time.monotonic() < deadline:
                    time.sleep(0.01)
                return list(replica.lines)
        finally:
            replica.stop()

    def test_untraced_request_forwarded_byte_identical(self):
        lines = self._route_and_capture(self.RAW)
        assert lines == [self.RAW]

    def test_untraced_stays_identical_with_tracer_enabled(self, traced_sink):
        # An enabled tracer must only touch lines that carry a trace
        # field; everything else still crosses as the original bytes.
        lines = self._route_and_capture(self.RAW)
        assert lines == [self.RAW]

    def test_traced_request_gains_trace_field_only(self, traced_sink):
        traced = b'{"op": "predict", "x": [1.0, 2.5], "trace": ' \
                 b'{"id": "00000000000000aa", "span": "00000000000000bb", ' \
                 b'"sampled": 1}}\n'
        lines = self._route_and_capture(traced)
        assert len(lines) == 1
        forwarded = json.loads(lines[0])
        original = json.loads(traced)
        # Same request, re-parented onto the router's forward span.
        assert {k: v for k, v in forwarded.items() if k != "trace"} == \
            {k: v for k, v in original.items() if k != "trace"}
        assert forwarded["trace"]["id"] == "00000000000000aa"
        assert forwarded["trace"]["span"] != "00000000000000bb"


class TestFailoverTrace:
    def test_failover_predict_reconstructs_connected_tree(
            self, traced_sink, fleet_model, small_gaussians):
        x, _ = small_gaussians
        with ReplicaSupervisor(model=fleet_model, mode="thread",
                               n_replicas=2) as sup:
            endpoints = sup.start()
            # Probe interval far beyond the test: health only degrades
            # through forward failures, which is the path under test.
            with router_in_thread(endpoints, shard_model=fleet_model,
                                  probe_interval_s=60.0) as handle:
                with ServeClient(*handle.address) as client:
                    for i in range(8):
                        client.predict(x[i])  # traffic on both replicas
                    sup.kill("r0")
                    failover_wall = None
                    deadline = time.monotonic() + 15.0
                    i = 0
                    while failover_wall is None:
                        assert time.monotonic() < deadline, \
                            "no failover observed"
                        # Distinct points spread over both shard owners,
                        # so some predict must try the dead replica.
                        i += 1
                        t0 = time.perf_counter()
                        client.predict(x[i % 256])
                        wall = time.perf_counter() - t0
                        spans = traced_sink.spans()
                        if any(s["name"] == "router/forward"
                               and s["status"] == "failover"
                               for s in spans):
                            failover_wall = wall

        spans = traced_sink.spans()
        failover = next(s for s in spans
                        if s["name"] == "router/forward"
                        and s["status"] == "failover")
        tree = build_traces(spans)[failover["trace"]]
        assert tree.connected, "failover trace must form one tree"
        assert not tree.orphans
        names = [record["name"] for _, record in tree.walk()]
        assert names[0] == "client/predict"
        assert names.count("router/forward") >= 2  # dead try + retry
        assert "server/predict" in names
        assert any(n in names for n in ("server/model_call",
                                        "server/cache_hit"))

        summary = trace_summary(tree)
        # Per-hop self times must account for the client-observed
        # latency: within 5% (plus a small floor for timer granularity).
        assert summary["accounted_s"] <= failover_wall
        assert failover_wall - summary["accounted_s"] <= max(
            0.05 * failover_wall, 0.005
        )

    def test_healthy_predict_single_forward(self, traced_sink, fleet_model,
                                            small_gaussians):
        x, _ = small_gaussians
        with ReplicaSupervisor(model=fleet_model, mode="thread",
                               n_replicas=2) as sup:
            endpoints = sup.start()
            with router_in_thread(endpoints, shard_model=fleet_model,
                                  probe_interval_s=60.0) as handle:
                with ServeClient(*handle.address) as client:
                    client.predict(x[0])
        trees = build_traces(traced_sink.spans())
        assert len(trees) == 1
        tree = next(iter(trees.values()))
        assert tree.connected
        names = [record["name"] for _, record in tree.walk()]
        assert names.count("router/forward") == 1
        assert "server/predict" in names


class TestErrorsAlwaysSampled:
    def test_unavailable_error_traced_at_rate_zero(self, fleet_model,
                                                   small_gaussians):
        sink = TraceSink()
        configure_tracer(sink=sink, sample_rate=0.0, seed=0)
        try:
            x, _ = small_gaussians
            with ReplicaSupervisor(model=fleet_model, mode="thread",
                                   n_replicas=1) as sup:
                endpoints = sup.start()
                with router_in_thread(endpoints, shard_model=fleet_model,
                                      probe_interval_s=60.0,
                                      max_failovers=0) as handle:
                    with ServeClient(*handle.address,
                                     retries=0) as client:
                        client.predict(x[0])  # healthy: NOT emitted
                        assert sink.emitted == 0
                        sup.kill("r0")
                        with pytest.raises(FleetUnavailableError):
                            client.predict(x[1])
            statuses = {s["name"]: s["status"] for s in sink.spans()}
            assert statuses.get("client/predict") == "unavailable"
            assert statuses.get("router/route") == "unavailable"
        finally:
            reset_tracer()
