"""Crash recovery: the journal + reconcile protocol end to end.

The property test kills the rollout driver at *every* journal record
boundary (the deterministic ``crash_after`` hook) and asserts the
recovery pass always converges the fleet to exactly one fingerprint —
the old one before the ``staged`` commit point, the new one at or past
it, never a mix. Split-brain restart reconciliation and crash-loop
containment (backoff + quarantine) are covered on the supervisor.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import InjectedFault, ServeError
from repro.fleet import (
    ReplicaSupervisor,
    RolloutJournal,
    recover_fleet,
    router_in_thread,
)
from repro.serve import ServeClient


def _fingerprints(sup):
    return {
        rid: rep.registry.current().fingerprint
        for rid, rep in sup._replicas.items()
    }


#: Journal records of one complete 3-replica rollout with stages
#: (0.5, 1.0): intent, canary, canary_promoted, staged, promote(r1),
#: promote(r2), artifact, complete. The commit point is record 4.
N_ROLLOUT_RECORDS = 8
COMMIT_POINT = 4


@pytest.mark.parametrize("cut", range(N_ROLLOUT_RECORDS + 1))
def test_crash_at_every_record_boundary_converges(cut, tmp_path, fleet_model,
                                                  fleet_alt_model,
                                                  model_paths):
    """Kill the driver after ``cut`` journal records; recovery converges."""
    journal_dir = str(tmp_path / "journal")
    # Baseline artifact through a separate instance, so the crash hook
    # counts only the rollout's own records.
    RolloutJournal(journal_dir).set_artifact(
        model_paths["v1"], fleet_model.fingerprint()
    )
    crashing = RolloutJournal(journal_dir, crash_after=cut)
    old_fp = fleet_model.fingerprint()
    new_fp = fleet_alt_model.fingerprint()

    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=3) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=fleet_model,
                              probe_interval_s=0.05,
                              journal=crashing) as handle:
            future = asyncio.run_coroutine_threadsafe(
                handle.router.rollout.run(model_paths["v2"]), handle._loop
            )
            if cut < N_ROLLOUT_RECORDS:
                with pytest.raises(InjectedFault):
                    future.result(timeout=30)
            else:
                future.result(timeout=30)  # no crash: clean completion

            # The "restarted" driver replays with a fresh journal handle.
            summary = recover_fleet(endpoints, RolloutJournal(journal_dir))

            expect = new_fp if cut >= COMMIT_POINT else old_fp
            assert summary["converged"], summary
            assert set(_fingerprints(sup).values()) == {expect}, (
                f"cut={cut}: fleet did not converge to "
                f"{'new' if expect == new_fp else 'old'} fingerprint"
            )
            assert summary["unreachable"] == []
            # Terminal record landed: a second recovery pass is a noop.
            again = recover_fleet(endpoints, RolloutJournal(journal_dir))
            assert again["action"] == "noop"
            assert again["converged"]


def test_recovery_rolls_back_when_new_artifact_unloadable(tmp_path,
                                                          fleet_model,
                                                          model_paths):
    """Roll-forward that cannot complete falls back to full rollback.

    The journal says the rollout committed, but the new artifact file is
    gone by recovery time — partial forward progress would be
    split-brain, so every promoted replica must return to the baseline.
    """
    journal_dir = str(tmp_path / "journal")
    missing = str(tmp_path / "vanished.json")
    old_fp = fleet_model.fingerprint()
    j = RolloutJournal(journal_dir)
    j.set_artifact(model_paths["v1"], old_fp)
    j.append("intent", path=missing)
    j.append("canary", replica="r0")
    j.append("canary_promoted", replica="r0", fingerprint="fp-ghost")
    j.append("staged", fingerprint="fp-ghost")

    with ReplicaSupervisor(model=fleet_model, mode="thread",
                           n_replicas=2) as sup:
        endpoints = sup.start()
        # Pretend r0 promoted before the crash: publish the alt model so
        # its fingerprint strays from both baseline and (ghost) target.
        from repro.core.model import KeyBin2Model

        sup._replicas["r0"].registry.publish(
            KeyBin2Model.load(model_paths["v2"]), tag="pre-crash-promote"
        )
        summary = recover_fleet(endpoints, RolloutJournal(journal_dir))
        assert summary["action"] == "roll_back"
        assert set(_fingerprints(sup).values()) == {old_fp}
        assert summary["converged"]


def test_restarted_replica_reconciles_to_journal_artifact(tmp_path,
                                                          fleet_model,
                                                          fleet_alt_model,
                                                          model_paths):
    """Split-brain on restart: the replica must serve the *new* artifact.

    After a completed rollout the supervisor's construction-time model is
    stale. A journal-less restart would rejoin serving it; with the
    journal the replica is reconciled (reload + fingerprint verify)
    before the endpoint is announced.
    """
    journal_dir = str(tmp_path / "journal")
    journal = RolloutJournal(journal_dir)
    journal.set_artifact(model_paths["v1"], fleet_model.fingerprint())
    with ReplicaSupervisor(model=fleet_model, mode="thread", n_replicas=2,
                           journal=journal) as sup:
        sup.start()
        # A completed rollout moved the fleet (and the journal) to v2.
        for rep in sup._replicas.values():
            with ServeClient(rep.host, rep.port) as client:
                client.reload(model_paths["v2"])
        journal.set_artifact(model_paths["v2"], fleet_alt_model.fingerprint())

        sup.kill("r0")
        host, port = sup.restart("r0")
        # Thread-mode restart republishes the construction-time model —
        # the stale one — so only the reconcile step can explain v2 here.
        with ServeClient(host, port) as client:
            assert (client.model_info()["fingerprint"]
                    == fleet_alt_model.fingerprint())
        assert set(_fingerprints(sup).values()) == {
            fleet_alt_model.fingerprint()
        }


def test_sigkilled_process_replica_rejoins_on_journal_artifact(tmp_path,
                                                               model_paths,
                                                               fleet_alt_model):
    """Process-mode acceptance: SIGKILL after rollout, restart serves v2."""
    journal_dir = str(tmp_path / "journal")
    journal = RolloutJournal(journal_dir)
    new_fp = fleet_alt_model.fingerprint()
    with ReplicaSupervisor(model_paths["v1"], n_replicas=1, mode="process",
                           journal=journal) as sup:
        (rid, host, port), = sup.start()
        with ServeClient(host, port) as client:
            client.reload(model_paths["v2"])
        journal.set_artifact(model_paths["v2"], new_fp)

        sup.kill(rid)  # SIGKILL: no drain, no goodbye
        assert sup.check_and_restart() == [rid]
        (_, host, port), = sup.endpoints()
        with ServeClient(host, port) as client:
            assert client.model_info()["fingerprint"] == new_fp


def test_reconcile_failure_never_announces_the_replica(tmp_path, fleet_model):
    """A replica that cannot reach the artifact is torn down, not served."""
    journal_dir = str(tmp_path / "journal")
    journal = RolloutJournal(journal_dir)
    journal.set_artifact(str(tmp_path / "gone.json"), "fp-unreachable")
    with ReplicaSupervisor(model=fleet_model, mode="thread", n_replicas=1,
                           journal=journal) as sup:
        # start() itself does not reconcile (bootstrap trusts the model);
        # the restart path must refuse to readmit.
        sup.start()
        with pytest.raises(ServeError):
            sup.restart("r0")
        assert sup.endpoints() == []  # dead endpoint never advertised
        assert not sup.is_alive("r0")


def test_failed_start_clears_stale_endpoint(model_paths, monkeypatch):
    """Satellite: a failed restart must not advertise the old port."""
    with ReplicaSupervisor(model_paths["v1"], n_replicas=1,
                           mode="process") as sup:
        (rid, _, old_port), = sup.start()
        sup.kill(rid)

        def boom(rep):
            raise ServeError("injected start failure")

        monkeypatch.setattr(sup, "_start_one", boom)
        with pytest.raises(ServeError, match="injected"):
            sup.restart(rid)
        assert sup.endpoints() == []
        assert sup._replicas[rid].failed_starts == 1


def test_crash_loop_backs_off_and_quarantines(fleet_model):
    """Deterministic clock: fast crashes back off exponentially, then
    quarantine; a stable run resets the streak; unquarantine re-arms."""
    clk = {"t": 0.0}
    sup = ReplicaSupervisor(model=fleet_model, mode="thread", n_replicas=1,
                            restart_backoff_s=0.5, restart_backoff_max_s=30.0,
                            quarantine_after=2, stable_s=5.0,
                            clock=lambda: clk["t"])
    try:
        sup.start()
        # Crash 1 (uptime 1s < stable_s): restarts now, backoff armed.
        clk["t"] = 1.0
        sup.kill("r0")
        assert sup.check_and_restart() == ["r0"]
        assert sup._replicas["r0"].crash_streak == 1
        # Crash 2 arrives inside the backoff window: no hot loop.
        clk["t"] = 1.2
        sup.kill("r0")
        assert sup.check_and_restart() == []
        assert not sup.is_alive("r0")
        # Window over: second restart, doubled backoff.
        clk["t"] = 2.0
        assert sup.check_and_restart() == ["r0"]
        assert sup._replicas["r0"].crash_streak == 2
        assert sup._replicas["r0"].not_before == pytest.approx(3.0)
        # Crash 3 within stable_s: streak exceeds quarantine_after.
        clk["t"] = 4.0
        sup.kill("r0")
        assert sup.check_and_restart() == []
        assert sup.quarantined() == ["r0"]
        # Quarantine holds even far in the future.
        clk["t"] = 1000.0
        assert sup.check_and_restart() == []
        sup.unquarantine("r0")
        assert sup.check_and_restart() == ["r0"]
        # A long stable run resets the streak: next death is fresh.
        clk["t"] = 2000.0
        sup.kill("r0")
        assert sup.check_and_restart() == ["r0"]
        assert sup._replicas["r0"].crash_streak == 1
    finally:
        sup.stop()


def test_restart_metrics_count_outcomes(fleet_model):
    from repro.obs import default_registry

    sup = ReplicaSupervisor(model=fleet_model, mode="thread", n_replicas=1)
    try:
        sup.start()
        sup.kill("r0")
        sup.restart("r0")
    finally:
        sup.stop()
    fam = default_registry().get("fleet_replica_restarts_total")
    ok = {
        (s["labels"]["replica"], s["labels"]["outcome"]): s["value"]
        for s in fam.snapshot()["samples"]
    }
    assert ok.get(("r0", "ok"), 0) >= 1
