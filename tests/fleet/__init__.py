"""Fleet-tier tests (router, sharding, quotas, rollout, supervisor)."""
