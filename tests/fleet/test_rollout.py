"""Staged rollout: promotion, convergence, and canary auto-rollback.

Thread-mode replicas expose their registries, so these tests assert the
per-replica truth (what each registry actually serves), not just the
router's summary.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError, ValidationError
from repro.fleet.rollout import ROLLOUT_STATES, RolloutConfig, RolloutError
from repro.serve import ServeClient


def _fingerprints(sup):
    return {
        rid: rep.registry.current().fingerprint
        for rid, rep in sup._replicas.items()
    }


def test_staged_rollout_promotes_whole_fleet(thread_fleet, model_paths,
                                             fleet_alt_model,
                                             small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    new_fp = fleet_alt_model.fingerprint()
    with ServeClient(*handle.address, timeout=30.0) as client:
        for i in range(40):
            client.predict(x[i])  # feed the probe-row reservoir
        version = client.reload(model_paths["v2"], tag="canary-test")
        assert version >= 2
        assert set(_fingerprints(sup).values()) == {new_fp}
        assert client.predict(x[0]).fingerprint == new_fp
        status = client.request({"op": "fleet-status"})
    assert status["rollout"] == "complete"
    states = [entry["state"] for entry in status["rollout_history"]]
    assert states[:2] == ["canary", "staged"]
    assert states[-1] == "complete"


def test_canary_regression_auto_rolls_back(thread_fleet, model_paths,
                                           fleet_model, small_gaussians):
    """The deterministic regression: a loadable artifact with the wrong
    dimensionality. Live-traffic probe rows (old n_features) all fail
    validation on the canary, so the rollout must reject it and leave
    every replica — canary included — on the old fingerprint.
    """
    sup, handle = thread_fleet
    x, _ = small_gaussians
    old_fp = fleet_model.fingerprint()
    with ServeClient(*handle.address, timeout=30.0) as client:
        for i in range(40):
            client.predict(x[i])
        with pytest.raises(ServeError, match="canary .* rejected"):
            client.reload(model_paths["bad"], tag="broken")
        # Fleet-wide convergence back to the old artifact.
        assert set(_fingerprints(sup).values()) == {old_fp}
        assert client.predict(x[1]).fingerprint == old_fp
        status = client.request({"op": "fleet-status"})
    assert status["rollout"] == "rolled_back"
    # Only the canary ever saw the bad model: its registry carries the
    # publish + rollback churn, the others never republished.
    canary_swaps = sup._replicas["r0"].registry.swaps
    assert canary_swaps == 2  # bad publish, then rollback republish
    assert sup._replicas["r1"].registry.swaps == 0
    assert sup._replicas["r2"].registry.swaps == 0


def test_rollouts_metric_counts_outcomes(thread_fleet, model_paths,
                                         small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address, timeout=30.0) as client:
        for i in range(20):
            client.predict(x[i])
        client.reload(model_paths["v2"])
        with pytest.raises(ServeError):
            client.reload(model_paths["bad"])
    fam = handle.router.registry.get("fleet_rollouts_total")
    outcomes = {
        s["labels"]["outcome"]: s["value"] for s in fam.snapshot()["samples"]
    }
    assert outcomes == {"complete": 1, "canary_rejected": 1}


def test_unreadable_artifact_rejected_before_promotion(thread_fleet,
                                                       fleet_model):
    sup, handle = thread_fleet
    old_fp = fleet_model.fingerprint()
    with ServeClient(*handle.address, timeout=30.0) as client:
        with pytest.raises(ServeError):
            client.reload("/nonexistent/model.json")
        assert set(_fingerprints(sup).values()) == {old_fp}
        assert client.request({"op": "fleet-status"})["rollout"] == "rolled_back"
    # Reload failed server-side on the canary: no registry ever swapped.
    assert all(rep.registry.swaps == 0 for rep in sup._replicas.values())


def test_fleet_rollback_op_reverts_all_replicas(thread_fleet, model_paths,
                                                fleet_model, fleet_alt_model,
                                                small_gaussians):
    sup, handle = thread_fleet
    x, _ = small_gaussians
    with ServeClient(*handle.address, timeout=30.0) as client:
        for i in range(20):
            client.predict(x[i])
        client.reload(model_paths["v2"])
        assert set(_fingerprints(sup).values()) == {fleet_alt_model.fingerprint()}
        version = client.rollback()
        assert version > 0
        assert set(_fingerprints(sup).values()) == {fleet_model.fingerprint()}


def test_shard_model_refreshes_after_rollout(thread_fleet, model_paths,
                                             fleet_alt_model,
                                             small_gaussians):
    _, handle = thread_fleet
    x, _ = small_gaussians
    old_shard = handle.router._shard_model
    with ServeClient(*handle.address, timeout=30.0) as client:
        for i in range(20):
            client.predict(x[i])
        client.reload(model_paths["v2"])
    new_shard = handle.router._shard_model
    assert new_shard is not old_shard
    assert new_shard.fingerprint() == fleet_alt_model.fingerprint()


def test_rollout_config_validation():
    with pytest.raises(ValidationError):
        RolloutConfig(stages=())
    with pytest.raises(ValidationError):
        RolloutConfig(stages=(0.8, 0.5, 1.0))
    with pytest.raises(ValidationError):
        RolloutConfig(stages=(0.5, 0.9))  # must end at 1.0
    with pytest.raises(ValidationError):
        RolloutConfig(probes=0)
    with pytest.raises(ValidationError):
        RolloutConfig(max_error_rate=1.5)
    assert "idle" in ROLLOUT_STATES and "rolled_back" in ROLLOUT_STATES


def test_rollout_error_is_serve_error():
    assert issubclass(RolloutError, ServeError)
    assert RolloutError.code == "rollout_failed"
