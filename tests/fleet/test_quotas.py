"""Tenant quotas: bucket math, lazy defaults, bounded state, shed typing."""

from __future__ import annotations

import pytest

from repro.errors import ShedError, ValidationError
from repro.fleet.quotas import ANONYMOUS, TenantQuotaPolicy, TenantQuotas


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_unmetered_without_config():
    quotas = TenantQuotas()
    assert not quotas.enabled
    for _ in range(1000):
        quotas.try_admit("anyone")
        quotas.try_admit(None)
    assert quotas.shed_counts() == {}


def test_burst_then_rate_limit():
    clock = FakeClock()
    quotas = TenantQuotas(
        quotas={"acme": TenantQuotaPolicy(rate=10.0, burst=5.0)}, clock=clock
    )
    for _ in range(5):
        quotas.try_admit("acme")
    with pytest.raises(ShedError, match="tenant_quota"):
        quotas.try_admit("acme")
    clock.advance(0.1)  # one token refilled at 10/s
    quotas.try_admit("acme")
    with pytest.raises(ShedError):
        quotas.try_admit("acme")
    assert quotas.shed_counts() == {"acme": 2}


def test_refill_caps_at_burst():
    clock = FakeClock()
    quotas = TenantQuotas(
        quotas={"acme": TenantQuotaPolicy(rate=100.0, burst=3.0)}, clock=clock
    )
    clock.advance(60.0)  # a minute idle must not bank 6000 tokens
    for _ in range(3):
        quotas.try_admit("acme")
    with pytest.raises(ShedError):
        quotas.try_admit("acme")


def test_unlisted_tenant_passes_when_no_default():
    clock = FakeClock()
    quotas = TenantQuotas(
        quotas={"acme": TenantQuotaPolicy(rate=1.0, burst=1.0)}, clock=clock
    )
    quotas.try_admit("acme")
    with pytest.raises(ShedError):
        quotas.try_admit("acme")
    for _ in range(100):
        quotas.try_admit("other")  # unmetered


def test_default_policy_gives_each_tenant_its_own_bucket():
    clock = FakeClock()
    quotas = TenantQuotas(default=TenantQuotaPolicy(rate=1.0, burst=2.0),
                          clock=clock)
    quotas.try_admit("a")
    quotas.try_admit("a")
    with pytest.raises(ShedError):
        quotas.try_admit("a")
    quotas.try_admit("b")  # b's bucket is untouched by a's spend
    quotas.try_admit(None)  # anonymous traffic gets its own bucket too
    quotas.try_admit(None)
    with pytest.raises(ShedError):
        quotas.try_admit(None)
    assert quotas.shed_counts() == {"a": 1, ANONYMOUS: 1}


def test_lazy_bucket_count_is_bounded():
    clock = FakeClock()
    quotas = TenantQuotas(default=TenantQuotaPolicy(rate=1.0, burst=1.0),
                          max_tenants=50, clock=clock)
    for i in range(500):
        clock.advance(0.001)
        quotas.try_admit(f"tenant-{i}")
    assert len(quotas._lazy) <= 50


def test_policy_validation():
    with pytest.raises(ValidationError):
        TenantQuotaPolicy(rate=0.0)
    with pytest.raises(ValidationError):
        TenantQuotaPolicy(rate=5.0, burst=0.5)
    with pytest.raises(ValidationError):
        TenantQuotas(max_tenants=0)
