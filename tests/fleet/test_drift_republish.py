"""Drift e2e: regime change → detect → refresh → staged fleet republish.

The scaled-down CI twin of ``examples/insitu_drift_run.py``: a streaming
estimator watches a regime-changing stream while a thread-mode fleet
serves the stale model under open-loop load. The drift responder must
fire exactly once, push the refreshed model through the staged rollout
to ``complete``, and the client stream must see zero hard failures
throughout — the drift response is invisible to callers.
"""

from __future__ import annotations

import threading
import time

from repro.core.drift import DriftResponder
from repro.core.streaming import StreamingKeyBin2
from repro.data.streams import RegimeChangeStream
from repro.fleet import ReplicaSupervisor, router_in_thread
from repro.serve import ServeClient
from repro.serve.loadgen import run_open_loop

N_DIMS = 8
BOOTSTRAP_BATCHES = 2


def _stream():
    # change_at aligned with the 400-row window boundary: exactly one
    # full-TV window, hence exactly one drift event (see test_drift.py).
    return RegimeChangeStream(n_batches=10, batch_size=200, n_dims=N_DIMS,
                              change_at=4, seed=3)


def test_drift_response_republishes_under_load_without_client_errors(
        tmp_path):
    batches = [x for x, _ in _stream()]
    skb = StreamingKeyBin2(
        n_projections=3, candidate_depths=(4, 5), fused=True,
        adaptive=True, drift_window=400, drift_threshold=0.4, seed=0,
    )
    for x in batches[:BOOTSTRAP_BATCHES]:
        skb.partial_fit(x)
    v1 = skb.refresh().model_
    v1_fingerprint = v1.fingerprint()

    with ReplicaSupervisor(model=v1, mode="thread", n_replicas=3) as sup:
        endpoints = sup.start()
        with router_in_thread(endpoints, shard_model=v1,
                              probe_interval_s=0.05) as handle:
            host, port = handle.address

            def republish():
                path = tmp_path / f"drift-{skb.model_.fingerprint()}.json"
                skb.model_.save(path)
                with ServeClient(host, port) as client:
                    return client.request({
                        "op": "reload", "path": str(path),
                        "tag": "drift-response",
                    })

            responder = DriftResponder(skb, publish=republish)

            result = {}

            def load():
                result["report"] = run_open_loop(
                    host, port, batches[0], rate=200.0, duration_s=4.0,
                    n_connections=4, request_timeout_s=10.0,
                )

            loader = threading.Thread(target=load)
            loader.start()
            time.sleep(0.3)  # traffic established before the regime moves

            for x in batches[BOOTSTRAP_BATCHES:]:
                skb.partial_fit(x)
                responder.step()
                time.sleep(0.05)

            loader.join(timeout=30.0)
            assert not loader.is_alive()

            # Exactly one response: detected once, refreshed, republished
            # through the staged rollout to completion.
            events = responder.history
            assert len(events) == 1
            event = events[0]
            assert event.refreshed and event.score >= 0.4
            summary = event.publish_result
            assert summary["rollout"]["state"] == "complete"
            assert summary["fingerprint"] == skb.model_.fingerprint()
            assert summary["fingerprint"] != v1_fingerprint

            # The fleet now serves the refreshed model everywhere.
            with ServeClient(host, port) as client:
                status = client.request({"op": "fleet-status"})
            assert status["healthy_replicas"] == 3

    # Zero client-visible hard failures across the whole episode.
    report = result["report"]
    assert report.outcomes["error"] == 0
    assert report.outcomes["timeout"] == 0
    assert report.requests_ok == report.requests_sent
    assert report.requests_ok > 200
