"""Tests for interval/label mapping kernels."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.labels import combine_interval_labels, intervals_for_bins


class TestIntervalsForBins:
    def test_no_cuts_single_interval(self):
        bins = np.array([[0], [5], [15]], dtype=np.int32)
        iv = intervals_for_bins(bins, [np.empty(0, dtype=np.int64)])
        assert iv.ravel().tolist() == [0, 0, 0]

    def test_single_cut_splits(self):
        bins = np.array([[0], [7], [8], [15]], dtype=np.int32)
        iv = intervals_for_bins(bins, [np.array([7])])
        # searchsorted right: bin <= 7 → interval 0, bin > 7 → interval 1
        assert iv.ravel().tolist() == [0, 0, 1, 1]

    def test_multiple_cuts(self):
        bins = np.array([[0], [3], [4], [10], [11]], dtype=np.int32)
        iv = intervals_for_bins(bins, [np.array([3, 10])])
        assert iv.ravel().tolist() == [0, 0, 1, 1, 2]

    def test_per_dimension_cuts(self):
        bins = np.array([[0, 9], [9, 0]], dtype=np.int32)
        iv = intervals_for_bins(bins, [np.array([4]), np.array([4])])
        assert iv.tolist() == [[0, 1], [1, 0]]

    def test_cut_count_mismatch(self):
        with pytest.raises(ValidationError):
            intervals_for_bins(np.zeros((2, 2), dtype=np.int32), [np.array([1])])

    def test_engine_equals_direct(self, rng):
        bins = rng.integers(0, 32, (64, 3)).astype(np.int32)
        cuts = [np.array([10]), np.array([5, 20]), np.empty(0, dtype=np.int64)]
        a = intervals_for_bins(bins, cuts)
        b = intervals_for_bins(bins, cuts, engine=KernelEngine(7))
        assert np.array_equal(a, b)


class TestCombineIntervalLabels:
    def test_dense_labels(self):
        iv = np.array([[0, 0], [0, 1], [0, 0], [1, 1]], dtype=np.int32)
        labels, codes = combine_interval_labels(iv, [2, 2])
        assert labels.tolist() == [0, 1, 0, 2]
        assert codes.tolist() == [0, 1, 3]

    def test_codes_sorted_unique(self, rng):
        iv = rng.integers(0, 3, (100, 3)).astype(np.int32)
        labels, codes = combine_interval_labels(iv, [3, 3, 3])
        assert np.all(np.diff(codes) > 0)
        assert labels.max() == codes.size - 1

    def test_mixed_radix_injective(self, rng):
        radices = [3, 5, 2]
        iv = np.stack(
            [rng.integers(0, r, 200) for r in radices], axis=1
        ).astype(np.int32)
        labels, codes = combine_interval_labels(iv, radices)
        # Two rows share a label iff they are identical.
        uniq_rows = np.unique(iv, axis=0)
        assert codes.size == uniq_rows.shape[0]

    def test_radix_mismatch(self):
        with pytest.raises(ValidationError):
            combine_interval_labels(np.zeros((2, 2), dtype=np.int32), [2])

    def test_zero_radix_rejected(self):
        with pytest.raises(ValidationError):
            combine_interval_labels(np.zeros((2, 2), dtype=np.int32), [2, 0])
