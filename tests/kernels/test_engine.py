"""Tests for the chunked kernel engine."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine


class TestBlocks:
    def test_single_block_when_small(self):
        eng = KernelEngine(block_size=100)
        assert eng.blocks(50) == [(0, 50)]

    def test_none_block_size_single_launch(self):
        eng = KernelEngine(block_size=None)
        assert eng.blocks(10_000) == [(0, 10_000)]

    def test_blocks_cover_input(self):
        eng = KernelEngine(block_size=7)
        blocks = eng.blocks(23)
        assert blocks[0][0] == 0 and blocks[-1][1] == 23
        for (a0, a1), (b0, b1) in zip(blocks, blocks[1:]):
            assert a1 == b0

    def test_zero_rows(self):
        assert KernelEngine(8).blocks(0) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValidationError):
            KernelEngine(block_size=0)


class TestMap:
    def test_matches_unchunked(self, rng):
        x = rng.random((100, 4))
        eng = KernelEngine(block_size=13)
        out = eng.map(lambda b: b * 2.0, x)
        assert np.allclose(out, x * 2.0)

    def test_kernel_args_forwarded(self, rng):
        x = rng.random((50, 3))
        eng = KernelEngine(block_size=9)
        out = eng.map(lambda b, k: b + k, x, 5.0)
        assert np.allclose(out, x + 5.0)

    def test_preallocated_out(self, rng):
        x = rng.random((20, 2))
        out = np.empty_like(x)
        eng = KernelEngine(block_size=6)
        result = eng.map(lambda b: b, x, out=out)
        assert result is out
        assert np.allclose(out, x)

    def test_launch_counter(self, rng):
        x = rng.random((30, 2))
        eng = KernelEngine(block_size=10)
        eng.map(lambda b: b, x)
        assert eng.launches == 3

    def test_zero_row_input(self):
        eng = KernelEngine(block_size=4)
        out = eng.map(lambda b: b, np.empty((0, 3)), out_shape=(0, 3))
        assert out.shape == (0, 3)

    def test_dtype_override(self, rng):
        x = rng.random((10, 2))
        eng = KernelEngine(block_size=4)
        out = eng.map(
            lambda b: (b > 0.5).astype(np.int32), x,
            out_shape=(10, 2), out_dtype=np.int32,
        )
        assert out.dtype == np.int32


class TestReduce:
    def test_sum_reduction_matches(self, rng):
        x = rng.random((101, 5))
        eng = KernelEngine(block_size=17)
        total = eng.reduce(
            lambda b: b.sum(axis=0), x, combine=lambda a, b: a + b
        )
        assert np.allclose(total, x.sum(axis=0))

    def test_initial_value(self, rng):
        x = rng.random((10, 2))
        eng = KernelEngine(block_size=3)
        base = np.full(2, 100.0)
        total = eng.reduce(
            lambda b: b.sum(axis=0), x, combine=lambda a, b: a + b, initial=base
        )
        assert np.allclose(total, x.sum(axis=0) + 100.0)

    def test_empty_input_returns_initial(self):
        eng = KernelEngine(block_size=3)
        assert eng.reduce(lambda b: b.sum(), np.empty((0, 2)),
                          combine=lambda a, b: a + b, initial=0.0) == 0.0


class TestLaunchAccounting:
    """Regression: the launch metric must track *executed* blocks.

    It used to be bumped for the whole grid up front, so a kernel
    exception mid-chunk overstated launches that never happened.
    """

    def _exploding_kernel(self, fail_on_call):
        calls = {"n": 0}

        def kernel(block):
            calls["n"] += 1
            if calls["n"] == fail_on_call:
                raise RuntimeError("boom")
            return block

        return kernel

    def test_map_counts_only_attempted_blocks(self, rng):
        x = rng.random((50, 2))
        eng = KernelEngine(block_size=10)  # 5 blocks
        with pytest.raises(RuntimeError):
            eng.map(self._exploding_kernel(fail_on_call=3), x)
        assert eng.launches == 3

    def test_reduce_counts_only_attempted_blocks(self, rng):
        x = rng.random((40, 2))
        eng = KernelEngine(block_size=10)  # 4 blocks
        with pytest.raises(RuntimeError):
            eng.reduce(
                self._exploding_kernel(fail_on_call=2), x,
                combine=lambda a, b: a + b,
            )
        assert eng.launches == 2

    def test_metric_matches_attribute(self, rng):
        from repro.obs import default_registry

        reg = default_registry()
        if not reg.enabled:
            reg.enable()

        def kernel(block):
            return block

        counter = reg.counter(
            "kernel_launches_total",
            "Block launches executed by the kernel engine, per kernel.",
            ("kernel",),
        ).labels(kernel="kernel")
        before = counter.value
        eng = KernelEngine(block_size=7)
        eng.map(kernel, rng.random((30, 2)))  # 5 blocks
        assert eng.launches == 5
        assert counter.value - before == 5
