"""Tests for histogram accumulation kernels."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.histogram import accumulate_histogram, accumulate_histograms


class TestAccumulateHistogram:
    def test_counts_simple(self):
        bins = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.int32)
        h = accumulate_histogram(bins, n_bins=2)
        assert h.tolist() == [[2, 1], [1, 2]]

    def test_total_equals_points(self, rng):
        bins = rng.integers(0, 8, size=(100, 3)).astype(np.int32)
        h = accumulate_histogram(bins, 8)
        assert np.all(h.sum(axis=1) == 100)

    def test_matches_numpy_histogram(self, rng):
        bins = rng.integers(0, 16, size=(500, 1)).astype(np.int32)
        h = accumulate_histogram(bins, 16)
        expected = np.bincount(bins.ravel(), minlength=16)
        assert np.array_equal(h[0], expected)

    def test_in_place_accumulation(self, rng):
        bins = rng.integers(0, 4, size=(50, 2)).astype(np.int32)
        acc = np.zeros((2, 4), dtype=np.int64)
        accumulate_histogram(bins, 4, out=acc)
        accumulate_histogram(bins, 4, out=acc)
        single = accumulate_histogram(bins, 4)
        assert np.array_equal(acc, single * 2)

    def test_engine_chunked_equals_direct(self, rng):
        bins = rng.integers(0, 8, size=(97, 4)).astype(np.int32)
        direct = accumulate_histogram(bins, 8)
        chunked = accumulate_histogram(bins, 8, engine=KernelEngine(10))
        assert np.array_equal(direct, chunked)

    def test_empty_input(self):
        h = accumulate_histogram(np.empty((0, 2), dtype=np.int32), 4)
        assert h.shape == (2, 4)
        assert h.sum() == 0

    def test_wrong_out_shape(self):
        with pytest.raises(ValidationError):
            accumulate_histogram(
                np.zeros((3, 2), dtype=np.int32), 4,
                out=np.zeros((2, 8), dtype=np.int64),
            )

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            accumulate_histogram(np.zeros(3, dtype=np.int32), 4)


class TestAccumulateHistograms:
    def test_multi_depth(self, rng):
        from repro.kernels.keys import bin_indices_at_depths

        x = rng.random((80, 2))
        bins = bin_indices_at_depths(x, [0, 0], [1, 1], [2, 4])
        hists = accumulate_histograms(bins)
        assert hists[2].shape == (2, 4)
        assert hists[4].shape == (2, 16)
        assert hists[2].sum() == hists[4].sum() == 160

    def test_accumulates_into_out(self, rng):
        bins = {2: rng.integers(0, 4, (10, 1)).astype(np.int32)}
        out = accumulate_histograms(bins)
        out2 = accumulate_histograms(bins, out=out)
        assert out2[2].sum() == 20
