"""Tests for the pluggable kernel-backend registry and selection."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)


class TestRegistry:
    def test_numpy_always_registered_and_available(self):
        avail = available_backends()
        assert avail["numpy"] is True

    def test_numba_registered_even_when_absent(self):
        # The optional backend must be *listed* regardless of whether the
        # dependency is importable — availability is the separate flag.
        import repro.kernels.numba_backend  # noqa: F401

        assert "numba" in available_backends()

    def test_register_rejects_abstract_name(self):
        class Anon(KernelBackend):
            pass

        with pytest.raises(ValidationError):
            register_backend(Anon)


class TestGetBackend:
    def test_default_resolves_to_available_backend(self):
        be = get_backend()
        assert be.is_available()

    def test_explicit_name(self):
        assert get_backend("numpy").name == "numpy"

    def test_name_is_case_insensitive(self):
        assert get_backend("NumPy").name == "numpy"

    def test_instance_passthrough(self):
        inst = NumpyBackend()
        assert get_backend(inst) is inst

    def test_fresh_instance_per_call(self):
        # Backends hold per-consumer scratch state; sharing them across
        # models would race.
        assert get_backend("numpy") is not get_backend("numpy")

    def test_auto_resolves(self):
        assert get_backend("auto").is_available()

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warpdrive")
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            get_backend()

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            get_backend("warpdrive")

    def test_unavailable_backend_raises_clearly(self):
        import repro.kernels.numba_backend as nb

        if nb.NumbaBackend.is_available():  # pragma: no cover - numba host
            pytest.skip("numba installed; unavailability path not reachable")
        with pytest.raises(ValidationError, match="not available"):
            get_backend("numba")


class TestNumpyFusedChunk:
    """Direct contract tests for the fused per-chunk primitive."""

    def _setup(self, rng, n=4, m=200, depth=5):
        projected = np.ascontiguousarray(rng.standard_normal((n, m)) * 3)
        r_min = projected.min(axis=1) - 0.1
        r_max = projected.max(axis=1) + 0.1
        from repro.kernels.keys import bin_scale

        r_min_v, scale = bin_scale(r_min, r_max, depth)
        return projected, r_min_v, scale, 1 << depth

    def test_codes_match_reference_binning(self, rng):
        proj, r_min, scale, n_bins = self._setup(rng)
        expected = np.clip(
            np.floor((proj - r_min[:, None]) * scale[:, None]), 0, n_bins - 1
        ).astype(np.uint64)
        codes = np.empty(proj.shape[1], dtype=np.uint64)
        be = NumpyBackend()
        assert be.fused_chunk(proj.copy(), r_min, scale, n_bins, codes=codes) == -1
        # Canonical packing: dim 0 in the most significant byte.
        weights = np.array(
            [1 << (8 * (7 - j)) for j in range(proj.shape[0])], dtype=np.uint64
        )
        assert np.array_equal(codes, (expected.T * weights).sum(axis=1))

    def test_hist_accumulates_in_place(self, rng):
        proj, r_min, scale, n_bins = self._setup(rng)
        n = proj.shape[0]
        hist = np.zeros(n * n_bins, dtype=np.int64)
        be = NumpyBackend()
        assert be.fused_chunk(proj.copy(), r_min, scale, n_bins, hist_flat=hist) == -1
        first = hist.copy()
        assert be.fused_chunk(proj.copy(), r_min, scale, n_bins, hist_flat=hist) == -1
        assert np.array_equal(hist, 2 * first)
        assert first.sum() == n * proj.shape[1]

    def test_rows_output_matches_codes(self, rng):
        proj, r_min, scale, n_bins = self._setup(rng, n=3)
        be = NumpyBackend()
        codes = np.empty(proj.shape[1], dtype=np.uint64)
        rows = np.empty(proj.shape, dtype=np.uint8)
        assert (
            be.fused_chunk(proj.copy(), r_min, scale, n_bins, codes=codes, rows=rows)
            == -1
        )
        from repro.kernels.fused import decode_key_codes

        assert np.array_equal(decode_key_codes(codes, 3), rows.T)

    def test_nonfinite_reports_first_bad_sample(self, rng):
        proj, r_min, scale, n_bins = self._setup(rng)
        proj[2, 57] = np.nan
        proj[0, 80] = np.inf
        be = NumpyBackend()
        assert be.fused_chunk(proj, r_min, scale, n_bins) == 57

    def test_empty_chunk_is_noop(self):
        be = NumpyBackend()
        empty = np.empty((3, 0), dtype=np.float64)
        params = np.zeros(3)
        assert be.fused_chunk(empty, params, params + 1.0, 8) == -1

    def test_scratch_reuse_across_widths_stays_correct(self, rng):
        # A narrower state reusing the backend after a wider one must not
        # inherit stale padding bytes in its packed codes.
        be = NumpyBackend()
        for n in (8, 3, 8, 3):
            proj, r_min, scale, n_bins = self._setup(rng, n=n, m=64)
            codes = np.empty(64, dtype=np.uint64)
            assert be.fused_chunk(proj.copy(), r_min, scale, n_bins, codes=codes) == -1
            tail_bits = 8 * (8 - n)
            assert np.all(codes & ((np.uint64(1) << np.uint64(tail_bits)) - np.uint64(1)) == 0)
