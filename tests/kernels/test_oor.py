"""Out-of-range accounting in the binning kernels (all paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.backend import NumpyBackend, available_backends, get_backend
from repro.kernels.fused import FusedStateSpec, fused_partial_fit
from repro.kernels.keys import bin_scale, bin_indices

DEPTH = 4
N_BINS = 1 << DEPTH


def _batch(rng, m=200, n=3):
    x = rng.uniform(-2.0, 2.0, size=(m, n))
    r_min = np.full(n, -1.0)
    r_max = np.full(n, 1.0)
    return x, r_min, r_max


def _expected_oor(x, r_min, r_max):
    lo = (x < r_min).sum(axis=0).astype(np.int64)
    hi = (x > r_max).sum(axis=0).astype(np.int64)
    return lo, hi


class TestBinScaleValidation:
    def test_nan_bound_names_dimension(self):
        r_min = np.array([0.0, np.nan, 0.0])
        r_max = np.array([1.0, 1.0, 1.0])
        with pytest.raises(ValidationError, match=r"dimension\(s\) 1"):
            bin_scale(r_min, r_max, DEPTH)

    def test_inf_bound_names_dimension(self):
        r_min = np.array([0.0, 0.0])
        r_max = np.array([np.inf, 1.0])
        with pytest.raises(ValidationError, match=r"dimension\(s\) 0"):
            bin_scale(r_min, r_max, DEPTH)

    def test_many_bad_dims_truncates_listing(self):
        n = 12
        r_min = np.full(n, np.nan)
        r_max = np.ones(n)
        with pytest.raises(ValidationError, match="12 dims total"):
            bin_scale(r_min, r_max, DEPTH)

    def test_finite_bounds_pass(self):
        r_min, scale = bin_scale(np.zeros(2), np.ones(2), DEPTH)
        assert np.all(np.isfinite(scale))


class TestBinIndicesOor:
    def test_counts_match_direct_comparison(self, rng):
        x, r_min, r_max = _batch(rng)
        lo = np.zeros(3, dtype=np.int64)
        hi = np.zeros(3, dtype=np.int64)
        idx = bin_indices(x, r_min, r_max, DEPTH, oor_low=lo, oor_high=hi)
        exp_lo, exp_hi = _expected_oor(x, r_min, r_max)
        np.testing.assert_array_equal(lo, exp_lo)
        np.testing.assert_array_equal(hi, exp_hi)
        # Clipping semantics unchanged: OOR rows land in the edge bins.
        assert idx.min() >= 0 and idx.max() < N_BINS

    def test_counters_accumulate_across_calls(self, rng):
        x, r_min, r_max = _batch(rng)
        lo = np.zeros(3, dtype=np.int64)
        hi = np.zeros(3, dtype=np.int64)
        bin_indices(x, r_min, r_max, DEPTH, oor_low=lo, oor_high=hi)
        once_lo, once_hi = lo.copy(), hi.copy()
        bin_indices(x, r_min, r_max, DEPTH, oor_low=lo, oor_high=hi)
        np.testing.assert_array_equal(lo, 2 * once_lo)
        np.testing.assert_array_equal(hi, 2 * once_hi)

    def test_in_range_counts_zero(self, rng):
        x = rng.uniform(0.1, 0.9, size=(100, 2))
        lo = np.zeros(2, dtype=np.int64)
        hi = np.zeros(2, dtype=np.int64)
        bin_indices(x, np.zeros(2), np.ones(2), DEPTH, oor_low=lo, oor_high=hi)
        assert lo.sum() == 0 and hi.sum() == 0

    def test_both_or_neither(self, rng):
        x, r_min, r_max = _batch(rng)
        with pytest.raises(ValidationError):
            bin_indices(x, r_min, r_max, DEPTH,
                        oor_low=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValidationError):
            bin_indices(x, r_min, r_max, DEPTH,
                        oor_high=np.zeros(3, dtype=np.int64))

    def test_tracked_indices_equal_untracked(self, rng):
        x, r_min, r_max = _batch(rng)
        plain = bin_indices(x, r_min, r_max, DEPTH)
        lo = np.zeros(3, dtype=np.int64)
        hi = np.zeros(3, dtype=np.int64)
        tracked = bin_indices(x, r_min, r_max, DEPTH, oor_low=lo, oor_high=hi)
        np.testing.assert_array_equal(plain, tracked)


class TestBackendOor:
    def _spec_run(self, backend, x, r_min, r_max):
        n = x.shape[1]
        proj = np.eye(n)
        spec = FusedStateSpec(matrix=proj, r_min=r_min, r_max=r_max,
                              depths=(DEPTH,))
        res = fused_partial_fit(x, [spec], backend=backend)[0]
        return res

    @pytest.mark.parametrize("backend", [
        name for name, ok in available_backends().items() if ok
    ])
    def test_fused_oor_matches_direct(self, rng, backend):
        x, r_min, r_max = _batch(rng)
        res = self._spec_run(get_backend(backend), x, r_min, r_max)
        exp_lo, exp_hi = _expected_oor(x, r_min, r_max)
        np.testing.assert_array_equal(res.oor_low, exp_lo)
        np.testing.assert_array_equal(res.oor_high, exp_hi)

    def test_numpy_backend_counts_at_chunk_level(self, rng):
        backend = NumpyBackend()
        x, r_min, r_max = _batch(rng, m=50, n=2)
        r_minv, scale = bin_scale(r_min, r_max, DEPTH)
        work = np.ascontiguousarray(x.T)  # dimension-major chunk
        hist_flat = np.zeros(2 * N_BINS, dtype=np.int64)
        lo = np.zeros(2, dtype=np.int64)
        hi = np.zeros(2, dtype=np.int64)
        backend.fused_chunk(work, r_minv, scale, N_BINS,
                            hist_flat=hist_flat, oor_low=lo, oor_high=hi)
        exp_lo, exp_hi = _expected_oor(x, r_min, r_max)
        np.testing.assert_array_equal(lo, exp_lo)
        np.testing.assert_array_equal(hi, exp_hi)

    def test_track_bounds_reports_observed_extremes(self, rng):
        x, r_min, r_max = _batch(rng)
        n = x.shape[1]
        spec = FusedStateSpec(matrix=np.eye(n), r_min=r_min,
                              r_max=r_max, depths=(DEPTH,))
        res = fused_partial_fit(x, [spec], backend=NumpyBackend(),
                                track_bounds=True)[0]
        np.testing.assert_allclose(res.obs_lo, x.min(axis=0))
        np.testing.assert_allclose(res.obs_hi, x.max(axis=0))

    def test_bounds_off_by_default(self, rng):
        x, r_min, r_max = _batch(rng)
        res = self._spec_run(NumpyBackend(), x, r_min, r_max)
        assert res.obs_lo is None and res.obs_hi is None
