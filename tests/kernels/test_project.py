"""Tests for the projection kernel."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.project import project_points


class TestProjectPoints:
    def test_matches_matmul(self, rng):
        x = rng.random((40, 8))
        a = rng.random((8, 3))
        assert np.allclose(project_points(x, a), x @ a)

    def test_engine_chunked_equals_direct(self, rng):
        x = rng.random((101, 6))
        a = rng.random((6, 2))
        direct = project_points(x, a)
        chunked = project_points(x, a, engine=KernelEngine(17))
        assert np.allclose(direct, chunked)

    def test_preallocated_out(self, rng):
        x = rng.random((10, 4))
        a = rng.random((4, 2))
        out = np.empty((10, 2))
        result = project_points(x, a, out=out)
        assert result is out
        assert np.allclose(out, x @ a)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            project_points(rng.random((5, 3)), rng.random((4, 2)))

    def test_1d_rejected(self, rng):
        with pytest.raises(ValidationError):
            project_points(rng.random(5), rng.random((5, 2)))

    def test_projection_is_linear(self, rng):
        x1 = rng.random((10, 5))
        x2 = rng.random((10, 5))
        a = rng.random((5, 3))
        assert np.allclose(
            project_points(x1 + x2, a),
            project_points(x1, a) + project_points(x2, a),
        )
