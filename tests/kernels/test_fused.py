"""Tests for the fused projection → bin → histogram → key driver."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.fused import (
    FusedStateSpec,
    decode_key_codes,
    fused_partial_fit,
    project_bin_count,
)
from repro.kernels.histogram import accumulate_histogram
from repro.kernels.keys import bin_indices, prefix_bins
from repro.kernels.project import project_points


def _reference(x, matrix, r_min, r_max, depths):
    """The unfused kernel chain the fused path must reproduce bit-for-bit."""
    projected = x if matrix is None else project_points(x, matrix)
    depths = sorted(set(depths))
    deepest = depths[-1]
    deep = bin_indices(projected, r_min, r_max, deepest)
    hist = {}
    for d in depths:
        b = deep if d == deepest else prefix_bins(deep, deepest, d)
        out = np.zeros((projected.shape[1], 1 << d), dtype=np.int64)
        accumulate_histogram(b, 1 << d, out=out)
        hist[d] = out
    rows = np.unique(deep.astype(np.uint8), axis=0)
    # np.unique(axis=0) sorts rows lexicographically — same order as the
    # fused path's byte-encoded codes.
    counts = np.array(
        [(deep == r).all(axis=1).sum() for r in rows], dtype=np.int64
    )
    return hist, rows, counts


def _spec_for(x, matrix, depths, rng_margin=0.25):
    projected = x if matrix is None else x @ matrix
    r_min = projected.min(axis=0) - rng_margin
    r_max = projected.max(axis=0) + rng_margin
    return r_min, r_max


class TestProjectBinCount:
    @pytest.mark.parametrize("chunk_size", [None, 17, 1000, 10_000])
    def test_matches_reference_chain(self, rng, chunk_size):
        x = rng.standard_normal((257, 12))
        matrix = rng.standard_normal((12, 4))
        r_min, r_max = _spec_for(x, matrix, (3, 5))
        res = project_bin_count(
            x, matrix, r_min, r_max, (3, 5), backend="numpy",
            chunk_size=chunk_size,
        )
        hist, rows, counts = _reference(x, matrix, r_min, r_max, (3, 5))
        for d in (3, 5):
            assert np.array_equal(res.hist[d], hist[d])
        assert np.array_equal(res.key_rows, rows)
        assert np.array_equal(res.key_counts, counts)
        assert res.n_rows == 257

    def test_no_projection_matrix(self, rng):
        x = rng.standard_normal((64, 3))
        r_min, r_max = _spec_for(x, None, (4,))
        res = project_bin_count(x, None, r_min, r_max, (4,), backend="numpy")
        hist, rows, counts = _reference(x, None, r_min, r_max, (4,))
        assert np.array_equal(res.hist[4], hist[4])
        assert np.array_equal(res.key_rows, rows)
        assert np.array_equal(res.key_counts, counts)

    def test_wide_state_falls_back_to_rows(self, rng):
        x = rng.standard_normal((120, 16))
        matrix = rng.standard_normal((16, 10))  # > 8 dims: no uint64 code
        r_min, r_max = _spec_for(x, matrix, (2, 3))
        res = project_bin_count(x, matrix, r_min, r_max, (2, 3), backend="numpy")
        assert res.key_codes is None
        hist, rows, counts = _reference(x, matrix, r_min, r_max, (2, 3))
        assert np.array_equal(res.key_rows, rows)
        assert np.array_equal(res.key_counts, counts)
        for d in (2, 3):
            assert np.array_equal(res.hist[d], hist[d])

    def test_empty_batch(self, rng):
        x = np.empty((0, 5))
        matrix = rng.standard_normal((5, 2))
        res = project_bin_count(x, matrix, [-1, -1], [1, 1], (3,), backend="numpy")
        assert res.n_rows == 0
        assert res.key_rows.shape[0] == 0
        assert res.key_counts.shape == (0,)
        assert res.key_codes.shape == (0,)
        assert res.hist[3].sum() == 0

    def test_codes_decode_to_rows(self, rng):
        x = rng.standard_normal((90, 6))
        matrix = rng.standard_normal((6, 5))
        r_min, r_max = _spec_for(x, matrix, (4,))
        res = project_bin_count(x, matrix, r_min, r_max, (4,), backend="numpy")
        assert np.array_equal(decode_key_codes(res.key_codes, 5), res.key_rows)

    def test_nan_input_raises_with_row_index(self, rng):
        x = rng.standard_normal((40, 4))
        x[23, 1] = np.nan
        matrix = rng.standard_normal((4, 2))
        with pytest.raises(ValidationError, match="row 23"):
            project_bin_count(x, matrix, [-9, -9], [9, 9], (3,), backend="numpy")

    @pytest.mark.parametrize("bad", [np.inf, -np.inf])
    def test_inf_input_raises(self, rng, bad):
        x = rng.standard_normal((40, 4))
        x[7, 0] = bad
        with pytest.raises(ValidationError, match="non-finite"):
            project_bin_count(x, None, [-9] * 4, [9] * 4, (3,), backend="numpy")


class TestFusedPartialFit:
    def test_multi_state_shared_gemm(self, rng):
        x = rng.standard_normal((150, 10))
        specs = []
        expected = []
        for n_rp, depths in ((3, (2, 4)), (5, (4,)), (2, (1, 3))):
            matrix = rng.standard_normal((10, n_rp))
            r_min, r_max = _spec_for(x, matrix, depths)
            specs.append(FusedStateSpec(matrix, r_min, r_max, depths))
            expected.append(_reference(x, matrix, r_min, r_max, depths))
        results = fused_partial_fit(x, specs, backend="numpy", chunk_size=64)
        for res, (hist, rows, counts) in zip(results, expected):
            for d in hist:
                assert np.array_equal(res.hist[d], hist[d])
            assert np.array_equal(res.key_rows, rows)
            assert np.array_equal(res.key_counts, counts)

    def test_mixed_projected_and_raw_states(self, rng):
        x = rng.standard_normal((80, 4))
        matrix = rng.standard_normal((4, 3))
        rm1, rx1 = _spec_for(x, matrix, (3,))
        rm2, rx2 = _spec_for(x, None, (2,))
        results = fused_partial_fit(
            x,
            [
                FusedStateSpec(matrix, rm1, rx1, (3,)),
                FusedStateSpec(None, rm2, rx2, (2,)),
            ],
            backend="numpy",
        )
        h1, r1, c1 = _reference(x, matrix, rm1, rx1, (3,))
        h2, r2, c2 = _reference(x, None, rm2, rx2, (2,))
        assert np.array_equal(results[0].hist[3], h1[3])
        assert np.array_equal(results[1].hist[2], h2[2])
        assert np.array_equal(results[1].key_rows, r2)

    def test_no_specs_rejected(self, rng):
        with pytest.raises(ValidationError):
            fused_partial_fit(rng.standard_normal((5, 2)), [])

    def test_bad_chunk_size_rejected(self, rng):
        x = rng.standard_normal((5, 2))
        spec = FusedStateSpec(None, np.array([-9.0, -9.0]), np.array([9.0, 9.0]), (2,))
        with pytest.raises(ValidationError):
            fused_partial_fit(x, [spec], chunk_size=0)

    def test_depth_over_8_rejected(self, rng):
        x = rng.standard_normal((5, 2))
        spec = FusedStateSpec(None, np.array([-9.0, -9.0]), np.array([9.0, 9.0]), (9,))
        with pytest.raises(ValidationError, match="depths"):
            fused_partial_fit(x, [spec])

    def test_matrix_shape_mismatch_rejected(self, rng):
        x = rng.standard_normal((5, 3))
        matrix = rng.standard_normal((4, 2))  # expects 4 features, x has 3
        spec = FusedStateSpec(matrix, np.zeros(2), np.ones(2), (2,))
        with pytest.raises(ValidationError, match="features"):
            fused_partial_fit(x, [spec])

    def test_launch_metrics_recorded(self, rng):
        from repro.obs import default_registry

        reg = default_registry()
        if not reg.enabled:
            reg.enable()
        before = reg.counter(
            "kernel_fused_rows_total",
            "Points processed by the fused kernel path, per backend.",
            ("backend",),
        ).labels(backend="numpy").value
        x = rng.standard_normal((33, 4))
        spec = FusedStateSpec(
            None, np.full(4, -9.0), np.full(4, 9.0), (3,)
        )
        fused_partial_fit(x, [spec], backend="numpy", chunk_size=10)
        after = reg.counter(
            "kernel_fused_rows_total",
            "Points processed by the fused kernel path, per backend.",
            ("backend",),
        ).labels(backend="numpy").value
        assert after - before == 33


class TestDecodeKeyCodes:
    def test_round_trip(self, rng):
        rows = rng.integers(0, 256, size=(30, 6)).astype(np.uint8)
        buf = np.zeros((30, 8), dtype=np.uint8)
        buf[:, :6] = rows
        codes = buf.view(">u8").ravel().astype(np.uint64)
        assert np.array_equal(decode_key_codes(codes, 6), rows)

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            decode_key_codes(np.zeros(1, dtype=np.uint64), 9)
        with pytest.raises(ValidationError):
            decode_key_codes(np.zeros(1, dtype=np.uint64), 0)
