"""Tests for hierarchical key/bin kernels."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.engine import KernelEngine
from repro.kernels.keys import (
    bin_indices,
    bin_indices_at_depths,
    pack_keys,
    prefix_bins,
    unpack_keys,
)


class TestBinIndices:
    def test_unit_range_depth1(self):
        x = np.array([[0.1], [0.9]])
        bins = bin_indices(x, [0.0], [1.0], depth=1)
        assert bins.ravel().tolist() == [0, 1]

    def test_depth_gives_2_pow_d_bins(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        bins = bin_indices(x, [0.0], [1.0], depth=4)
        assert bins.min() == 0
        assert bins.max() == 15

    def test_out_of_range_clipped(self):
        x = np.array([[-5.0], [5.0]])
        bins = bin_indices(x, [0.0], [1.0], depth=3)
        assert bins.ravel().tolist() == [0, 7]

    def test_boundary_value_in_last_bin(self):
        x = np.array([[1.0]])
        bins = bin_indices(x, [0.0], [1.0], depth=3)
        assert bins[0, 0] == 7

    def test_per_dimension_ranges(self):
        x = np.array([[0.5, 50.0]])
        bins = bin_indices(x, [0.0, 0.0], [1.0, 100.0], depth=2)
        assert bins.ravel().tolist() == [2, 2]

    def test_monotonic_in_value(self, rng):
        vals = np.sort(rng.random(50)).reshape(-1, 1)
        bins = bin_indices(vals, [0.0], [1.0], depth=5).ravel()
        assert np.all(np.diff(bins) >= 0)

    def test_engine_chunked_equals_direct(self, rng):
        x = rng.random((77, 3))
        direct = bin_indices(x, [0] * 3, [1] * 3, 5)
        chunked = bin_indices(x, [0] * 3, [1] * 3, 5, engine=KernelEngine(13))
        assert np.array_equal(direct, chunked)

    def test_invalid_depth(self):
        with pytest.raises(ValidationError):
            bin_indices(np.zeros((1, 1)), [0], [1], depth=0)
        with pytest.raises(ValidationError):
            bin_indices(np.zeros((1, 1)), [0], [1], depth=32)

    def test_degenerate_range_rejected(self):
        with pytest.raises(ValidationError):
            bin_indices(np.zeros((1, 1)), [1.0], [1.0], depth=2)

    def test_range_length_mismatch(self):
        with pytest.raises(ValidationError):
            bin_indices(np.zeros((2, 2)), [0.0], [1.0], depth=2)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected_with_row_index(self, rng, bad):
        # Regression: NaN used to survive the float floor and take an
        # undefined int32 cast, yielding a wrong-but-plausible bin.
        x = rng.random((20, 3))
        x[11, 2] = bad
        with pytest.raises(ValidationError, match=r"row\(s\) 11"):
            bin_indices(x, [0] * 3, [1] * 3, depth=4)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected_on_fused_path(self, rng, bad):
        # The same batch must be rejected by the fused kernel path too.
        from repro.kernels.fused import project_bin_count

        x = rng.random((20, 3))
        x[11, 2] = bad
        with pytest.raises(ValidationError, match="non-finite"):
            project_bin_count(
                x, None, [0.0] * 3, [1.0] * 3, (4,), backend="numpy"
            )


class TestPrefixBins:
    def test_prefix_is_right_shift(self, rng):
        x = rng.random((40, 2))
        deep = bin_indices(x, [0, 0], [1, 1], depth=6)
        shallow = prefix_bins(deep, 6, 3)
        direct = bin_indices(x, [0, 0], [1, 1], depth=3)
        assert np.array_equal(shallow, direct)

    def test_same_depth_identity(self, rng):
        deep = bin_indices(rng.random((5, 1)), [0], [1], 4)
        assert np.array_equal(prefix_bins(deep, 4, 4), deep)

    def test_invalid_direction(self):
        with pytest.raises(ValidationError):
            prefix_bins(np.zeros((1, 1), dtype=np.int32), 3, 5)

    def test_hierarchy_consistency_all_depths(self, rng):
        """Depth-d bins must equal the prefix of depth-d' bins for d < d'."""
        x = rng.random((60, 3)) * 7 - 3
        lo, hi = [-3.5] * 3, [4.5] * 3
        deepest = bin_indices(x, lo, hi, 8)
        for d in range(1, 8):
            assert np.array_equal(
                prefix_bins(deepest, 8, d), bin_indices(x, lo, hi, d)
            )


class TestBinIndicesAtDepths:
    def test_returns_all_requested(self, rng):
        x = rng.random((10, 2))
        result = bin_indices_at_depths(x, [0, 0], [1, 1], [2, 4, 6])
        assert set(result) == {2, 4, 6}

    def test_duplicates_collapsed(self, rng):
        x = rng.random((10, 1))
        result = bin_indices_at_depths(x, [0], [1], [3, 3])
        assert list(result) == [3]

    def test_empty_depths_rejected(self):
        with pytest.raises(ValidationError):
            bin_indices_at_depths(np.zeros((1, 1)), [0], [1], [])


class TestPackKeys:
    def test_round_trip(self, rng):
        bins = rng.integers(0, 16, size=(50, 3)).astype(np.int32)
        keys = pack_keys(bins, depth=4)
        recovered = unpack_keys(keys, depth=4, n_dims=3)
        assert np.array_equal(bins, recovered)

    def test_known_value(self):
        bins = np.array([[1, 2, 3]])
        keys = pack_keys(bins, depth=4)
        assert keys[0] == (1 << 8) | (2 << 4) | 3

    def test_distinct_bins_distinct_keys(self, rng):
        bins = rng.integers(0, 8, size=(200, 4)).astype(np.int32)
        keys = pack_keys(bins, depth=3)
        _, first_idx = np.unique(keys, return_index=True)
        uniq_rows = np.unique(bins, axis=0)
        assert len(first_idx) == len(uniq_rows)

    def test_bit_budget_enforced(self):
        with pytest.raises(ValidationError):
            pack_keys(np.zeros((1, 10), dtype=np.int32), depth=7)  # 70 bits

    def test_1d_input_rejected(self):
        with pytest.raises(ValidationError):
            pack_keys(np.zeros(4, dtype=np.int32), depth=2)

    def test_out_of_range_bin_rejected(self):
        # Regression: a bin ≥ 2^depth used to bleed bits into the
        # neighboring dimension's key field, silently corrupting keys.
        bins = np.array([[1, 16, 2]], dtype=np.int32)  # 16 needs 5 bits
        with pytest.raises(ValidationError, match="bleed"):
            pack_keys(bins, depth=4)

    def test_negative_bin_rejected(self):
        with pytest.raises(ValidationError, match="pack_keys"):
            pack_keys(np.array([[-1, 0]], dtype=np.int32), depth=4)

    def test_float_bins_rejected(self):
        with pytest.raises(ValidationError, match="integer"):
            pack_keys(np.array([[1.0, 2.0]]), depth=4)

    def test_boundary_bin_accepted(self):
        keys = pack_keys(np.array([[15, 15]], dtype=np.int32), depth=4)
        assert keys[0] == (15 << 4) | 15
